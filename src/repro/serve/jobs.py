"""Job specs, validation, content hashing, and the async job manager.

A *job* is one experiment spec submitted over HTTP: an experiment name
(validated against the runner registry), optional config overrides
(validated against the runner's option keys), optional cell filters, a
priority, and a client identity.  The manager turns it into runner
cells, resolves what it can from the content-addressed result cache,
pushes the rest through the :class:`~repro.runner.scheduler.Executor`
seam, and seals the assembled artifact into the result store.

The spec's **content hash** is the SHA-256 of its canonical identity --
experiment, resolved overrides, filters, and the code fingerprint (the
same fingerprint the cell cache keys on, so stale results die with the
code that produced them).  The hash is the dedup key at every layer:

* a finished document in the :class:`~repro.serve.store.ResultStore`
  answers the submission instantly, byte-identically, without a job;
* an identical spec already queued or running *attaches*: the second
  submission gets the first job's id and waits on the same result --
  two concurrent identical submits cost exactly one simulation;
* only a genuinely novel spec enqueues work.

Each job appends its lifecycle to a JSONL telemetry log (the runner's
``unit_done`` schema, written by :class:`~repro.runner.progress.RunLog`);
the status endpoint streams per-cell progress by re-reading that file
through the torn-tail-tolerant :func:`repro.sim.read_jsonl`, so a poll
racing a write still sees every whole event.
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.experiments import DEFAULT_OPTIONS
from repro.runner.progress import RunLog
from repro.runner.registry import (
    REGISTRY,
    Unit,
    ensure_default_experiments,
    get_experiment,
    matches_filter,
)
from repro.runner.scheduler import Executor, TaskOutcome

from .http import HttpError
from .metrics import ServiceMetrics
from .store import ResultStore

#: ``trials`` spec shorthand -> the experiment's trial-count option.
TRIALS_OPTION = {
    "table4": "table4_trials",
    "table7": "table7_trials",
    "mitigations": "mitigation_trials",
    "hierarchy": "hierarchy_trials",
    "hierarchy_sweep": "hierarchy_sweep_trials",
    "largepages": "largepage_trials",
}

DESIGN_NAMES = ("SA", "SP", "RF")

#: Top-level spec fields; anything else is a 400 (catches typos early).
SPEC_FIELDS = frozenset(
    {"experiment", "design", "workload", "trials", "options", "filters",
     "priority", "client"}
)

JOB_STATES = ("queued", "running", "done", "failed")

#: Crash-safe record of admitted-but-unfinished work, inside the state
#: dir.  Every queued job appends a ``job_queued`` record (the full spec,
#: enough to resubmit it); reaching a terminal state appends ``job_done``.
#: A service killed mid-run therefore leaves orphaned ``job_queued``
#: records, and :meth:`JobManager.resume_pending` re-admits them on the
#: next start -- a SIGKILL defers queued work, it never loses it.
JOBS_JOURNAL = "jobs-journal.jsonl"


def to_jsonable(value: Any) -> Any:
    """Recursively convert a cell/artifact value into plain JSON types.

    Dataclasses become field dicts, enums their values, tuples/sets
    lists; anything else unknown falls back to ``str`` -- result
    documents must be serializable without surprises, and ``str`` is a
    stable, deterministic rendering for domain objects.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value) if not isinstance(value, (set, frozenset)) else sorted(value, key=str)
        return [to_jsonable(item) for item in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class JobSpec:
    """One validated submission (see :func:`parse_spec`)."""

    experiment: str
    #: Resolved option overrides, sorted for a stable identity.
    options: Tuple[Tuple[str, Any], ...] = ()
    filters: Tuple[str, ...] = ()
    priority: int = 0
    client: str = "anonymous"

    @property
    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def content_hash(self, code_version: Optional[str] = None) -> str:
        """The spec's canonical identity digest (dedup + store key)."""
        identity = json.dumps(
            {
                "experiment": self.experiment,
                "options": self.options_dict,
                "filters": list(self.filters),
                "code_version": (
                    code_version if code_version is not None
                    else code_fingerprint()
                ),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(identity.encode()).hexdigest()


def _bad_spec(detail: str) -> HttpError:
    return HttpError(400, "bad-spec", detail)


def parse_spec(
    payload: Any,
    extra_option_keys: FrozenSet[str] = frozenset(),
    default_client: str = "anonymous",
) -> JobSpec:
    """Validate a raw JSON body into a :class:`JobSpec` or raise a 400.

    ``design``, ``workload``, and ``trials`` are conveniences that lower
    onto the runner's native vocabulary: design/workload become unit
    ident globs, trials becomes the experiment's trial-count option.
    ``extra_option_keys`` widens the accepted option keys beyond
    :data:`~repro.runner.experiments.DEFAULT_OPTIONS` for embedders
    (tests register toy experiments with their own knobs).
    """
    if not isinstance(payload, dict):
        raise _bad_spec("spec must be a JSON object")
    unknown = sorted(set(payload) - SPEC_FIELDS)
    if unknown:
        raise _bad_spec(
            f"unknown spec fields: {', '.join(unknown)}"
            f" (accepted: {', '.join(sorted(SPEC_FIELDS))})"
        )

    ensure_default_experiments()
    experiment = payload.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise _bad_spec("'experiment' is required and must be a string")
    if experiment not in REGISTRY:
        raise _bad_spec(
            f"unknown experiment {experiment!r};"
            f" known: {', '.join(sorted(REGISTRY))}"
        )

    options: Dict[str, Any] = {}
    raw_options = payload.get("options", {})
    if not isinstance(raw_options, dict):
        raise _bad_spec("'options' must be an object")
    allowed_keys = set(DEFAULT_OPTIONS) | set(extra_option_keys)
    for key, value in raw_options.items():
        if key not in allowed_keys:
            raise _bad_spec(
                f"unknown option {key!r};"
                f" known: {', '.join(sorted(allowed_keys))}"
            )
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            raise _bad_spec(
                f"option {key!r} must be a plain JSON value"
            ) from None
        options[key] = value

    trials = payload.get("trials")
    if trials is not None:
        if not isinstance(trials, int) or isinstance(trials, bool) or trials < 1:
            raise _bad_spec("'trials' must be a positive integer")
        option_key = TRIALS_OPTION.get(experiment)
        if option_key is None:
            raise _bad_spec(
                f"experiment {experiment!r} has no trials knob"
                f" (supported: {', '.join(sorted(TRIALS_OPTION))})"
            )
        options[option_key] = trials

    filters: List[str] = []
    design = payload.get("design")
    if design is not None:
        if design not in DESIGN_NAMES:
            raise _bad_spec(
                f"'design' must be one of {', '.join(DESIGN_NAMES)}"
            )
        filters.append(f"{experiment}/{design}/*")
    workload = payload.get("workload")
    if workload is not None:
        if not isinstance(workload, str) or not workload:
            raise _bad_spec("'workload' must be a non-empty string")
        filters.append(f"{experiment}/*{workload}*")
    raw_filters = payload.get("filters", [])
    if not isinstance(raw_filters, list) or not all(
        isinstance(item, str) and item for item in raw_filters
    ):
        raise _bad_spec("'filters' must be a list of non-empty strings")
    filters.extend(raw_filters)

    priority = payload.get("priority", 0)
    if (
        not isinstance(priority, int)
        or isinstance(priority, bool)
        or not 0 <= priority <= 9
    ):
        raise _bad_spec("'priority' must be an integer in [0, 9]")

    client = payload.get("client", default_client)
    if not isinstance(client, str) or not client:
        raise _bad_spec("'client' must be a non-empty string")

    return JobSpec(
        experiment=experiment,
        options=tuple(sorted(options.items())),
        filters=tuple(filters),
        priority=priority,
        client=client,
    )


def result_document(
    spec: JobSpec,
    content_hash: str,
    code_version: str,
    values: List[Any],
    selected: int,
    full: int,
    assembled: Any,
) -> Dict[str, Any]:
    """The JSON document a finished job persists and serves.

    Deliberately timestamp-free: identical specs against identical code
    must produce byte-identical documents, run now or next year.
    """
    complete = selected == full
    certified = (
        assembled.get("certified")
        if complete and isinstance(assembled, Mapping)
        else None
    )
    return {
        "experiment": spec.experiment,
        "content_hash": content_hash,
        "code_version": code_version,
        "options": to_jsonable(spec.options_dict),
        "filters": list(spec.filters),
        "cells": {"selected": selected, "full": full, "complete": complete},
        # Static/dynamic cross-certification carried by the assembled
        # result (None when the experiment makes no such claim).
        "certified": certified,
        "result": to_jsonable(assembled if complete else values),
    }


def canonical_payload(document: Mapping[str, Any]) -> bytes:
    """Canonical bytes of a result document (what the SHA-256 seals)."""
    return (
        json.dumps(document, sort_keys=True, default=str) + "\n"
    ).encode("utf-8")


@dataclass
class Job:
    """One accepted submission and its live state."""

    id: str
    spec: JobSpec
    content_hash: str
    units: List[Unit]
    #: Cell count of the unfiltered experiment (completeness check).
    full_units: int
    log_path: Optional[Path]
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    cells_done: int = 0
    cells_cached: int = 0
    cells_failed: int = 0
    #: Identical submissions attached to this job while it was in flight.
    attached: int = 0
    #: The submission was answered straight from the result store.
    from_store: bool = False
    result_sha256: Optional[str] = None
    error: Optional[str] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def status_dict(self, progress_events: int = 25) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` document.

        Per-cell progress comes from re-reading the job's JSONL
        telemetry via the torn-tail-tolerant reader, so a poll racing
        the writer still parses cleanly.
        """
        cells: Dict[str, Any] = {
            "total": len(self.units),
            "done": self.cells_done,
            "cached": self.cells_cached,
            "failed": self.cells_failed,
        }
        recent: List[Dict[str, Any]] = []
        if self.log_path is not None and self.log_path.is_file():
            from repro.sim import read_jsonl

            unit_events = [
                event for event in read_jsonl(self.log_path)
                if event.get("event") == "unit_done"
            ]
            recent = [
                {
                    "cell": f"{event.get('experiment')}/{event.get('key')}",
                    "status": event.get("status"),
                    "cached": bool(event.get("cached")),
                    "elapsed": event.get("elapsed"),
                }
                for event in unit_events[-progress_events:]
            ]
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "experiment": self.spec.experiment,
            "content_hash": self.content_hash,
            "priority": self.spec.priority,
            "client": self.spec.client,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "cells": cells,
            "attached": self.attached,
            "from_store": self.from_store,
            "progress": recent,
        }
        if self.result_sha256 is not None:
            payload["result_sha256"] = self.result_sha256
            payload["result_url"] = f"/v1/results/{self.content_hash}"
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobManager:
    """Priority queue + dispatchers over the executor seam.

    ``submit`` is called on the event loop (single-threaded, so the
    dedup map needs no lock); cells execute wherever the injected
    :class:`~repro.runner.scheduler.Executor` puts them -- worker
    threads under :class:`~repro.runner.scheduler.AsyncInProcessExecutor`.
    """

    def __init__(
        self,
        executor: Executor,
        store: ResultStore,
        metrics: ServiceMetrics,
        cache: Optional[ResultCache] = None,
        state_dir: Union[Path, str, None] = None,
        base_options: Optional[Mapping[str, Any]] = None,
        extra_option_keys: FrozenSet[str] = frozenset(),
        dispatchers: int = 2,
        max_queued_jobs: int = 256,
    ) -> None:
        self.executor = executor
        self.store = store
        self.metrics = metrics
        self.cache = cache
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.journal_path = (
            self.state_dir / JOBS_JOURNAL
            if self.state_dir is not None
            else None
        )
        self.base_options: Dict[str, Any] = dict(DEFAULT_OPTIONS)
        if base_options:
            self.base_options.update(base_options)
        self.extra_option_keys = frozenset(extra_option_keys)
        self.dispatchers = max(1, dispatchers)
        self.max_queued_jobs = max_queued_jobs
        self.code_version = (
            cache.code_version if cache is not None else code_fingerprint()
        )
        self.jobs: Dict[str, Job] = {}
        #: content hash -> queued/running job (the dedup map).
        self.inflight: Dict[str, Job] = {}
        self._queue: "asyncio.PriorityQueue[Tuple[int, int, str]]" = (
            asyncio.PriorityQueue()
        )
        self._sequence = 0
        self._tasks: List[asyncio.Task] = []
        metrics.register_gauge("queue_depth", self.queue_depth)
        metrics.register_gauge("jobs_inflight", lambda: len(self.inflight))
        metrics.register_gauge(
            "inflight_dedup_attached",
            lambda: sum(job.attached for job in self.inflight.values()),
        )
        # Run-kernel engagement across every cell this process has run
        # (the service's executors are in-process, so the process-global
        # telemetry covers them all; see repro.sim.KernelTelemetry).
        from repro.sim.kernel import KERNEL_TELEMETRY, STRUCTURE_BACKEND

        metrics.register_gauge(
            "kernel_run_hits", lambda: KERNEL_TELEMETRY.run_hits
        )
        metrics.register_gauge(
            "kernel_fallback_accesses",
            lambda: KERNEL_TELEMETRY.fallback_accesses,
        )
        metrics.register_gauge("kernel_runs", lambda: KERNEL_TELEMETRY.runs)
        metrics.register_gauge("kernel_backend", lambda: STRUCTURE_BACKEND)

    def queue_depth(self) -> int:
        """Jobs admitted but not yet picked up by a dispatcher."""
        return self._queue.qsize()

    # -- jobs journal --------------------------------------------------------------

    def _journal(self, event: str, **fields: Any) -> None:
        if self.journal_path is None:
            return
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        with self.journal_path.open("a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"event": event, **fields}, sort_keys=True) + "\n"
            )

    @staticmethod
    def _journal_spec(spec: JobSpec) -> Dict[str, Any]:
        return {
            "experiment": spec.experiment,
            "options": to_jsonable(spec.options_dict),
            "filters": list(spec.filters),
            "priority": spec.priority,
            "client": spec.client,
        }

    def resume_pending(self) -> int:
        """Re-admit jobs journaled as queued but never finished.

        Reads the jobs journal through the torn-tail-tolerant parser (a
        kill mid-append leaves a ragged last line), resubmits every
        ``job_queued`` record with no matching ``job_done``, and compacts
        the journal down to the survivors.  Specs that no longer admit
        (experiment unregistered, options vocabulary moved on) are
        retired rather than retried forever; specs whose results landed
        in the store before the kill are acknowledged as done.  Returns
        the number of jobs put back on the queue.
        """
        if self.journal_path is None or not self.journal_path.is_file():
            return 0
        from repro.sim import read_jsonl

        pending: Dict[str, Dict[str, Any]] = {}
        for event in read_jsonl(self.journal_path):
            if event.get("event") == "job_queued":
                raw = event.get("spec")
                if isinstance(raw, dict):
                    pending[str(event.get("content_hash", ""))] = raw
            elif event.get("event") == "job_done":
                pending.pop(str(event.get("content_hash", "")), None)

        resumed = 0
        survivors: List[str] = []
        for journaled_hash, raw in pending.items():
            try:
                spec = JobSpec(
                    experiment=raw["experiment"],
                    options=tuple(sorted((raw.get("options") or {}).items())),
                    filters=tuple(raw.get("filters") or ()),
                    priority=int(raw.get("priority", 0)),
                    client=str(raw.get("client", "anonymous")),
                )
                job, disposition = self.submit(spec)
            except (HttpError, KeyError, TypeError, ValueError):
                continue  # spec no longer admits; the compaction drops it
            if disposition == "queued":
                resumed += 1
                self.metrics.jobs_resumed += 1
                survivors.append(
                    json.dumps(
                        {
                            "event": "job_queued",
                            "content_hash": job.content_hash,
                            "spec": self._journal_spec(spec),
                        },
                        sort_keys=True,
                    )
                )
            # "cached": the result reached the store before the kill --
            # already answered, nothing survives.  "deduped": attached to
            # a job resubmitted earlier in this loop, which is the
            # surviving record.

        tmp = self.journal_path.with_name(self.journal_path.name + ".tmp")
        tmp.write_text(
            "".join(line + "\n" for line in survivors), encoding="utf-8"
        )
        tmp.replace(self.journal_path)
        return resumed

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        for index in range(self.dispatchers):
            self._tasks.append(
                asyncio.create_task(
                    self._dispatch(), name=f"repro-serve-dispatch-{index}"
                )
            )

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        self.executor.close()

    # -- submission ----------------------------------------------------------------

    def _merged_options(self, spec: JobSpec) -> Dict[str, Any]:
        merged = dict(self.base_options)
        merged.update(spec.options_dict)
        return merged

    def _expand(self, spec: JobSpec) -> Tuple[List[Unit], int]:
        experiment = get_experiment(spec.experiment)
        merged = self._merged_options(spec)
        all_units = experiment.units(merged)
        if spec.filters:
            selected = [
                unit for unit in all_units
                if matches_filter(unit, spec.filters)
            ]
        else:
            selected = list(all_units)
        return selected, len(all_units)

    def submit(self, spec: JobSpec) -> Tuple[Job, str]:
        """Admit one spec; returns ``(job, disposition)``.

        Disposition is ``"cached"`` (answered from the result store),
        ``"deduped"`` (attached to an identical in-flight job), or
        ``"queued"`` (new work).
        """
        self.metrics.jobs_submitted += 1
        content_hash = spec.content_hash(self.code_version)

        inflight = self.inflight.get(content_hash)
        if inflight is not None:
            inflight.attached += 1
            self.metrics.jobs_deduped += 1
            return inflight, "deduped"

        units, full_units = self._expand(spec)

        stored = self.store.get(content_hash)
        if stored is not None:
            _payload, digest = stored
            job = self._new_job(spec, content_hash, units, full_units)
            job.state = "done"
            job.from_store = True
            job.result_sha256 = digest
            job.finished = job.created
            job.done_event.set()
            self.metrics.jobs_store_hits += 1
            return job, "cached"

        if not units:
            raise HttpError(
                400, "bad-spec",
                "spec selects no cells (check design/workload/filters)",
            )
        if self._queue.qsize() >= self.max_queued_jobs:
            raise HttpError(
                503, "queue-full",
                f"job queue is at its {self.max_queued_jobs}-job limit;"
                " retry later",
                headers={"Retry-After": "5"},
            )

        job = self._new_job(spec, content_hash, units, full_units)
        self.inflight[content_hash] = job
        # PriorityQueue pops the smallest tuple: higher priority first,
        # FIFO (by admission sequence) within a priority class.
        self._queue.put_nowait((-spec.priority, self._sequence, job.id))
        self._journal(
            "job_queued",
            content_hash=content_hash,
            spec=self._journal_spec(spec),
        )
        return job, "queued"

    def _new_job(
        self,
        spec: JobSpec,
        content_hash: str,
        units: List[Unit],
        full_units: int,
    ) -> Job:
        self._sequence += 1
        job_id = f"j{self._sequence:06d}"
        log_path = (
            self.state_dir / "jobs" / f"{job_id}.jsonl"
            if self.state_dir is not None
            else None
        )
        job = Job(
            id=job_id,
            spec=spec,
            content_hash=content_hash,
            units=units,
            full_units=full_units,
            log_path=log_path,
        )
        self.jobs[job_id] = job
        return job

    # -- execution -----------------------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            _neg_priority, _sequence, job_id = await self._queue.get()
            job = self.jobs[job_id]
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                job.state = "failed"
                job.error = "service shut down while the job was running"
                job.done_event.set()
                self.inflight.pop(job.content_hash, None)
                raise
            except Exception as error:  # defensive: a job never kills the loop
                job.state = "failed"
                job.error = f"internal job failure: {error!r}"
                job.finished = time.time()
                job.done_event.set()
                self.inflight.pop(job.content_hash, None)
                self.metrics.jobs_failed += 1
                self._journal(
                    "job_done", content_hash=job.content_hash, state="failed"
                )
            finally:
                self._queue.task_done()

    async def _run_cell(
        self, job: Job, log: RunLog, unit: Unit
    ) -> TaskOutcome:
        if self.cache is not None:
            hit, value = self.cache.get(unit)
            if hit:
                job.cells_cached += 1
                job.cells_done += 1
                self.metrics.cells_cached += 1
                log.emit(
                    "unit_done",
                    experiment=unit.experiment,
                    key=unit.key,
                    status="ok",
                    cached=True,
                    elapsed=0.0,
                )
                return TaskOutcome(unit=unit, value=value, cached=True)
        outcome = self.executor.submit(unit)
        if asyncio.iscoroutine(outcome):
            outcome = await outcome
        if not outcome.failed and outcome.envelope is not None:
            # The executor sealed the result; refuse bytes that no longer
            # match their digest before they reach the cache or the store.
            if not outcome.envelope.intact:
                outcome = TaskOutcome(
                    unit=unit, failed=True,
                    error="result envelope failed its integrity check",
                )
        if outcome.failed:
            job.cells_failed += 1
            self.metrics.cells_failed += 1
            log.emit(
                "unit_done",
                experiment=unit.experiment,
                key=unit.key,
                status="failed",
                error=(
                    outcome.error.splitlines()[-1]
                    if outcome.error else None
                ),
            )
        else:
            job.cells_done += 1
            self.metrics.cells_run += 1
            if self.cache is not None:
                self.cache.put(outcome.unit, outcome.value, outcome.elapsed)
            log.emit(
                "unit_done",
                experiment=unit.experiment,
                key=unit.key,
                status="ok",
                cached=False,
                elapsed=round(outcome.elapsed, 4),
            )
        return outcome

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started = time.time()
        log = RunLog(job.log_path)
        log.emit(
            "job_start",
            job=job.id,
            experiment=job.spec.experiment,
            content_hash=job.content_hash,
            units=len(job.units),
            client=job.spec.client,
            priority=job.spec.priority,
        )
        try:
            outcomes = await asyncio.gather(
                *(self._run_cell(job, log, unit) for unit in job.units)
            )
            failed = [outcome for outcome in outcomes if outcome.failed]
            if failed:
                first = failed[0]
                job.state = "failed"
                job.error = (
                    f"{len(failed)}/{len(outcomes)} cells failed; first:"
                    f" {first.unit.ident}: "
                    + (first.error or "unknown error").splitlines()[-1]
                )
                self.metrics.jobs_failed += 1
                log.emit(
                    "job_end", job=job.id, status="failed", error=job.error
                )
                # A deterministic failure is terminal: journal it done so
                # a restart does not replay it forever.  (Cancellation
                # mid-run deliberately journals nothing -- the orphaned
                # job_queued record is what resume_pending picks up.)
                self._journal(
                    "job_done", content_hash=job.content_hash, state="failed"
                )
                return
            values = [outcome.value for outcome in outcomes]
            experiment = get_experiment(job.spec.experiment)
            merged = self._merged_options(job.spec)
            assembled: Any = None
            if len(values) == job.full_units:
                assembled = experiment.assemble(values, merged)
            document = result_document(
                spec=job.spec,
                content_hash=job.content_hash,
                code_version=self.code_version,
                values=values,
                selected=len(values),
                full=job.full_units,
                assembled=assembled,
            )
            payload = canonical_payload(document)
            job.result_sha256 = self.store.put(job.content_hash, payload)
            job.state = "done"
            self.metrics.jobs_completed += 1
            if document.get("certified") is True:
                self.metrics.results_certified += 1
            elif document.get("certified") is False:
                self.metrics.results_uncertified += 1
            log.emit(
                "job_end",
                job=job.id,
                status="done",
                result_sha256=job.result_sha256,
                cached_cells=job.cells_cached,
            )
            self._journal(
                "job_done", content_hash=job.content_hash, state="done"
            )
        finally:
            job.finished = time.time()
            job.done_event.set()
            self.inflight.pop(job.content_hash, None)
            log.close()
