"""End-to-end suite: a live server on localhost, driven over HTTP.

Covers the service acceptance contract: submit/poll/fetch round-trips,
instant byte-identical cached re-submits, concurrent-identical dedup to
a single simulation, quota 429s, malformed-spec 400s, and metrics that
agree with what actually happened.
"""

import hashlib
import json
import threading

from .conftest import RUN_CALLS


def _toy_spec(values=(1, 2, 3), delay=0.0, **extra):
    spec = {
        "experiment": "serve-toy",
        "options": {"serve_toy_values": list(values)},
    }
    if delay:
        spec["options"]["serve_toy_delay"] = delay
    spec.update(extra)
    return spec


def test_submit_poll_fetch_roundtrip(serve_harness):
    harness = serve_harness()
    status, _headers, body = harness.request_json(
        "POST", "/v1/jobs", _toy_spec()
    )
    assert status == 202
    assert body["disposition"] == "queued"
    assert body["cells"] == 3
    assert len(body["content_hash"]) == 64

    doc = harness.poll_job(body["status_url"])
    assert doc["state"] == "done"
    assert doc["cells"] == {"total": 3, "done": 3, "cached": 0, "failed": 0}
    # Per-cell progress is streamed back out of the JSONL telemetry.
    assert {event["cell"] for event in doc["progress"]} == {
        "serve-toy/1", "serve-toy/2", "serve-toy/3"
    }

    status, headers, payload = harness.request("GET", doc["result_url"])
    assert status == 200
    digest = hashlib.sha256(payload).hexdigest()
    assert digest == headers["X-Repro-Sha256"] == doc["result_sha256"]
    document = json.loads(payload)
    assert document["result"] == {"squares": [1, 4, 9]}
    assert document["cells"] == {"selected": 3, "full": 3, "complete": True}
    assert RUN_CALLS.count(1) == 1


def test_cached_resubmit_is_instant_and_byte_identical(serve_harness):
    harness = serve_harness()
    _status, _headers, first = harness.request_json(
        "POST", "/v1/jobs", _toy_spec()
    )
    doc = harness.poll_job(first["status_url"])
    _status, _headers, payload_one = harness.request("GET", doc["result_url"])
    runs_after_first = len(RUN_CALLS)

    status, _headers, second = harness.request_json(
        "POST", "/v1/jobs", _toy_spec()
    )
    assert status == 200
    assert second["disposition"] == "cached"
    assert second["state"] == "done"
    assert second["content_hash"] == first["content_hash"]
    assert second["result_sha256"] == doc["result_sha256"]
    # Answered from the store: no cell ran again.
    assert len(RUN_CALLS) == runs_after_first

    _status, _headers, payload_two = harness.request(
        "GET", second["result_url"]
    )
    assert payload_two == payload_one


def test_concurrent_identical_submits_dedup_to_one_simulation(serve_harness):
    harness = serve_harness(max_concurrency=4)
    spec = _toy_spec(values=(5, 6), delay=0.6)
    results = []

    def submit():
        results.append(harness.request_json("POST", "/v1/jobs", spec))

    threads = [threading.Thread(target=submit) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    bodies = [body for _status, _headers, body in results]
    assert {body["disposition"] for body in bodies} == {"queued", "deduped"}
    # Both submissions name the same job.
    assert len({body["job_id"] for body in bodies}) == 1

    doc = harness.poll_job(bodies[0]["status_url"])
    assert doc["state"] == "done"
    assert doc["attached"] == 1
    # Exactly one simulation of each cell, not two.
    assert sorted(RUN_CALLS) == [5, 6]

    _status, _headers, metrics = harness.request_json("GET", "/v1/metrics")
    assert metrics["counters"]["jobs_deduped"] == 1


def test_distinct_specs_are_not_deduped(serve_harness):
    harness = serve_harness()
    _s, _h, one = harness.request_json(
        "POST", "/v1/jobs", _toy_spec(values=(2,))
    )
    _s, _h, two = harness.request_json(
        "POST", "/v1/jobs", _toy_spec(values=(3,))
    )
    assert one["content_hash"] != two["content_hash"]
    assert harness.poll_job(one["status_url"])["state"] == "done"
    assert harness.poll_job(two["status_url"])["state"] == "done"


def test_quota_exhaustion_returns_429(serve_harness):
    harness = serve_harness(quota_rate=0.001, quota_burst=2)
    spec = _toy_spec(values=(7,))
    headers = {"X-Repro-Client": "tenant-a"}
    for _ in range(2):
        status, _h, _b = harness.request_json(
            "POST", "/v1/jobs", spec, headers=headers
        )
        assert status in (200, 202)

    status, reply_headers, body = harness.request_json(
        "POST", "/v1/jobs", spec, headers=headers
    )
    assert status == 429
    assert body["error"] == "quota-exhausted"
    assert int(reply_headers["Retry-After"]) >= 1

    # A different client has its own bucket.
    status, _h, _b = harness.request_json(
        "POST", "/v1/jobs", spec, headers={"X-Repro-Client": "tenant-b"}
    )
    assert status in (200, 202)

    _s, _h, metrics = harness.request_json("GET", "/v1/metrics")
    assert metrics["counters"]["quota_rejections"] == 1
    assert metrics["quota"]["clients"]["tenant-a"]["rejected"] == 1


def test_malformed_specs_return_400(serve_harness):
    harness = serve_harness()
    cases = [
        ({"experiment": "no-such-experiment"}, "bad-spec"),
        ({}, "bad-spec"),
        ({"experiment": "serve-toy", "options": {"bogus_option": 1}}, "bad-spec"),
        ({"experiment": "serve-toy", "priority": 99}, "bad-spec"),
        ({"experiment": "serve-toy", "design": "XX"}, "bad-spec"),
        ({"experiment": "serve-toy", "typo_field": 1}, "bad-spec"),
        ({"experiment": "table2", "trials": 5}, "bad-spec"),
        ([1, 2, 3], "bad-spec"),
    ]
    for payload, code in cases:
        status, _headers, body = harness.request_json(
            "POST", "/v1/jobs", payload
        )
        assert status == 400, payload
        assert body["error"] == code, payload

    # Not JSON at all.
    status, _headers, body = harness.request_json(
        "POST", "/v1/jobs", raw_body=b"this is not json",
        headers={"Content-Type": "application/json"},
    )
    assert status == 400
    assert body["error"] == "bad-request"


def test_failed_cells_fail_the_job(serve_harness):
    harness = serve_harness()
    spec = {
        "experiment": "serve-toy",
        "options": {"serve_toy_values": [4], "serve_toy_fail": True},
    }
    _status, _headers, body = harness.request_json("POST", "/v1/jobs", spec)
    doc = harness.poll_job(body["status_url"])
    assert doc["state"] == "failed"
    assert "told to fail" in doc["error"]
    assert doc["cells"]["failed"] == 1

    # No result document was stored for the failed hash.
    status, _headers, _body = harness.request(
        "GET", f"/v1/results/{body['content_hash']}"
    )
    assert status == 404


def test_metrics_and_health_reflect_the_run(serve_harness):
    harness = serve_harness()
    _s, _h, body = harness.request_json("POST", "/v1/jobs", _toy_spec())
    harness.poll_job(body["status_url"])
    # Identical spec again: a store hit, not a new simulation.
    harness.request_json("POST", "/v1/jobs", _toy_spec())

    _s, _h, health = harness.request_json("GET", "/v1/health")
    assert health["status"] == "ok"
    assert health["queue_depth"] == 0

    _s, _h, metrics = harness.request_json("GET", "/v1/metrics")
    counters = metrics["counters"]
    assert counters["jobs_submitted"] == 2
    assert counters["jobs_completed"] == 1
    assert counters["jobs_store_hits"] == 1
    assert counters["cells_run"] == 3
    assert metrics["gauges"]["queue_depth"] == 0
    # Cell cache: three misses then three stores on the first run.
    assert metrics["cell_cache"]["misses"] == 3
    assert metrics["cell_cache"]["stores"] == 3
    assert metrics["result_store"]["stores"] == 1
    assert metrics["result_store"]["hits"] >= 1


def test_certification_verdict_is_served_and_counted(serve_harness):
    harness = serve_harness()

    # A non-certifying result: the document says None, no counter moves.
    _s, _h, plain = harness.request_json("POST", "/v1/jobs", _toy_spec())
    doc = harness.poll_job(plain["status_url"])
    _s, _h, document = harness.request_json("GET", doc["result_url"])
    assert document["certified"] is None

    # A certifying payload threads its verdict through to the document.
    def submit(values, certified):
        spec = _toy_spec(values=values)
        spec["options"]["serve_toy_certified"] = certified
        _s, _h, body = harness.request_json("POST", "/v1/jobs", spec)
        done = harness.poll_job(body["status_url"])
        _s, _h, served = harness.request_json("GET", done["result_url"])
        return served

    assert submit((4, 5), certified=True)["certified"] is True
    assert submit((6, 7), certified=False)["certified"] is False

    _s, _h, metrics = harness.request_json("GET", "/v1/metrics")
    counters = metrics["counters"]
    assert counters["results_certified"] == 1
    assert counters["results_uncertified"] == 1


def test_cell_cache_accelerates_overlapping_specs(serve_harness):
    harness = serve_harness()
    _s, _h, one = harness.request_json(
        "POST", "/v1/jobs", _toy_spec(values=(1, 2))
    )
    harness.poll_job(one["status_url"])
    # A different spec sharing cells: (1, 2) come from the cell cache,
    # only 3 simulates.
    _s, _h, two = harness.request_json(
        "POST", "/v1/jobs", _toy_spec(values=(1, 2, 3))
    )
    doc = harness.poll_job(two["status_url"])
    assert doc["state"] == "done"
    assert doc["cells"]["cached"] == 2
    assert sorted(RUN_CALLS) == [1, 2, 3]


def test_unknown_routes_and_methods(serve_harness):
    harness = serve_harness()
    status, _h, body = harness.request_json("GET", "/v1/nope")
    assert status == 404
    status, headers, _b = harness.request("DELETE", "/v1/jobs")
    assert status == 405
    assert "GET" in headers["Allow"] and "POST" in headers["Allow"]
    status, _h, body = harness.request_json("GET", "/v1/results/zz")
    assert status == 400
    status, _h, body = harness.request_json("GET", "/v1/results/" + "a" * 64)
    assert status == 404
    status, _h, body = harness.request_json("GET", "/v1/jobs/j999999")
    assert status == 404


def test_job_listing(serve_harness):
    harness = serve_harness()
    _s, _h, one = harness.request_json(
        "POST", "/v1/jobs", _toy_spec(values=(8,))
    )
    harness.poll_job(one["status_url"])
    _s, _h, listing = harness.request_json("GET", "/v1/jobs")
    assert [job["id"] for job in listing["jobs"]] == [one["job_id"]]
    assert listing["jobs"][0]["state"] == "done"
