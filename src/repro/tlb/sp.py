"""The Static-Partition (SP) TLB (Section 4.1).

The SP TLB is a set-associative TLB whose ways are statically split between
a *victim* partition and an *attacker* partition (everything that is not the
designated victim process).  Hits are identical to the standard SA TLB --
page number and ASID must both match.  On a miss, the fill may only replace
a way inside the requesting process's own partition, each partition keeping
its own LRU order (Figure 1), so:

* the attacker can never evict the victim's translations (defeating TLB
  Prime + Probe and TLB Evict + Time, the external miss-based rows), and
* the victim can never evict the attacker's.

The victim's own internal interference (TLB Internal Collision, the TLB
version of Bernstein's Attack) is untouched -- partitioning cannot help
against contention among the victim's own pages, which is why the SP TLB
stops at 14 of the 24 rows (Section 5.3.1).

The partition split is configured at construction (the paper's default
gives the victim 50% of the ways).
"""

from __future__ import annotations

from typing import List

from .base import AccessResult, BaseTLB, Translator
from .config import TLBConfig
from .entry import TLBEntry


class StaticPartitionTLB(BaseTLB):
    """SA TLB with way-partitioning between victim and attacker processes."""

    def __init__(
        self,
        config: TLBConfig,
        victim_asid: int = 1,
        victim_ways: int | None = None,
        name: str = "sp-tlb",
    ) -> None:
        super().__init__(config, name)
        if victim_ways is None:
            victim_ways = max(config.ways // 2, 1)
        if not 0 < victim_ways < config.ways:
            raise ValueError(
                "the victim partition must hold between 1 and ways-1 ways "
                f"(got {victim_ways} of {config.ways}); a 0- or full-way "
                "partition would starve one side entirely"
            )
        self.victim_asid = victim_asid
        self.victim_ways = victim_ways

    def is_victim(self, asid: int) -> bool:
        return asid == self.victim_asid

    def _partition(self, vpn: int, asid: int, level: int = 0) -> List[TLBEntry]:
        """The ways of ``vpn``'s set that ``asid`` is allowed to fill."""
        tlb_set = self._set_for(vpn, level)
        if self.is_victim(asid):
            return tlb_set[: self.victim_ways]
        return tlb_set[self.victim_ways :]

    def _handle_miss(
        self, vpn: int, asid: int, translator: Translator
    ) -> AccessResult:
        walk = translator.walk(vpn, asid)
        victim = self._policy.select(self._partition(vpn, asid, walk.level))
        evicted = self._fill_entry(
            victim, vpn, walk.ppn, asid, level=walk.level
        )
        return AccessResult(
            hit=False,
            ppn=walk.ppn,
            cycles=self.config.hit_latency + walk.cycles,
            evicted=evicted,
            filled=True,
        )
