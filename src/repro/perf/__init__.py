"""Performance and area evaluation (Section 6: Figure 7 and Table 5).

* :mod:`repro.perf.configs` -- the 19 evaluated TLB configurations;
* :mod:`repro.perf.timing` -- the trace-driven IPC/MPKI timing model with
  multiprogrammed round-robin scheduling;
* :mod:`repro.perf.harness` -- the Figure 7 grid (RSA/SecRSA alone and with
  each SPEC workload over every configuration);
* :mod:`repro.perf.area` -- the Table 5 area model, least-squares
  calibrated against the paper's synthesis results;
* :mod:`repro.perf.bench` -- the fast-path regression bench
  (``python -m repro bench``), timing the :mod:`repro.sim.kernel` fast
  path against the reference model with counter-equality checks.
"""

from .area import (
    AreaEstimate,
    AreaModel,
    BLOCK_RAMS,
    DSPS,
    PAPER_TABLE5,
)
from .configs import (
    SECURE_LABELS,
    STANDARD_LABELS,
    all_configurations,
    config_by_label,
    configuration_count,
    labels_for,
)
from .harness import (
    Figure7Cell,
    Figure7Unit,
    PerfSettings,
    Scenario,
    all_scenarios,
    figure7,
    figure7_units,
    format_figure7,
    headline_ratios,
    run_cell,
    scenario_by_label,
)
from .export import export_figure7_csv, export_table4_csv
from .plot import bar_chart, figure7_chart
from .timing import PerfResult, ScheduledProcess, simulate

__all__ = [
    "AreaEstimate",
    "AreaModel",
    "BLOCK_RAMS",
    "DSPS",
    "Figure7Cell",
    "Figure7Unit",
    "PAPER_TABLE5",
    "PerfResult",
    "PerfSettings",
    "Scenario",
    "ScheduledProcess",
    "SECURE_LABELS",
    "STANDARD_LABELS",
    "all_configurations",
    "bar_chart",
    "all_scenarios",
    "config_by_label",
    "configuration_count",
    "export_figure7_csv",
    "export_table4_csv",
    "figure7",
    "figure7_chart",
    "figure7_units",
    "format_figure7",
    "scenario_by_label",
    "headline_ratios",
    "labels_for",
    "run_cell",
    "simulate",
]
