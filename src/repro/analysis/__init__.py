"""Static analysis over the reproduction, in two layers.

**Layer 1 -- guest leakage checker.**  A taint/constant dataflow analysis
over assembled :mod:`repro.isa` programs: contract-declared secrets
(registers, CSRs, data symbols) are the sources; memory-operand address
computations, branch conditions, and branch-gated page touches are the
sinks.  A dynamic mode replays the program on the ISA CPU with a
:class:`TaintObserver` on the :class:`repro.sim.EventBus` and confirms
each static *may leak* verdict as a *does leak* secret-correlated access
pattern.

**Layer 2 -- host invariant linter.**  AST rules enforcing the repo's
architectural invariants (factory-only TLB/walker construction,
deterministic simulation paths, frozen event records, no snapshot
mutation) over ``src/repro``.

Both ship behind ``python -m repro analyze [guest|lint|all]``.
"""

from .cfg import BasicBlock, ControlFlowGraph
from .contract import ContractError, LeakageContract, SecretSource
from .dynamic import (
    CheckedFinding,
    CrossCheckReport,
    TaintObserver,
    cross_check,
    secret_correlation,
    trace_pages,
)
from .lint import (
    LINT_RULES,
    LintFinding,
    Rule,
    lint_source,
    run_lint,
)
from .taint import (
    GuestReport,
    LeakageFinding,
    Taint,
    TaintAnalysis,
    analyze_program,
)
from .workloads import (
    DEFAULT_EXPONENT,
    GUEST_WORKLOADS,
    GuestWorkload,
    rsa_constant_time,
    rsa_square_multiply,
)

__all__ = [
    "BasicBlock",
    "CheckedFinding",
    "ContractError",
    "ControlFlowGraph",
    "CrossCheckReport",
    "DEFAULT_EXPONENT",
    "GUEST_WORKLOADS",
    "GuestReport",
    "GuestWorkload",
    "LINT_RULES",
    "LeakageContract",
    "LeakageFinding",
    "LintFinding",
    "Rule",
    "SecretSource",
    "Taint",
    "TaintAnalysis",
    "TaintObserver",
    "analyze_program",
    "cross_check",
    "lint_source",
    "rsa_constant_time",
    "rsa_square_multiply",
    "run_lint",
    "secret_correlation",
    "trace_pages",
]
