"""Tests for the CSV exporters."""

import csv

import pytest

from repro.perf import PerfSettings, Scenario, run_cell
from repro.perf.export import export_figure7_csv, export_table4_csv
from repro.security import EvaluationConfig, SecurityEvaluator, TLBKind


class TestFigure7Export:
    @pytest.fixture(scope="class")
    def cells(self):
        settings = PerfSettings(spec_instructions=20_000, key_bits=64)
        from repro.workloads.spec import POVRAY

        return [
            run_cell(
                TLBKind.SA,
                "4W 32",
                Scenario(secure=False, spec=POVRAY),
                rsa_runs=3,
                settings=settings,
            )
        ]

    def test_rows_and_header(self, cells, tmp_path):
        path = tmp_path / "fig7.csv"
        rows = export_figure7_csv(cells, path)
        assert rows == 3  # RSA + povray + total
        with path.open() as handle:
            read = list(csv.DictReader(handle))
        assert len(read) == rows
        assert read[0]["tlb"] == "SA"
        assert {"RSA", "povray", "total"} == {row["process"] for row in read}

    def test_numeric_fields_parse(self, cells, tmp_path):
        path = tmp_path / "fig7.csv"
        export_figure7_csv(cells, path)
        with path.open() as handle:
            for row in csv.DictReader(handle):
                assert float(row["ipc"]) > 0
                assert int(row["instructions"]) > 0


class TestTable4Export:
    def test_export_contains_every_row(self, tmp_path):
        evaluator = SecurityEvaluator(EvaluationConfig(trials=5))
        table = {TLBKind.SA: evaluator.evaluate_kind(TLBKind.SA)}
        path = tmp_path / "table4.csv"
        rows = export_table4_csv(table, path)
        assert rows == 24
        with path.open() as handle:
            read = list(csv.DictReader(handle))
        assert len(read) == 24
        defended = sum(int(row["defended"]) for row in read)
        assert defended == 10

    def test_extended_rows_have_empty_theory_fields(self, tmp_path):
        evaluator = SecurityEvaluator(EvaluationConfig(trials=3))
        table = {TLBKind.SA: evaluator.evaluate_extended(TLBKind.SA)[:4]}
        path = tmp_path / "ext.csv"
        export_table4_csv(table, path)
        with path.open() as handle:
            for row in csv.DictReader(handle):
                assert row["capacity_theory"] == ""
