"""The page-table walker: the TLB's miss-path translation source.

Implements the :class:`repro.tlb.Translator` protocol.  The walker resolves
(vpn, asid) against the page table registered for that ASID, charging one
memory access per radix level touched -- the "slow" side of the timing
channel.  RISC-V has no page-walk cache (paper footnote 3), so every walk
pays the full radix traversal.

``auto_map`` reproduces the paper's footnote 5 assumption: the OS has
pre-generated page-table entries for any page the Random Fill Engine may
request, so a walk for an RFE-drawn address never page-faults.  With
``auto_map`` disabled, unmapped pages raise :class:`PageFault`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.tlb.base import WalkResult

from .address import LEVELS
from .page_table import PageFault, PageTable, Permission


@dataclass(frozen=True)
class WalkerConfig:
    """Cost model for walks."""

    #: Cycles per page-table memory access (one per level).
    cycles_per_level: int = 10

    def __post_init__(self) -> None:
        if self.cycles_per_level <= 0:
            raise ValueError("cycles_per_level must be positive")


class PageTableWalker:
    """Walks the page table registered for each address space."""

    def __init__(
        self,
        config: WalkerConfig = WalkerConfig(),
        auto_map: bool = False,
        frame_allocator: Optional[Callable[[], int]] = None,
    ) -> None:
        self.config = config
        self.auto_map = auto_map
        self._tables: Dict[int, PageTable] = {}
        self._frame_allocator = frame_allocator or _SequentialFrames().allocate
        self.walks = 0
        self.faults = 0
        #: Bumped whenever an address space is (re-)registered, so
        #: :meth:`memo_token` can never alias a fresh table whose version
        #: counter happens to match the old one's.
        self._register_epoch = 0
        #: Walk memo: (asid, vpn) -> (table version walked under, result).
        #: A memo hit still counts as a walk and charges the same cycles
        #: (RISC-V has no page-walk cache, footnote 3 -- architecturally
        #: every walk is real; the memo only skips the Python radix
        #: traversal and the WalkResult allocation, which is legal because
        #: WalkResult is frozen).  Any page-table version bump, re-register
        #: or ``sfence.vma`` invalidates.
        self._memo: Dict[Tuple[int, int], Tuple[int, WalkResult]] = {}

    def register(self, table: PageTable) -> None:
        """Attach an address space (keyed by its ASID)."""
        self._tables[table.asid] = table
        self._register_epoch += 1
        self.invalidate_memo(asid=table.asid)

    def memo_token(self, asid: int) -> int:
        """Walk-memoization validity token for one address space.

        The run kernel (:meth:`repro.tlb.BaseTLB.translate_runs`) caches
        packed walk results across quanta and revalidates them by
        comparing this token: it changes whenever the ASID's mappings
        change (page-table version) or the table object itself is
        replaced (registration epoch), the only events that could make a
        cached result differ from a fresh :meth:`walk`.  Auto-mapping
        unseen pages bumps the version too -- that only costs a
        conservative cache drop after warm-up quanta, never staleness.
        Returns -1 while the ASID has no table (nothing may be cached).
        """
        table = self._tables.get(asid)
        if table is None:
            return -1
        return (self._register_epoch << 40) | table.version

    def has_superpages(self, asid: int) -> bool:
        """Whether the ASID's table has *ever* mapped a superpage leaf.

        The run kernel's reuse oracle assumes every walk returns a 4 KiB
        leaf at full-walk cost; it refuses to engage (and, via the
        mapping token, to stay engaged) once this is true.  Conservative
        and monotonic on purpose -- see ``PageTable.superpages_ever``.
        """
        table = self._tables.get(asid)
        return table is not None and table.superpages_ever

    def invalidate_memo(
        self, asid: Optional[int] = None, vpn: Optional[int] = None
    ) -> None:
        """Drop memoized walks (all, per-ASID, per-page, or one).

        Wired to ``sfence.vma`` by the OS model.  Page-table version
        checks already make the memo remap-safe; this keeps the fence's
        architectural contract explicit and bounds memo growth across
        address-space teardown.
        """
        if asid is None and vpn is None:
            self._memo.clear()
        elif vpn is None:
            self._memo = {
                key: value for key, value in self._memo.items()
                if key[0] != asid
            }
        elif asid is None:
            self._memo = {
                key: value for key, value in self._memo.items()
                if key[1] != vpn
            }
        else:
            self._memo.pop((asid, vpn), None)

    def table_for(self, asid: int) -> PageTable:
        try:
            return self._tables[asid]
        except KeyError:
            if self.auto_map:
                table = PageTable(asid)
                self._tables[asid] = table
                return table
            raise PageFault(vpn=0, asid=asid) from None

    def walk(self, vpn: int, asid: int) -> WalkResult:
        """Resolve a translation, charging one access per level touched."""
        self.walks += 1
        key = (asid, vpn)
        memo = self._memo.get(key)
        if memo is not None and memo[0] == self._tables[asid].version:
            return memo[1]
        table = self.table_for(asid)
        levels_touched, entry = table.walk_levels(vpn)
        if entry is None:
            if not self.auto_map:
                self.faults += 1
                raise PageFault(vpn=vpn, asid=asid)
            entry = table.map_page(
                vpn, self._frame_allocator(), Permission.rw()
            )
            levels_touched = LEVELS
        result = WalkResult(
            ppn=entry.translate(vpn),
            cycles=levels_touched * self.config.cycles_per_level,
            level=entry.level,
        )
        self._memo[key] = (table.version, result)
        return result

    def peek(self, vpn: int, asid: int) -> Optional[int]:
        """Side-effect-free translation lookup: the PPN, or ``None``.

        Unlike :meth:`walk`, peeking never auto-maps, charges no cycles
        and counts no walks -- it reads the page table as ground truth.
        The :mod:`repro.faults` detectors use it to cross-check every live
        TLB entry against the OS's mapping, so a corrupted PPN or ASID tag
        (a translation the page tables never produced) is observable.
        """
        table = self._tables.get(asid)
        if table is None:
            return None
        entry = table.lookup(vpn)
        return None if entry is None else entry.translate(vpn)

    def allows(self, vpn: int, asid: int, required: Permission) -> bool:
        """Permission check for an already-translated access.

        Separated from :meth:`walk` on purpose: hardware caches the
        translation *before* the permission check faults, which is the
        premise of the Double Page Fault attack (a second access to a
        forbidden page is fast because the TLB already holds the entry).
        """
        table = self._tables.get(asid)
        if table is None:
            return False
        entry = table.lookup(vpn)
        if entry is None:
            # A page that would be auto-mapped defaults to user read/write.
            return self.auto_map and (Permission.rw() & required) == required
        return entry.allows(required)

    @property
    def full_walk_cycles(self) -> int:
        """Latency of a complete (successful) walk."""
        return LEVELS * self.config.cycles_per_level


class _SequentialFrames:
    """Default physical frame allocator for auto-mapped pages."""

    def __init__(self, start: int = 0x8000) -> None:
        self._next = start

    def allocate(self) -> int:
        frame = self._next
        self._next += 1
        return frame


def make_walker(
    config: Optional[WalkerConfig] = None,
    auto_map: bool = True,
    frame_allocator: Optional[Callable[[], int]] = None,
) -> PageTableWalker:
    """The registered walker factory the drive loops go through.

    Defaults match how every experiment builds its walker (``auto_map``
    on, footnote 5's pre-generated page tables); the invariant linter
    (``repro.analysis``) enforces that walkers are constructed only here
    and in the :class:`repro.sim.MemorySystem` default, so the cost model
    stays configured in one place.
    """
    return PageTableWalker(
        config=config or WalkerConfig(),
        auto_map=auto_map,
        frame_allocator=frame_allocator,
    )
