"""Tests for the theoretical channel-capacity model (Section 5.3)."""

import pytest

from repro.model.patterns import Strategy
from repro.model.table2 import table2_vulnerabilities
from repro.security import TLBKind, TheoreticalModel


@pytest.fixture(scope="module")
def model():
    return TheoreticalModel()


@pytest.fixture(scope="module")
def rows():
    return table2_vulnerabilities()


def rows_of(rows, strategy):
    return [r for r in rows if r.strategy is strategy]


class TestHeadlineCounts:
    def test_sa_defends_10(self, model, rows):
        assert model.defended_count(TLBKind.SA, rows) == 10

    def test_sp_defends_14(self, model, rows):
        assert model.defended_count(TLBKind.SP, rows) == 14

    def test_rf_defends_all_24(self, model, rows):
        assert model.defended_count(TLBKind.RF, rows) == 24

    def test_sp_superset_of_sa(self, model, rows):
        for row in rows:
            if model.defends(TLBKind.SA, row):
                assert model.defends(TLBKind.SP, row)

    def test_rf_superset_of_sp(self, model, rows):
        for row in rows:
            if model.defends(TLBKind.SP, row):
                assert model.defends(TLBKind.RF, row)


class TestSAValues:
    def test_internal_collision(self, model, rows):
        for row in rows_of(rows, Strategy.INTERNAL_COLLISION):
            assert model.probabilities(TLBKind.SA, row) == (0.0, 1.0)
            assert model.capacity(TLBKind.SA, row) == pytest.approx(1.0)

    def test_prime_probe_and_evict_time_leak_fully(self, model, rows):
        for strategy in (Strategy.PRIME_PROBE, Strategy.EVICT_TIME, Strategy.BERNSTEIN):
            for row in rows_of(rows, strategy):
                assert model.probabilities(TLBKind.SA, row) == (1.0, 0.0)

    def test_cross_process_hits_are_impossible(self, model, rows):
        for strategy in (
            Strategy.FLUSH_RELOAD,
            Strategy.EVICT_PROBE,
            Strategy.PRIME_TIME,
        ):
            for row in rows_of(rows, strategy):
                assert model.probabilities(TLBKind.SA, row) == (1.0, 1.0)
                assert model.capacity(TLBKind.SA, row) == 0.0


class TestSPValues:
    def test_partitioning_blocks_external_misses(self, model, rows):
        for strategy in (Strategy.PRIME_PROBE, Strategy.EVICT_TIME):
            for row in rows_of(rows, strategy):
                assert model.probabilities(TLBKind.SP, row) == (0.0, 0.0)

    def test_internal_interference_remains(self, model, rows):
        for strategy in (Strategy.INTERNAL_COLLISION, Strategy.BERNSTEIN):
            for row in rows_of(rows, strategy):
                assert model.capacity(TLBKind.SP, row) == pytest.approx(1.0)


class TestRFValues:
    def test_probabilities_always_equal(self, model, rows):
        for row in rows:
            p1, p2 = model.probabilities(TLBKind.RF, row)
            assert p1 == p2
            assert model.capacity(TLBKind.RF, row) == pytest.approx(0.0, abs=1e-9)

    def test_paper_section_531_values(self, model, rows):
        # Spot-check the six combined patterns against the printed numbers.
        by_pretty = {row.pattern.pretty(): row for row in rows}
        checks = {
            "V_u ~> A_d ~> V_u": 1 / 3 * 1 / (3 * 8),  # 0.014 ("0.01")
            "A_d ~> V_u ~> V_a": 1 - 1 / 3,  # 0.67
            "A_d ~> V_u ~> A_d": 1 / 3,  # 0.33
            "V_u ~> A_a ~> V_u": (8 / 31) ** 8,  # "0.01" (rounded up)
            "A_a^alias ~> V_u ~> V_a": 1 - 1 / 31,  # 0.97
            "A_a ~> V_u ~> A_a": 8 / 31,  # 0.26
            "V_a ~> V_u ~> V_a": 3 / 31,  # 0.09
        }
        for pretty, expected in checks.items():
            row = by_pretty[pretty]
            p1, _p2 = model.probabilities(TLBKind.RF, row)
            assert p1 == pytest.approx(expected), pretty

    def test_geometry_parameterization(self, rows):
        small = TheoreticalModel(nsets=2, nways=2, prime_num=2)
        for row in rows:
            p1, p2 = small.probabilities(TLBKind.RF, row)
            assert 0.0 <= p1 <= 1.0 and p1 == p2
