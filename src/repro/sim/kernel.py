"""The allocation-free fast-path translation kernels.

The reference model pays, per translation, one frozen ``AccessResult``,
one ``WalkResult`` per walk, and (when traced) an event object -- fine for
correctness, ruinous for the millions of accesses behind Figure 7 and the
attack suites.  Following the specialisation idea of "Fast TLB Simulation
for RISC-V Systems" (Guo, 2019), the kernel keeps the *reference model as
the specification* and adds differentially-verified fast paths:

* ``MemorySystem.translate_fast(vpn, asid)`` returns one packed int --
  ``cycles << 2 | hit << 1 | filled`` -- instead of an ``AccessResult``,
  backed by ``BaseTLB.translate_fast`` (dict-indexed lookup, no result
  object) and the walker's walk memo.  With an active event bus it falls
  back to the reference path, so observability is never silently lost.
* :class:`CompiledTrace` materialises a workload's ``(gap, vpn)`` event
  stream into flat ``array('q')`` columns, chunk by chunk (streams may be
  infinite), so the timing model's quantum loop runs over array slices
  instead of generator frames and tuples.
* The **run kernel** (second-generation speed tier): a structural
  pre-pass over the compiled columns (:meth:`CompiledTrace.ensure_structure`)
  records, per trace position, the previous and next occurrence of the
  same page.  ``BaseTLB.translate_runs`` uses those columns to *prove*
  that whole stretches of the trace hit with no replacement-state-visible
  change beyond MRU reordering, advancing access/hit counters, the clock
  and the cycle accumulator for the entire run at once, and falls back to
  the per-access probe only at the positions where a fill, eviction,
  no-fill buffer return, superpage probe or context switch could occur.
  :class:`RunState` carries the proof threshold across quanta (validated
  against the TLB's mutation counter), and :data:`KERNEL_TELEMETRY`
  aggregates how often the run tier actually engaged.

The structure pre-pass has two interchangeable backends: pure Python
(always present) and a numpy-vectorised one (:mod:`repro.sim.kernel_np`,
auto-detected; :data:`STRUCTURE_BACKEND` reports which is active).  The
run loop itself is pure Python either way -- numpy's per-call overhead
loses on the short runs that dominate miss-heavy traces.

Equivalence is enforced three ways: by construction (all paths share the
TLB state machine, statistics and cycle model -- the fast paths only skip
result/event *object construction*), by the differential suite
(``tests/sim/test_fastpath_equivalence.py``), and continuously by
``python -m repro bench`` which refuses to report a speedup whose counters
diverge.  See ``docs/performance.md``.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Tuple

#: Bit layout of a packed translation result.
HIT_BIT = 0b10
FILL_BIT = 0b01
CYCLE_SHIFT = 2

#: Events materialised per :meth:`CompiledTrace.extend` pull.  Large enough
#: to amortise the generator resumption, small enough that infinite SPEC
#: streams never over-materialise past the instruction budget.
CHUNK = 4096

#: ``nxt`` sentinel for "no later occurrence compiled (yet)".  Far above
#: any real trace position, so ``nxt[j] >= run_end`` stays true for final
#: touches; patched down in place when the next occurrence compiles.
INF_HORIZON = 1 << 62

#: Granularities of the precomputed run-detection minima: the run scanner
#: skips ``RUN_BLOCK`` (or ``SUB_BLOCK``) positions with one list read
#: when a whole block's minimum reuse distance clears the threshold.
RUN_BLOCK = 128
SUB_BLOCK = 16

try:  # The vectorised structure pre-pass backend (optional).
    from . import kernel_np as _structure_np

    STRUCTURE_BACKEND = "numpy"
except Exception:  # pragma: no cover - environment-dependent
    _structure_np = None
    STRUCTURE_BACKEND = "python"


def pack_result(cycles: int, hit: bool, filled: bool) -> int:
    """Pack a translation outcome into one int."""
    return (cycles << CYCLE_SHIFT) | (HIT_BIT if hit else 0) | (
        FILL_BIT if filled else 0
    )


def packed_cycles(packed: int) -> int:
    return packed >> CYCLE_SHIFT


def packed_hit(packed: int) -> bool:
    return bool(packed & HIT_BIT)


def packed_filled(packed: int) -> bool:
    return bool(packed & FILL_BIT)


class CompiledTrace:
    """A workload event stream compiled to flat columnar arrays.

    ``gaps[i]`` / ``vpns[i]`` are the i-th event's compute gap and page;
    ``cum[i]`` is the cumulative instruction cost ``sum(gaps[:i+1]) +
    (i+1)`` (each event costs its gap plus the access itself), which lets
    the quantum driver find a whole quantum's slice boundary with one
    binary search instead of per-event budget arithmetic.

    Materialisation is lazy and chunked: :meth:`ensure` pulls from the
    source generator only when the caller's cursor outruns what has been
    compiled, so infinite streams (SPEC profiles run under an instruction
    budget) compile exactly as far as the run consumes them.  The arrays
    only ever grow in place -- callers may cache references to them.

    On top of the event columns, :meth:`ensure_structure` lazily derives
    the *run-structure* columns the run kernel proves hit-runs with:

    ``prev[i]``
        Trace position of the previous access to ``vpns[i]`` (-1 if this
        is the first).  Immutable once written: given a threshold ``T``
        below which residency is unknown, ``prev[i] >= T`` proves access
        ``i`` hits (the page was touched at ``prev[i]`` and nothing since
        ``T`` evicted or invalidated any entry).
    ``nxt[i]``
        Position of the next access to ``vpns[i]``; :data:`INF_HORIZON`
        until that occurrence compiles (values only ever decrease, so a
        stale read is conservative).  ``nxt[i] >= run_end`` identifies the
        *last* touch of each page inside a run window -- the only touch
        whose LRU timestamp the run kernel must materialise.
    ``sub_min_prev`` / ``blk_min_prev``
        Minima of ``prev`` over aligned :data:`SUB_BLOCK` /
        :data:`RUN_BLOCK` windows, so run detection skips whole blocks at
        C speed instead of comparing element-wise.
    ``occ``
        Per-page sorted occurrence lists (``vpn -> [positions]``): when a
        fill evicts page ``V``, one bisect finds ``V``'s next occurrence
        -- the *next-eviction horizon* at which a hit-run must break
        because that access is a forced miss.
    ``boundary_firsts``
        Positions whose ``prev`` predates their structure extension (the
        first occurrence of each page per :meth:`ensure_structure` call),
        ascending.  A page evicted with *no* occurrence in the structure
        compiled so far may still reappear in events compiled later; run
        states scan the new boundary-firsts each quantum to convert such
        open evictions into concrete horizons.

    The structure columns are plain lists (not ``array('q')``): the run
    scanner's ``min()`` over list slices and indexed reads skip the int
    re-boxing an array would pay per element.  The pre-pass itself runs
    on the numpy backend when available (:data:`STRUCTURE_BACKEND`).
    """

    __slots__ = (
        "gaps",
        "vpns",
        "cum",
        "exhausted",
        "_source",
        "prev",
        "nxt",
        "sub_min_prev",
        "blk_min_prev",
        "occ",
        "boundary_firsts",
        "_last_pos",
        "_oracles",
    )

    def __init__(self, events: Iterable[Tuple[int, int]]) -> None:
        self.gaps = array("q")
        self.vpns = array("q")
        self.cum = array("q")
        self.exhausted = False
        self._source: Iterator[Tuple[int, int]] = iter(events)
        self.prev: List[int] = []
        self.nxt: List[int] = []
        self.sub_min_prev: List[int] = []
        self.blk_min_prev: List[int] = []
        self.occ: dict = {}
        self.boundary_firsts: List[int] = []
        #: vpn -> position of its latest structured occurrence.
        self._last_pos: dict = {}
        #: (nsets, ways) -> cached :class:`ReuseOracle` over this trace.
        self._oracles: dict = {}

    def __len__(self) -> int:
        return len(self.gaps)

    def ensure(self, upto: int) -> int:
        """Compile until at least ``upto`` events exist (or the stream
        ends); returns the number of events available.

        A source generator that *raises* mid-chunk leaves the columns
        consistent (each event's three appends complete before the next
        pull) and marks the trace exhausted, so the exception surfaces
        exactly once: later ``ensure`` calls return the compiled prefix
        quietly instead of re-poking a broken generator.
        """
        gaps_append = self.gaps.append
        vpns_append = self.vpns.append
        cum_append = self.cum.append
        source = self._source
        total = self.cum[-1] if self.cum else 0
        while not self.exhausted and len(self.gaps) < upto:
            pulled = 0
            try:
                for gap, vpn in source:
                    gaps_append(gap)
                    vpns_append(vpn)
                    total += gap + 1
                    cum_append(total)
                    pulled += 1
                    if pulled >= CHUNK:
                        break
            except BaseException:
                self.exhausted = True
                raise
            if pulled < CHUNK:
                self.exhausted = True
        return len(self.gaps)

    def ensure_structure(self, upto: int) -> int:
        """Extend the run-structure columns over every compiled event.

        ``upto`` is a floor, not a budget: the structure always catches
        up with whatever :meth:`ensure` has compiled (events are only
        compiled because a run will consume them, so structuring them all
        wastes nothing and keeps the block minima chunk-aligned).
        Returns the number of structured positions.
        """
        limit = len(self.gaps)
        start = len(self.prev)
        if start < limit:
            if _structure_np is not None:
                _structure_np.extend_structure(self, start, limit, INF_HORIZON)
            else:
                self._extend_structure(start, limit)
            self._extend_minima(limit)
        return len(self.prev)

    def _extend_structure(self, start: int, limit: int) -> None:
        """Pure-Python structure pre-pass over positions [start, limit)."""
        vpns = self.vpns
        nxt = self.nxt
        occ = self.occ
        last_pos = self._last_pos
        append_prev = self.prev.append
        append_nxt = nxt.append
        append_bf = self.boundary_firsts.append
        for position in range(start, limit):
            vpn = vpns[position]
            earlier = last_pos.get(vpn, -1)
            append_prev(earlier)
            append_nxt(INF_HORIZON)
            if earlier >= start:
                nxt[earlier] = position
            else:
                append_bf(position)
                if earlier >= 0:
                    nxt[earlier] = position
            last_pos[vpn] = position
            chain = occ.get(vpn)
            if chain is None:
                occ[vpn] = [position]
            else:
                chain.append(position)

    def _extend_minima(self, limit: int) -> None:
        """Extend the two block-minima tiers over fully-structured blocks.

        ``prev`` is immutable once appended, so the minima never go
        stale; ``min()`` over a list slice runs at C speed without
        re-boxing the ints.
        """
        prev = self.prev
        sub = self.sub_min_prev
        for block in range(len(sub), limit // SUB_BLOCK):
            base = block * SUB_BLOCK
            sub.append(min(prev[base:base + SUB_BLOCK]))
        blk = self.blk_min_prev
        span = RUN_BLOCK // SUB_BLOCK
        for block in range(len(blk), limit // RUN_BLOCK):
            base = block * span
            blk.append(min(sub[base:base + span]))

    def reuse_oracle(self, nsets: int, ways: int, upto: int) -> "ReuseOracle":
        """The (cached) exact LRU hit/miss oracle for one TLB geometry,
        extended to cover at least ``min(upto, len(self))`` positions."""
        key = (nsets, ways)
        oracle = self._oracles.get(key)
        if oracle is None:
            oracle = ReuseOracle(nsets, ways)
            self._oracles[key] = oracle
        oracle.extend(self, min(upto, len(self.gaps)))
        return oracle


class ReuseOracle:
    """Exact per-set LRU miss schedule for one trace x one TLB geometry.

    The run kernel's *horizon ledger* proves hit-runs incrementally, one
    probe per miss.  For a single-ASID trace replayed into an LRU
    set-associative TLB starting empty, the entire hit/miss schedule is a
    pure function of the trace and the geometry -- so this pre-pass
    simulates each set as an insertion-ordered dict (Python dicts *are*
    LRU stacks: delete + reinsert moves a key to MRU, ``next(iter(s))``
    is the LRU victim) and records, per compiled position, only the
    misses:

    ``miss_pos[k]`` / ``miss_page[k]``
        Trace position and page of the k-th miss.
    ``miss_evict[k]``
        The page evicted by the k-th miss's fill, or -1 when the fill
        took an invalid way (TLB not yet warm in that set).
    ``inv_cum[k]``
        Cumulative count of invalid-way fills through miss ``k``
        (inclusive) -- lets a slice replay derive its eviction count by
        subtraction.
    ``page_misses``
        ``vpn -> ascending positions of that page's misses``; a miss
        that is the page's *first* miss globally is its first-ever walk
        (the one that may auto-map and allocate the physical frame).

    ``BaseTLB.translate_runs`` replays a whole quantum slice against
    this schedule in O(misses), touching Python-level TLB entry objects
    only once per slice (reconciliation), instead of O(misses) probe
    calls through the ledger.  The engagement predicate -- empty TLB,
    position 0, true-LRU policy, single ASID, auto-mapping walker, no
    superpages, no secure region -- lives in the TLB layer, which falls
    back to the ledger (and from there to per-access probes) whenever
    any assumption breaks; the oracle itself is policy-free trace math.

    Extension is incremental (``extend``) so infinite streams pay only
    for what a run consumes; a fully-associative geometry is simply
    ``nsets == 1``.
    """

    __slots__ = (
        "nsets",
        "ways",
        "limit",
        "miss_pos",
        "miss_page",
        "miss_evict",
        "inv_cum",
        "page_misses",
        "_sets",
        "_invalid",
    )

    def __init__(self, nsets: int, ways: int) -> None:
        if nsets <= 0 or ways <= 0:
            raise ValueError("oracle geometry must be positive")
        self.nsets = nsets
        self.ways = ways
        #: Positions [0, limit) are simulated.
        self.limit = 0
        self.miss_pos = array("q")
        self.miss_page = array("q")
        self.miss_evict = array("q")
        self.inv_cum = array("q")
        self.page_misses: dict = {}
        self._sets: List[dict] = [dict() for _ in range(nsets)]
        self._invalid = 0

    def extend(self, trace: "CompiledTrace", limit: int) -> None:
        """Simulate positions ``[self.limit, limit)`` of ``trace``."""
        if limit <= self.limit:
            return
        vpns = trace.vpns
        nsets = self.nsets
        ways = self.ways
        sets = self._sets
        page_misses = self.page_misses
        append_pos = self.miss_pos.append
        append_page = self.miss_page.append
        append_evict = self.miss_evict.append
        append_inv = self.inv_cum.append
        invalid = self._invalid
        for position in range(self.limit, limit):
            vpn = vpns[position]
            lru = sets[vpn % nsets]
            if vpn in lru:
                del lru[vpn]  # Re-insert below: dict order is LRU order.
                lru[vpn] = None
                continue
            if len(lru) >= ways:
                victim = next(iter(lru))
                del lru[victim]
                append_evict(victim)
            else:
                append_evict(-1)
                invalid += 1
            lru[vpn] = None
            append_pos(position)
            append_page(vpn)
            append_inv(invalid)
            chain = page_misses.get(vpn)
            if chain is None:
                page_misses[vpn] = [position]
            else:
                chain.append(position)
        self._invalid = invalid
        self.limit = limit


def supports_fastpath(tlb: object) -> bool:
    """Whether a TLB-like object implements the packed fast path.

    True for every :class:`repro.tlb.BaseTLB` design and any
    :class:`repro.tlb.TLBHierarchy` depth (each level keeps its own fast
    lookup index; only the outermost hit path is exercised per access);
    duck-typed so externally-composed stand-ins simply fall back to the
    reference path instead of breaking.
    """
    return hasattr(tlb, "translate_fast")


def supports_runpath(tlb: object) -> bool:
    """Whether a TLB-like object implements the run-granular kernel."""
    return hasattr(tlb, "translate_runs")


class RunState:
    """The run kernel's cross-quantum proof state for one (runner, trace).

    The proof has two halves (see :meth:`repro.tlb.BaseTLB.translate_runs`):

    ``threshold``
        An *absolute trace position* ``T`` such that every page touched
        at a position ``>= T`` is still resident -- except the pages in
        the eviction ledger below.  ``T`` only moves on the events whose
        exact effect the kernel cannot name: an eviction of unknown
        identity, a superpage eviction, a no-fill return (``T`` moves
        *past* the miss: the requested page itself was left non-resident),
        or an external mutation (reset to the resume position).
    ``hheap`` / ``open_evicts``
        The eviction ledger.  An ordinary eviction un-residents exactly
        one page ``V``; instead of collapsing ``T``, the kernel bisects
        ``V``'s occurrence list for its next appearance ``q`` -- a forced
        miss -- and pushes ``q`` onto the min-heap ``hheap`` of
        *next-eviction horizons*.  Hit-runs extend only below the heap
        top, and each horizon is popped when its probe refills the page.
        A page with no known future occurrence parks in ``open_evicts``
        (``vpn -> eviction position``) until the trace's newly-structured
        ``boundary_firsts`` (scanned from ``bf_cursor``) reveal one.

    ``mut`` snapshots the owning TLB's mutation counter at the end of the
    last quantum; a mismatch at the start of the next one means some
    other actor (another process's evictions, an ``sfence.vma``, a
    Sec-region update) touched replacement state in between, and the
    whole proof state restarts at the resume position.  It initialises
    to -1 so a fresh state never trusts an unvalidated proof.

    ``run_hits`` / ``probed`` / ``runs`` count accesses proven by runs,
    accesses that went through the per-access probe, and the number of
    nonempty runs -- harvested into :data:`KERNEL_TELEMETRY`.

    ``walk_cache`` / ``walk_token`` memoize page-table walks on the
    probed-miss path (``vpn -> ppn << 20 | cycles << 2 | level``),
    validated against the translator's ``memo_token`` (the page table's
    mapping version) once per quantum -- mappings cannot change *during*
    a quantum, so a stable token proves every cached result is what
    ``walk`` would return.  Translators without a ``memo_token``
    (hierarchy level adapters, whose "walks" have lower-level side
    effects) never engage the cache.

    The ``o_*`` fields carry the *oracle tier* (see :class:`ReuseOracle`):
    while ``o_active``, whole quantum slices retire against the
    precomputed miss schedule and the ledger fields above lie fallow.
    ``o_resident`` maps each resident page to its :class:`~repro.tlb.entry.TLBEntry`
    object and ``o_free`` holds the per-set never-filled entry objects;
    ``o_pos`` / ``o_cursor`` are the trace position and miss-schedule
    index the oracle has retired through; ``o_clock0`` anchors the TLB
    clock at engagement so LRU timestamps reconstruct as ``clock0 +
    position + 1``.  ``o_accesses`` / ``o_fills`` / ``o_mut`` /
    ``o_token`` snapshot the TLB's access/fill counters, its mutation
    counter and the translator's mapping token after each slice; any
    between-quanta delta (another process touched the TLB, a remap, an
    ``sfence.vma``) disengages the oracle permanently for this state and
    the ledger takes over -- its own ``mut`` mismatch handles the
    hand-off reset.
    """

    __slots__ = (
        "threshold",
        "mut",
        "hheap",
        "open_evicts",
        "bf_cursor",
        "run_hits",
        "probed",
        "runs",
        "walk_cache",
        "walk_token",
        "o_active",
        "o_oracle",
        "o_cursor",
        "o_pos",
        "o_clock0",
        "o_resident",
        "o_free",
        "o_accesses",
        "o_fills",
        "o_mut",
        "o_token",
        "o_asid",
    )

    def __init__(self) -> None:
        self.threshold = 0
        self.mut = -1
        self.hheap: List[int] = []
        self.open_evicts: dict = {}
        self.bf_cursor = 0
        self.run_hits = 0
        self.probed = 0
        self.runs = 0
        self.walk_cache: dict = {}
        self.walk_token = -1
        self.o_active = False
        self.o_oracle = None
        self.o_cursor = 0
        self.o_pos = 0
        self.o_clock0 = 0
        self.o_resident: dict = {}
        self.o_free: List[list] = []
        self.o_accesses = 0
        self.o_fills = 0
        self.o_mut = 0
        self.o_token = -1
        self.o_asid = -1


class KernelTelemetry:
    """Aggregate run-kernel engagement counters (process-wide).

    Operators need to see whether the run tier actually engages (a
    miss-heavy workload degenerates to the per-access probe without any
    correctness signal).  Runners absorb their :class:`RunState` counts
    here at the end of each simulation; worker processes ship a snapshot
    delta back to the orchestrator, which absorbs it into its own
    instance, so ``run-all`` summaries and ``serve`` metrics see the
    whole fleet.
    """

    __slots__ = ("run_hits", "fallback_accesses", "runs")

    def __init__(self) -> None:
        self.run_hits = 0
        self.fallback_accesses = 0
        self.runs = 0

    def reset(self) -> None:
        self.run_hits = 0
        self.fallback_accesses = 0
        self.runs = 0

    def record(self, state: RunState) -> None:
        """Fold one runner's finished :class:`RunState` into the totals."""
        self.run_hits += state.run_hits
        self.fallback_accesses += state.probed
        self.runs += state.runs

    def snapshot(self) -> Tuple[int, int, int]:
        return (self.run_hits, self.fallback_accesses, self.runs)

    def absorb(self, delta: Tuple[int, int, int]) -> None:
        """Add a worker's ``snapshot`` delta to this instance."""
        self.run_hits += delta[0]
        self.fallback_accesses += delta[1]
        self.runs += delta[2]


#: Process-wide run-kernel engagement counters (see
#: :class:`KernelTelemetry`); surfaced by ``run-all`` and ``serve``.
KERNEL_TELEMETRY = KernelTelemetry()
