"""The declarative fault plan: what to inject, where, when, which seed.

A :class:`FaultPlan` is the complete, JSON-serializable description of one
chaos campaign.  Each :class:`FaultSpec` names a *fault class* from a fixed
taxonomy -- sim-layer faults corrupt the simulated hardware below the
architectural interface, runner-layer faults misbehave inside the
orchestration stack -- plus a trigger point and repeat count.  All
randomness (which entry to corrupt, which bit to flip, how much jitter) is
drawn from a :class:`random.Random` derived from the plan seed and the
spec's position, so a campaign replays bit-for-bit from its plan alone.
"""

from __future__ import annotations

import json
import zlib
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Tuple

#: Sim-layer fault classes: hardware misbehaviour below the ISA.
SIM_FAULT_KINDS: Tuple[str, ...] = (
    # Corrupt one live TLB entry's physical page number (a stored-state
    # bit flip altering where a translation points).
    "bitflip-ppn",
    # Corrupt one live entry's ASID tag (a translation leaks across
    # address spaces -- exactly the paper's cross-process hazard).
    "bitflip-asid",
    # Corrupt one live entry's Sec bit (Section 4.2.2's secure-region
    # marker claims/loses protection it should not).
    "bitflip-sec",
    # Drop an ``sfence.vma`` / flush: the maintenance op is acknowledged
    # but the entries survive (stale-translation hazard).
    "drop-flush",
    # Add latency jitter to page-table walks (timing no longer a pure
    # function of the levels touched).
    "walk-jitter",
    # Silently invalidate a live entry with no eviction or flush event.
    "spurious-evict",
    # Corrupt the fast-lookup index (repro.sim.kernel): rebind a live
    # entry's index slot under a wrong key, breaking the index/array
    # coherence invariant the fast path relies on.
    "index-corrupt",
)

#: Runner-layer fault classes: orchestration-stack misbehaviour.
RUNNER_FAULT_KINDS: Tuple[str, ...] = (
    "hang",            # a worker stops making progress mid-cell
    "crash",           # a worker dies at a random point
    "corrupt-result",  # a worker returns a tampered result payload
    "torn-cache",      # a cache entry is truncated mid-write
    "poison",          # a cell that misbehaves on every attempt
)

#: Executor-layer fault classes: lease-protocol misbehaviour in the
#: work-stealing executor (see :mod:`repro.runner.distributed`).  Names
#: match :data:`repro.faults.chaos.EXECUTOR_FAULT_MODES`, plus the
#: cross-host poison case (a cell that fails on every worker it reaches).
EXECUTOR_FAULT_KINDS: Tuple[str, ...] = (
    "worker-sigkill",     # a worker dies by SIGKILL mid-cell
    "heartbeat-freeze",   # a worker holds its lease but stops renewing
    "duplicate-lease",    # two workers hold the same cell at once
    "stale-lease",        # a lease claimed with an expired heartbeat
    "torn-journal",       # a worker journal cut mid-record by a kill
    "result-tamper",      # a result payload flipped after sealing
    "cross-host-poison",  # a cell that fails on every worker, everywhere
)

FAULT_KINDS: Tuple[str, ...] = (
    SIM_FAULT_KINDS + RUNNER_FAULT_KINDS + EXECUTOR_FAULT_KINDS
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``trigger`` is the injection point in the layer's own clock: for sim
    faults, the 1-based translation count after which the fault fires; for
    runner faults, the 1-based attempt number on which a worker
    misbehaves.  ``count`` repeats the injection (each drawing fresh
    randomness from the spec's RNG).
    """

    kind: str
    trigger: int = 40
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.trigger < 1:
            raise ValueError("trigger is 1-based and must be >= 1")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    @property
    def layer(self) -> str:
        if self.kind in SIM_FAULT_KINDS:
            return "sim"
        if self.kind in EXECUTOR_FAULT_KINDS:
            return "executor"
        return "runner"


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded sequence of faults to inject."""

    name: str
    seed: int = 2019
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def rng_for(self, index: int) -> random.Random:
        """The injection RNG of ``specs[index]``.

        Seeded from the plan seed and the spec's identity via CRC32 (like
        :func:`repro.runner.registry.stable_seed`): stable across
        processes and interpreter runs, independent of execution order.
        """
        spec = self.specs[index]
        label = f"{self.seed}/{index}/{spec.kind}"
        return random.Random(zlib.crc32(label.encode()))

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [asdict(spec) for spec in self.specs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            name=payload["name"],
            seed=int(payload.get("seed", 2019)),
            specs=tuple(
                FaultSpec(**spec) for spec in payload.get("specs", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def default_sim_plan(seed: int = 2019) -> FaultPlan:
    """One spec per sim-layer fault class: the detection-matrix campaign.

    Triggers are tuned to the campaign workload
    (:func:`repro.faults.campaign.drive_workload`): maintenance-clocked
    faults drop the *second* flush (the first must complete so state
    exists to go stale), translation-clocked faults fire after the
    workload's own flushes, so the corruption survives to the final audit.
    """
    triggers = {
        "drop-flush": 2,
        # Fire after the workload's last re-translation of any live entry:
        # a legally announced refill of the victim would otherwise erase
        # the evidence before the final audit.
        "spurious-evict": 64,
    }
    return FaultPlan(
        name="sim-default",
        seed=seed,
        specs=tuple(
            FaultSpec(
                kind=kind,
                trigger=triggers.get(kind, 40),
                # Jitter several consecutive walks: on the RF design some
                # walks belong to bus-invisible random fills, and at least
                # one jittered walk must be a requested (visible) one.
                count=3 if kind == "walk-jitter" else 1,
            )
            for kind in SIM_FAULT_KINDS
        ),
    )


def default_runner_plan(seed: int = 2019) -> FaultPlan:
    """One spec per runner-layer fault class: the chaos-hardening campaign."""
    return FaultPlan(
        name="runner-default",
        seed=seed,
        specs=tuple(
            FaultSpec(kind=kind, trigger=1) for kind in RUNNER_FAULT_KINDS
        ),
    )


def default_executor_plan(seed: int = 2019) -> FaultPlan:
    """One spec per executor-layer fault class: the lease-protocol campaign.

    Every spec triggers on the first attempt: the protocol must recover
    each violation with honest retries, so faults firing any later would
    only retest the same clauses with less budget left.
    """
    return FaultPlan(
        name="executor-default",
        seed=seed,
        specs=tuple(
            FaultSpec(kind=kind, trigger=1) for kind in EXECUTOR_FAULT_KINDS
        ),
    )
