"""Detectors: the security assertions that must fire when hardware lies.

Following "Translating Common Security Assertions Across Processor
Designs" (PAPERS.md), each detector is one checkable assertion over the
:class:`repro.sim.MemorySystem` seam -- the same seam the tlb invariant
suite, the analysis taint cross-check and the security evaluator observe.
A fault-injection campaign proves the assertions are *live*: every fault
class of :data:`repro.faults.plan.SIM_FAULT_KINDS` must trip at least one
detector, otherwise a hardware bug could silently alter the paper's
Table 4 / Figure 7 conclusions.

======================  =====================================================
``tlb-audit``           :meth:`repro.tlb.BaseTLB.audit` structural check
``shadow-model``        an event-bus shadow TLB diverges from the real one
``translation-oracle``  a live entry's PPN is not what the page tables say
``sec-bit``             a Sec bit is set outside the secure region
``walk-timing``         a walk latency is not a whole number of levels
``flush-efficacy``      entries survive a flush the bus says happened
======================  =====================================================

Detectors are hierarchy-aware: ``tlb-audit`` runs the structural check in
every level (the hierarchy prefixes problems with ``L<n>:``), and the
shadow model keeps one shadow *per level*, replaying the level-tagged
fill/evict events, so corruption confined to an L2 is caught even when
the L1 stays pristine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mmu.address import LEVELS
from repro.sim.events import EvictEvent, FillEvent, FlushEvent, WalkEvent
from repro.sim.system import MemorySystem


def _levels_of(tlb) -> List[Tuple[int, object]]:
    """``(1-based level number, level TLB)`` pairs; one pair when flat."""
    levels = getattr(tlb, "levels", None)
    if levels is None:
        return [(1, tlb)]
    return [(number, level) for number, level in enumerate(levels, start=1)]


class Detector:
    """One named assertion accumulating violations."""

    name: str = ""

    def __init__(self) -> None:
        self.violations: List[str] = []

    def attach(self, memory: MemorySystem) -> "Detector":
        self.memory = memory
        return self

    def flag(self, message: str) -> None:
        self.violations.append(message)

    def finish(self) -> None:
        """Run end-of-campaign checks (event handlers ran live)."""


class TLBAuditDetector(Detector):
    """The invariant suite's structural checks, against the live TLB."""

    name = "tlb-audit"

    def finish(self) -> None:
        for problem in self.memory.tlb.audit():
            self.flag(problem)


class ShadowModelDetector(Detector):
    """Replays bus events into per-level shadow TLBs and diffs reality.

    Every architecturally announced fill must still be resident in its
    level (unless an announced eviction, flush or context-switch policy
    removed it), and must translate to the announced PPN.  With ``strict``
    (standard designs, whose every fill is bus-visible) the converse holds
    too: no unannounced entries may exist.  The Random-Fill TLB's random
    fills are deliberately invisible on the bus, so RF levels audit
    one-sided regardless of ``strict`` (detected via the design's no-fill
    buffer flag).

    One shadow per hierarchy level, keyed by the events' ``level`` tag,
    means corruption confined to a lower level is caught even when the L1
    stays pristine -- a flat shadow would let an L2 bit flip hide behind a
    correct L1 copy of the same page.
    """

    name = "shadow-model"

    def __init__(self, strict: bool = True) -> None:
        super().__init__()
        self.strict = strict
        #: level -> (vpn, asid) -> announced ppn, for base-page fills.
        self.shadow: Dict[int, Dict[Tuple[int, int], int]] = {}

    def attach(self, memory: MemorySystem) -> "ShadowModelDetector":
        super().attach(memory)
        bus = memory.bus
        bus.on_fill(self._on_fill)
        bus.on_evict(self._on_evict)
        bus.on_flush(self._on_flush)
        return self

    def _level(self, number: int) -> Dict[Tuple[int, int], int]:
        shadow = self.shadow.get(number)
        if shadow is None:
            shadow = self.shadow[number] = {}
        return shadow

    def _on_fill(self, event: FillEvent) -> None:
        if event.ppn is not None:
            self._level(event.level)[(event.vpn, event.asid)] = event.ppn

    def _on_evict(self, event: EvictEvent) -> None:
        self._level(event.level).pop((event.vpn, event.asid), None)

    def _on_flush(self, event: FlushEvent) -> None:
        shadows = (
            self.shadow.values()
            if event.level is None
            else (self._level(event.level),)
        )
        for shadow in shadows:
            if event.scope == "all":
                shadow.clear()
            elif event.scope == "asid":
                for key in [k for k in shadow if k[1] == event.asid]:
                    del shadow[key]
            elif event.scope == "page":
                shadow.pop((event.vpn, event.asid), None)

    def finish(self) -> None:
        for number, level in _levels_of(self.memory.tlb):
            self._finish_level(number, level)

    def _finish_level(self, number: int, level) -> None:
        shadow = self.shadow.get(number, {})
        real = {
            (entry.vpn, entry.asid): entry.ppn
            for entry in level.entries()
            if entry.level == 0
        }
        for (vpn, asid), ppn in sorted(shadow.items()):
            if (vpn, asid) not in real:
                self.flag(
                    f"L{number}: announced fill vpn={vpn:#x} asid={asid} is"
                    " no longer resident (no eviction or flush was announced)"
                )
            elif real[(vpn, asid)] != ppn:
                self.flag(
                    f"L{number}: vpn={vpn:#x} asid={asid} translates to"
                    f" {real[(vpn, asid)]:#x}, bus announced {ppn:#x}"
                )
        if self.strict and not getattr(level, "_NOFILL_BUFFER", False):
            for (vpn, asid) in sorted(set(real) - set(shadow)):
                self.flag(
                    f"L{number}: unannounced resident entry"
                    f" vpn={vpn:#x} asid={asid}"
                )


class TranslationOracleDetector(Detector):
    """Cross-checks every live entry against the page tables.

    The walker's page tables are ground truth (the analysis layer's taint
    cross-check trusts the same source): a resident translation the OS
    never mapped, or one pointing at the wrong frame, is corruption.
    """

    name = "translation-oracle"

    def finish(self) -> None:
        walker = self.memory.walker
        if not hasattr(walker, "peek"):  # e.g. IdentityTranslator
            return
        for entry in self.memory.tlb.entries():
            if entry.level != 0:
                continue
            expected = walker.peek(entry.vpn, entry.asid)
            if expected is None:
                self.flag(
                    f"entry vpn={entry.vpn:#x} asid={entry.asid} has no"
                    " page-table mapping"
                )
            elif expected != entry.ppn:
                self.flag(
                    f"entry vpn={entry.vpn:#x} asid={entry.asid} holds"
                    f" ppn={entry.ppn:#x}, page table says {expected:#x}"
                )


class SecBitDetector(Detector):
    """Sec bits may only mark pages inside the programmed secure region."""

    name = "sec-bit"

    def finish(self) -> None:
        # Per level: each level holds its own region registers (a
        # hierarchy may protect the L1 while leaving the L2's Sec-bit
        # machinery unprogrammed via the spec's ``sec_bit: false``).
        for _number, level in _levels_of(self.memory.tlb):
            self._finish_level(level)

    def _finish_level(self, tlb) -> None:
        sbase = getattr(tlb, "sbase", 0)
        ssize = getattr(tlb, "ssize", 0)
        for entry in tlb.entries():
            inside = ssize > 0 and sbase <= entry.vpn < sbase + ssize
            if entry.sec and not inside:
                self.flag(
                    f"sec bit set on vpn={entry.vpn:#x} asid={entry.asid}"
                    " outside the secure region"
                )
            elif not entry.sec and inside and hasattr(tlb, "set_secure_region"):
                victim = getattr(tlb, "victim_asid", None)
                if victim is None or entry.asid == victim:
                    self.flag(
                        f"sec bit clear on secure-region vpn={entry.vpn:#x}"
                        f" asid={entry.asid}"
                    )


class WalkTimingDetector(Detector):
    """Walk latency must be a whole number of radix-level accesses.

    Footnote 3: no page-walk cache, so a walk's cycles are exactly
    ``levels_touched * cycles_per_level`` with ``1 <= levels <= 3``.
    Jitter breaks the multiple; detection is immediate, per event.
    Walks tagged ``cached`` were served by a hierarchy's page-walk cache
    (hardware the footnote excludes) and are exempt.
    """

    name = "walk-timing"

    def attach(self, memory: MemorySystem) -> "WalkTimingDetector":
        super().attach(memory)
        cycles_per_level = getattr(
            getattr(memory.walker, "config", None), "cycles_per_level", None
        )
        self._allowed = (
            frozenset(
                level * cycles_per_level for level in range(1, LEVELS + 1)
            )
            if cycles_per_level
            else None
        )
        memory.bus.on_walk(self._on_walk)
        return self

    def _on_walk(self, event: WalkEvent) -> None:
        if event.cached:
            return
        if self._allowed is not None and event.cycles not in self._allowed:
            self.flag(
                f"walk of vpn={event.vpn:#x} took {event.cycles} cycles,"
                f" not a whole number of levels ({sorted(self._allowed)})"
            )


class FlushEfficacyDetector(Detector):
    """After an announced flush, the flushed entries must be gone.

    Checked synchronously in the flush event handler, so a dropped
    ``sfence.vma`` is caught at the exact request that lied, before any
    refill could mask it.
    """

    name = "flush-efficacy"

    def attach(self, memory: MemorySystem) -> "FlushEfficacyDetector":
        super().attach(memory)
        memory.bus.on_flush(self._on_flush)
        return self

    def _on_flush(self, event: FlushEvent) -> None:
        tlb = self.memory.tlb
        if event.scope == "all":
            survivors = tlb.occupancy() if hasattr(tlb, "occupancy") else 0
            if survivors:
                self.flag(
                    f"full flush announced but {survivors} entries survive"
                )
        elif event.scope == "asid":
            stale = [
                entry.vpn
                for entry in tlb.entries()
                if entry.asid == event.asid
            ]
            if stale:
                self.flag(
                    f"flush of asid {event.asid} announced but"
                    f" {len(stale)} stale translations survive"
                )
        elif event.scope == "page":
            if tlb.resident(event.vpn, event.asid):
                self.flag(
                    f"invalidation of vpn={event.vpn:#x} asid={event.asid}"
                    " announced but the entry survives"
                )


@dataclass
class DetectorSuite:
    """All detectors over one memory system, plus the final verdict."""

    detectors: Tuple[Detector, ...] = ()
    memory: Optional[MemorySystem] = None
    _finished: bool = field(default=False, repr=False)

    @classmethod
    def standard(
        cls,
        memory: MemorySystem,
        strict_shadow: bool = True,
        timing: bool = True,
    ) -> "DetectorSuite":
        """The full battery, attached before the workload runs.

        ``strict_shadow`` is relaxed for the Random-Fill TLB, whose
        design-internal random fills are bus-invisible (the shadow then
        audits one-sided).  ``timing`` stays valid for every design --
        an access is only ever charged its own requested walk -- but can
        be dropped for translators without a uniform cost model.
        """
        detectors: Tuple[Detector, ...] = (
            TLBAuditDetector(),
            ShadowModelDetector(strict=strict_shadow),
            TranslationOracleDetector(),
            SecBitDetector(),
            *((WalkTimingDetector(),) if timing else ()),
            FlushEfficacyDetector(),
        )
        for detector in detectors:
            detector.attach(memory)
        return cls(detectors=detectors, memory=memory)

    def finish(self) -> Dict[str, List[str]]:
        """Run final checks; detector name -> violations (fired only)."""
        if not self._finished:
            for detector in self.detectors:
                detector.finish()
            self._finished = True
        return {
            detector.name: detector.violations
            for detector in self.detectors
            if detector.violations
        }

    @property
    def fired(self) -> Tuple[str, ...]:
        return tuple(sorted(self.finish()))
