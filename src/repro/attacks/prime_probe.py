"""A TLBleed-style Prime + Probe attack on the traced RSA victim.

The attack instantiates Table 2's ``A_d ~> V_u ~> A_d (slow)`` row against
the real workload of Section 5.1: libgcrypt-style modular exponentiation,
where the page behind the ``tp`` pointer is touched only in exponent-bit
windows whose bit is 1 (Figure 5).  Per window the attacker:

1. **primes** the TLB set the ``tp`` page maps to with its own pages,
2. lets the victim execute one square-(multiply)-swap window,
3. **probes** its pages and reads the TLB miss counter: an eviction in the
   monitored set marks the bit as 1.

Against the standard SA TLB the recovery is near-perfect (the paper cites
TLBleed's 92% single-trace success on real hardware; the simulator has no
system noise).  Against the RF TLB the victim's secure-region accesses fill
*random* region pages, decorrelating evictions from ``tp`` and driving the
recovery toward guessing.

Attacker and victim share one :class:`repro.sim.MemorySystem`; the
prime/probe mechanics come from :class:`repro.sim.SetProber`.  Every
entry point accepts an optional ``bus`` for event-trace observability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.mmu import PageTableWalker, make_walker
from repro.security.kinds import TLBKind, make_tlb
from repro.sim.events import EventBus
from repro.sim.probe import SetProber, pages_for_set
from repro.sim.system import MemorySystem
from repro.tlb import RandomFillTLB, TLBConfig
from repro.tlb.base import BaseTLB
from repro.workloads.rsa import MPIBuffers, RSAKey, TracedModExp, generate_key

VICTIM_ASID = 1
ATTACKER_ASID = 2
#: Attacker-owned pages used for priming (disjoint from the victim's).
PROBE_BASE = 0x600


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one key-recovery attempt."""

    true_bits: str
    recovered_bits: str
    kind: TLBKind

    @property
    def accuracy(self) -> float:
        matches = sum(
            1 for a, b in zip(self.true_bits, self.recovered_bits) if a == b
        )
        return matches / len(self.true_bits) if self.true_bits else 0.0

    @property
    def recovered_exactly(self) -> bool:
        return self.true_bits == self.recovered_bits


class PrimeProbeAttacker(SetProber):
    """Monitors one TLB set through the prime/probe cycle."""

    def __init__(
        self,
        memory: MemorySystem,
        monitored_set: int,
        nsets: int,
        ways: int,
        asid: int = ATTACKER_ASID,
    ) -> None:
        super().__init__(
            memory, pages_for_set(PROBE_BASE, monitored_set, nsets, ways), asid
        )

    @property
    def probe_pages(self) -> List[int]:
        return self.pages


def recover_secret_bits(
    tlb: BaseTLB,
    walker: PageTableWalker,
    victim,
    monitored_page: int,
    nsets: Optional[int] = None,
    bus: Optional[EventBus] = None,
) -> str:
    """Prime + Probe a traced victim's secret-dependent page, per window.

    ``victim`` is any traced computation exposing the protocol of
    :class:`repro.workloads.rsa.TracedModExp` /
    :class:`repro.workloads.ecc.TracedScalarMult`: its ``run()`` yields
    ``("bit", index, _)`` window boundaries and ``("access", gap, vpn)``
    page touches.  Returns one recovered bit per window, MSB first.
    """
    memory = MemorySystem(tlb, walker, bus=bus)
    nsets = nsets if nsets is not None else tlb.config.sets
    attacker = PrimeProbeAttacker(
        memory,
        monitored_set=monitored_page % nsets,
        nsets=nsets,
        ways=tlb.config.ways,
    )
    recovered: List[str] = []
    pending_probe = False
    for kind, _arg1, vpn in victim.run():
        if kind == "bit":
            if pending_probe:
                recovered.append("1" if attacker.probe().evicted else "0")
            attacker.prime()
            pending_probe = True
        else:
            memory.translate(vpn, VICTIM_ASID)
    if pending_probe:
        recovered.append("1" if attacker.probe().evicted else "0")
    return "".join(recovered)


def recover_exponent(
    tlb: BaseTLB,
    walker: PageTableWalker,
    key: RSAKey,
    ciphertext: int,
    buffers: MPIBuffers = MPIBuffers(),
    nsets: Optional[int] = None,
    bus: Optional[EventBus] = None,
) -> str:
    """Run one decryption under Prime + Probe; return the recovered bits."""
    victim = TracedModExp(ciphertext, key.d, key.n, buffers)
    recovered = recover_secret_bits(
        tlb, walker, victim, monitored_page=buffers.tp_vpn, nsets=nsets,
        bus=bus,
    )
    assert victim.result == pow(ciphertext, key.d, key.n)
    return recovered


def tlbleed_attack(
    kind: TLBKind = TLBKind.SA,
    key: Optional[RSAKey] = None,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
    bus: Optional[EventBus] = None,
) -> AttackResult:
    """End-to-end TLBleed-style attack against one TLB design."""
    key = key or generate_key(bits=64, seed=11)
    buffers = MPIBuffers()
    tlb = make_tlb(
        kind,
        config,
        victim_asid=VICTIM_ASID,
        victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
        rng=random.Random(seed),
    )
    if isinstance(tlb, RandomFillTLB):
        tlb.set_secure_region(
            buffers.sbase, buffers.ssize, victim_asid=VICTIM_ASID
        )
    walker = make_walker()
    ciphertext = key.encrypt(0xC0FFEE % key.n)
    recovered = recover_exponent(tlb, walker, key, ciphertext, buffers, bus=bus)
    true_bits = format(key.d, "b")
    return AttackResult(true_bits=true_bits, recovered_bits=recovered, kind=kind)


def noisy_tlbleed_attack(
    kind: TLBKind = TLBKind.SA,
    key: Optional[RSAKey] = None,
    noise_accesses_per_window: int = 2,
    traces: int = 1,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
) -> AttackResult:
    """TLBleed with a third, unrelated process generating TLB noise.

    On real hardware the attacker shares the TLB with the whole system --
    the reason TLBleed post-processes its signals with machine learning.
    Here a noise process touches ``noise_accesses_per_window`` random
    pages inside every prime/probe window; noise landing in the monitored
    set produces false-positive evictions, and per-window majority voting
    over repeated ``traces`` recovers the accuracy (the classic
    noise-vs-repetition trade-off).
    """
    if traces < 1 or traces % 2 == 0:
        raise ValueError("traces must be a positive odd number")
    if noise_accesses_per_window < 0:
        raise ValueError("noise level cannot be negative")
    key = key or generate_key(bits=64, seed=11)
    buffers = MPIBuffers()
    walker = make_walker()
    ciphertext = key.encrypt(0xC0FFEE % key.n)
    rng = random.Random(seed)
    noise_asid = 3
    noise_base = 0x700

    votes: Optional[List[int]] = None
    for _trace in range(traces):
        tlb = make_tlb(
            kind,
            config,
            victim_asid=VICTIM_ASID,
            victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
            rng=rng,
        )
        if isinstance(tlb, RandomFillTLB):
            tlb.set_secure_region(
                buffers.sbase, buffers.ssize, victim_asid=VICTIM_ASID
            )
        memory = MemorySystem(tlb, walker)
        attacker = PrimeProbeAttacker(
            memory,
            monitored_set=buffers.tp_vpn % config.sets,
            nsets=config.sets,
            ways=config.ways,
        )
        victim = TracedModExp(ciphertext, key.d, key.n, buffers)
        recovered: List[str] = []
        pending_probe = False
        for kind_name, _arg1, vpn in victim.run():
            if kind_name == "bit":
                if pending_probe:
                    recovered.append(
                        "1" if attacker.probe().evicted else "0"
                    )
                attacker.prime()
                for _ in range(noise_accesses_per_window):
                    noise_vpn = noise_base + rng.randrange(
                        8 * config.sets
                    )
                    memory.translate(noise_vpn, noise_asid)
                pending_probe = True
            else:
                memory.translate(vpn, VICTIM_ASID)
        if pending_probe:
            recovered.append("1" if attacker.probe().evicted else "0")
        if votes is None:
            votes = [0] * len(recovered)
        for index, bit in enumerate(recovered):
            votes[index] += 1 if bit == "1" else -1
    assert votes is not None
    majority = "".join("1" if vote > 0 else "0" for vote in votes)
    return AttackResult(
        true_bits=format(key.d, "b"), recovered_bits=majority, kind=kind
    )


def itlb_attack(
    kind: TLBKind = TLBKind.SA,
    hardened: bool = False,
    key: Optional[RSAKey] = None,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
) -> AttackResult:
    """Prime + Probe against the *instruction* TLB.

    The classic (unhardened) square-and-multiply executes the multiply
    routine only in 1-bit windows, so the routine's *code page* is a
    secret-dependent I-TLB access -- the designs "can be applied to
    instruction TLBs as well" (Section 4) precisely because this channel
    exists.  With ``hardened=True`` (libgcrypt 1.8.2's unconditional
    multiply, Figure 5) the code-page pattern is constant and the I-TLB
    channel closes -- while the data-TLB ``tp`` channel of
    :func:`tlbleed_attack` remains.
    """
    from repro.workloads.rsa import CodePages

    key = key or generate_key(bits=64, seed=11)
    code = CodePages()
    buffers = MPIBuffers()
    itlb = make_tlb(
        kind,
        config,
        victim_asid=VICTIM_ASID,
        victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
        rng=random.Random(seed),
    )
    if isinstance(itlb, RandomFillTLB):
        itlb.set_secure_region(
            min(code.pages()), len(code.pages()), victim_asid=VICTIM_ASID
        )
    # The data TLB is irrelevant to this channel; a plain SA one absorbs
    # the rp/xp/tp accesses.
    dtlb = make_tlb(TLBKind.SA, config)
    walker = make_walker()
    imem = MemorySystem(itlb, walker)
    dmem = MemorySystem(dtlb, walker)

    attacker = PrimeProbeAttacker(
        imem,
        monitored_set=code.multiply_vpn % config.sets,
        nsets=config.sets,
        ways=config.ways,
    )
    ciphertext = key.encrypt(0xC0FFEE % key.n)
    victim = TracedModExp(
        ciphertext,
        key.d,
        key.n,
        buffers,
        hardened=hardened,
        code_pages=code,
    )
    code_pages = set(code.pages())
    recovered = []
    pending_probe = False
    for event, _arg1, vpn in victim.run():
        if event == "bit":
            if pending_probe:
                recovered.append("1" if attacker.probe().evicted else "0")
            attacker.prime()
            pending_probe = True
        elif vpn in code_pages:
            imem.translate(vpn, VICTIM_ASID)
        else:
            dmem.translate(vpn, VICTIM_ASID)
    if pending_probe:
        recovered.append("1" if attacker.probe().evicted else "0")
    assert victim.result == pow(ciphertext, key.d, key.n)
    return AttackResult(
        true_bits=format(key.d, "b"),
        recovered_bits="".join(recovered),
        kind=kind,
    )


def multi_trace_attack(
    kind: TLBKind = TLBKind.SA,
    key: Optional[RSAKey] = None,
    traces: int = 9,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
) -> AttackResult:
    """TLBleed with per-window majority voting over repeated decryptions.

    Real attackers average traces to beat noise (TLBleed post-processes
    with machine learning).  Against the SA TLB one trace already suffices;
    against the RF TLB voting sharpens the *residual access-count bias*
    (1-bit windows perform one extra secure access, hence one extra random
    fill) without recovering the key: the per-access channel of Table 4 is
    closed, and what remains is the count channel the paper's threat model
    does not cover (see EXPERIMENTS.md).
    """
    if traces < 1 or traces % 2 == 0:
        raise ValueError("traces must be a positive odd number")
    key = key or generate_key(bits=64, seed=11)
    buffers = MPIBuffers()
    walker = make_walker()
    ciphertext = key.encrypt(0xC0FFEE % key.n)
    votes: Optional[List[int]] = None
    rng = random.Random(seed)
    for _ in range(traces):
        tlb = make_tlb(
            kind,
            config,
            victim_asid=VICTIM_ASID,
            victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
            rng=rng,
        )
        if isinstance(tlb, RandomFillTLB):
            tlb.set_secure_region(
                buffers.sbase, buffers.ssize, victim_asid=VICTIM_ASID
            )
        recovered = recover_exponent(tlb, walker, key, ciphertext, buffers)
        if votes is None:
            votes = [0] * len(recovered)
        for index, bit in enumerate(recovered):
            votes[index] += 1 if bit == "1" else -1
    assert votes is not None
    majority = "".join("1" if vote > 0 else "0" for vote in votes)
    return AttackResult(
        true_bits=format(key.d, "b"), recovered_bits=majority, kind=kind
    )


def eddsa_attack(
    kind: TLBKind = TLBKind.SA,
    scalar: Optional[int] = None,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
) -> AttackResult:
    """The TLBleed EdDSA variant: recover an EC scalar via Prime + Probe.

    The monitored page is the point-addition temporaries touched only in
    1-bit windows of the double-and-add (the EdDSA analogue of ``tp``).
    """
    from repro.workloads.ecc import (
        ECCBuffers,
        TracedScalarMult,
        random_scalar,
    )

    scalar = scalar if scalar is not None else random_scalar(bits=64, seed=13)
    buffers = ECCBuffers()
    tlb = make_tlb(
        kind,
        config,
        victim_asid=VICTIM_ASID,
        victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
        rng=random.Random(seed),
    )
    if isinstance(tlb, RandomFillTLB):
        tlb.set_secure_region(
            buffers.sbase, buffers.ssize, victim_asid=VICTIM_ASID
        )
    walker = make_walker()
    victim = TracedScalarMult(scalar, buffers=buffers)
    recovered = recover_secret_bits(
        tlb, walker, victim, monitored_page=buffers.add_vpn
    )
    return AttackResult(
        true_bits=format(scalar, "b"), recovered_bits=recovered, kind=kind
    )
