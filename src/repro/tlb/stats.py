"""TLB statistics.

Mirrors the hardware counters the paper adds to Rocket Core: a TLB miss
counter readable from the micro security benchmarks (Figure 6 reads
``tlb_miss_count`` around the probe step), plus bookkeeping used by the
performance harness (MPKI) and the test suite (fills, evictions, the RF
TLB's random-fill/no-fill actions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TLBStats:
    """Event counters for one TLB instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    #: Normal fills of the requested translation.
    fills: int = 0
    #: Valid entries displaced by fills.
    evictions: int = 0
    #: Full flushes (sfence.vma with no address).
    flushes: int = 0
    #: Targeted invalidations attempted / that found a valid entry.
    invalidations: int = 0
    invalidation_hits: int = 0
    #: Random-Fill TLB actions (Section 4.2): translations returned through
    #: the no-fill buffer, and random fills performed instead.
    no_fills: int = 0
    random_fills: int = 0
    #: Per-ASID miss breakdown (used by the multiprogrammed harness).
    misses_by_asid: Dict[int, int] = field(default_factory=dict)

    def record_access(self, hit: bool, asid: int) -> None:
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.misses_by_asid[asid] = self.misses_by_asid.get(asid, 0) + 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction, the paper's Figure 7d-f metric."""
        if instructions <= 0:
            raise ValueError("instruction count must be positive")
        return 1000.0 * self.misses / instructions

    def snapshot(self) -> "TLBStats":
        """An independent copy (for before/after deltas in harnesses)."""
        copy = TLBStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            fills=self.fills,
            evictions=self.evictions,
            flushes=self.flushes,
            invalidations=self.invalidations,
            invalidation_hits=self.invalidation_hits,
            no_fills=self.no_fills,
            random_fills=self.random_fills,
        )
        copy.misses_by_asid = dict(self.misses_by_asid)
        return copy

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.flushes = 0
        self.invalidations = 0
        self.invalidation_hits = 0
        self.no_fills = 0
        self.random_fills = 0
        self.misses_by_asid.clear()
