"""Cache robustness: torn entries are misses, writes are atomic."""

import pickle

from repro.runner import ResultCache, Unit, unit_cache_key


def make_unit(**overrides):
    fields = dict(
        experiment="table4",
        key="SA/x",
        params={"kind": "SA", "row": 0, "trials": 40},
        seed=123,
    )
    fields.update(overrides)
    return Unit(**fields)


def entry_path(cache_dir, unit, version="v1"):
    key = unit_cache_key(unit, version)
    return cache_dir / key[:2] / f"{key}.pkl"


class TestTornEntries:
    def test_truncated_pickle_is_counted_and_repaired(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        unit = make_unit()
        cache.put(unit, {"answer": 42})
        path = entry_path(tmp_path, unit)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn mid-write

        hit, _ = cache.get(unit)
        assert not hit
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

        # The next store repairs the entry in place.
        cache.put(unit, {"answer": 42})
        hit, value = cache.get(unit)
        assert hit and value == {"answer": 42}
        assert cache.stats.corrupt == 1

    def test_empty_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        unit = make_unit()
        cache.put(unit, "value")
        entry_path(tmp_path, unit).write_bytes(b"")
        hit, _ = cache.get(unit)
        assert not hit
        assert cache.stats.corrupt == 1


class TestAtomicWrites:
    def test_no_staging_debris_after_puts(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        for index in range(5):
            cache.put(make_unit(key=f"SA/{index}"), index)
        assert list(tmp_path.rglob("*.tmp*")) == []
        assert len(list(tmp_path.rglob("*.pkl"))) == 5
        assert len(list(tmp_path.rglob("*.json"))) == 5

    def test_entry_is_a_whole_pickle(self, tmp_path):
        cache = ResultCache(tmp_path, code_version="v1")
        unit = make_unit()
        cache.put(unit, {"nested": [1, 2, 3]})
        record = pickle.loads(entry_path(tmp_path, unit).read_bytes())
        assert record["value"] == {"nested": [1, 2, 3]}
        assert record["code_version"] == "v1"
