"""Control-flow graph over assembled benchmark programs.

The guest leakage checker reasons about *where* secret data can flow, and
that requires knowing which instructions can follow which.  This module
builds a per-instruction CFG from a :class:`repro.isa.assembler.Program`:

* successors follow the interpreter's dispatch exactly -- fallthrough for
  straight-line code, the label target for ``j``, both arms for the
  conditional branches, nothing after ``halt``/``pass``/``fail``;
* a virtual *exit* node (index ``len(instructions)``) collects every
  program end, including falling off the last instruction;
* basic blocks are derived from the leaders for reporting and tests;
* postdominators and control dependences (Ferrante-style, specialised to
  two-way branches) support the implicit-flow half of the taint analysis:
  an instruction is control-dependent on a branch exactly when the branch
  outcome decides whether the instruction executes at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.isa.assembler import Program
from repro.isa.instructions import BRANCH_OPS, TERMINATORS


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` is the leader's instruction index; ``end`` is exclusive.
    """

    index: int
    start: int
    end: int

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


class ControlFlowGraph:
    """Instruction-granular CFG with a virtual exit node."""

    def __init__(self, program: Program) -> None:
        self.program = program
        instructions = program.instructions
        n = len(instructions)
        #: The virtual exit node's index.
        self.exit = n
        successors: List[List[int]] = [[] for _ in range(n)]
        for pc, instruction in enumerate(instructions):
            mnemonic = instruction.mnemonic
            if mnemonic in TERMINATORS:
                successors[pc].append(self.exit)
            elif mnemonic == "j":
                successors[pc].append(
                    program.label_target(instruction.symbol, instruction.line)
                )
            elif mnemonic in BRANCH_OPS:
                taken = program.label_target(
                    instruction.symbol, instruction.line
                )
                fallthrough = pc + 1 if pc + 1 < n else self.exit
                successors[pc].append(fallthrough)
                if taken not in successors[pc]:
                    successors[pc].append(taken)
            else:
                successors[pc].append(pc + 1 if pc + 1 < n else self.exit)
        self.successors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(edges) for edges in successors
        )
        predecessors: List[List[int]] = [[] for _ in range(n + 1)]
        for pc, edges in enumerate(self.successors):
            for target in edges:
                predecessors[target].append(pc)
        self.predecessors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(edges) for edges in predecessors
        )
        self.blocks: Tuple[BasicBlock, ...] = self._build_blocks()
        self._postdominators: Tuple[frozenset, ...] = ()

    # -- basic blocks -------------------------------------------------------------

    def _build_blocks(self) -> Tuple[BasicBlock, ...]:
        n = self.exit
        if n == 0:
            return ()
        leaders: Set[int] = {0}
        for pc, edges in enumerate(self.successors):
            if len(edges) > 1 or any(target != pc + 1 for target in edges):
                # A control transfer: its targets and its fallthrough lead.
                for target in edges:
                    if target < n:
                        leaders.add(target)
                if pc + 1 < n:
                    leaders.add(pc + 1)
        ordered = sorted(leaders)
        blocks = []
        for index, start in enumerate(ordered):
            end = ordered[index + 1] if index + 1 < len(ordered) else n
            blocks.append(BasicBlock(index=index, start=start, end=end))
        return tuple(blocks)

    def block_of(self, pc: int) -> BasicBlock:
        for block in self.blocks:
            if pc in block:
                return block
        raise IndexError(f"pc {pc} outside the program")

    # -- reachability -------------------------------------------------------------

    def reachable(self) -> frozenset:
        """Instruction indices reachable from the entry."""
        if self.exit == 0:
            return frozenset()
        seen: Set[int] = set()
        stack = [0]
        while stack:
            pc = stack.pop()
            if pc in seen or pc == self.exit:
                continue
            seen.add(pc)
            stack.extend(self.successors[pc])
        return frozenset(seen)

    # -- postdominance and control dependence -------------------------------------

    def postdominators(self) -> Tuple[frozenset, ...]:
        """``result[pc]``: the nodes postdominating ``pc`` (inclusive).

        Computed by the classic iterative dataflow over the reversed CFG;
        the virtual exit postdominates only itself.  Nodes that cannot
        reach the exit (an infinite loop) keep the full-set top value for
        everything past the loop, which is the conservative answer for
        control dependence.
        """
        if self._postdominators:
            return self._postdominators
        n = self.exit
        everything = frozenset(range(n + 1))
        pdom: List[frozenset] = [everything] * (n + 1)
        pdom[n] = frozenset({n})
        changed = True
        while changed:
            changed = False
            for pc in range(n - 1, -1, -1):
                meet = everything
                for successor in self.successors[pc]:
                    meet = meet & pdom[successor]
                updated = meet | {pc}
                if updated != pdom[pc]:
                    pdom[pc] = updated
                    changed = True
        self._postdominators = tuple(pdom)
        return self._postdominators

    def control_dependencies(self) -> Dict[int, frozenset]:
        """``result[pc]``: branch pcs whose outcome gates ``pc``.

        ``pc`` is control-dependent on branch ``b`` iff some successor of
        ``b`` is postdominated by ``pc`` while ``b`` itself is not (other
        than by ``b`` trivially): taking the other arm can skip ``pc``.
        """
        pdom = self.postdominators()
        dependencies: Dict[int, Set[int]] = {}
        for branch, edges in enumerate(self.successors):
            if len(edges) < 2:
                continue
            gated: Set[int] = set()
            for successor in edges:
                for pc in range(self.exit):
                    if pc in pdom[successor] and (
                        pc == branch or pc not in pdom[branch]
                    ):
                        gated.add(pc)
            gated.discard(branch)
            for pc in gated:
                dependencies.setdefault(pc, set()).add(branch)
        return {pc: frozenset(branches) for pc, branches in dependencies.items()}
