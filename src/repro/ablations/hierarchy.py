"""Security of two-level TLB hierarchies.

The paper designs and evaluates the L1 D-TLB and remarks the techniques
"can be applied to ... other levels of TLB".  This ablation shows that the
remark is load-bearing: protecting only the L1 is *not* enough.

The key mechanism: on an L1 miss the request goes to the L2, and an L2
miss performs the page-table walk and fills the L2 -- including for the
Random-Fill L1, whose *no-fill* path still resolves the secret translation
through the L2.  The victim's secret page therefore leaves a footprint in
a standard L2, and the attacker observes it through the walk counter (L2
evictions turn L1 misses into full walks).

The harness re-runs the Table 4 rows over three hierarchies:

* SA L1 + SA L2 -- the doubly standard baseline;
* RF L1 + SA L2 -- protected L1 only: the external miss-based rows leak
  again through the L2;
* RF L1 + RF L2 -- protection at both levels restores the full defence.

The declarative *sweep* generalizes the study to the full cross-product:
L1 in {SA, SP, RF} x L2 in {SA, SP, RF, none} x page-walk cache on/off
(24 designs described by :class:`repro.tlb.HierarchySpec`), each measured
for channel capacity (one representative Table 2 row per attack strategy)
and performance (the SecRSA workload through the timing model), plus a
dynamic refill-leakage cross-check over the event bus.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.isa import CPU, ExecutionStatus, assemble
from repro.mmu import make_walker
from repro.model.capacity import ChannelEstimate
from repro.model.patterns import Vulnerability
from repro.model.table2 import table2_vulnerabilities
from repro.security.benchgen import BenchmarkLayout, generate
from repro.security.kinds import TLBKind, make_hierarchy, make_two_level_tlb
from repro.tlb import TLBConfig
from repro.tlb.hierarchy import TwoLevelTLB
from repro.tlb.spec import HierarchySpec, LevelSpec, PWCSpec

#: The evaluated L1 and L2 organizations (an L2 is larger and slower).
L1_CONFIG = TLBConfig(entries=32, ways=8, hit_latency=1)
L2_CONFIG = TLBConfig(entries=128, ways=8, hit_latency=8)


@dataclass(frozen=True)
class HierarchyResult:
    """Defence outcome of one L1/L2 combination."""

    name: str
    estimates: Dict[Vulnerability, ChannelEstimate]

    @property
    def defended(self) -> int:
        return sum(
            1 for estimate in self.estimates.values() if estimate.defends()
        )

    def vulnerable_rows(self) -> List[Vulnerability]:
        return [
            vulnerability
            for vulnerability, estimate in self.estimates.items()
            if not estimate.defends()
        ]


def _make_hierarchy(
    l1_kind: TLBKind, l2_kind: TLBKind, rng: random.Random
) -> TwoLevelTLB:
    layout = BenchmarkLayout()
    return make_two_level_tlb(
        l1_kind,
        l2_kind,
        L1_CONFIG,
        L2_CONFIG,
        victim_asid=layout.victim_pid,
        rng=rng,
    )


def hierarchy_cells(
    combinations: Tuple[Tuple[TLBKind, TLBKind], ...] = (
        (TLBKind.SA, TLBKind.SA),
        (TLBKind.RF, TLBKind.SA),
        (TLBKind.RF, TLBKind.RF),
    ),
) -> List[Tuple[TLBKind, TLBKind, int, Vulnerability]]:
    """The study's work-list: one (L1, L2, row) cell per entry."""
    rows = table2_vulnerabilities()
    return [
        (l1_kind, l2_kind, index, vulnerability)
        for l1_kind, l2_kind in combinations
        for index, vulnerability in enumerate(rows)
    ]


def evaluate_hierarchy_cell(
    l1_kind: TLBKind,
    l2_kind: TLBKind,
    vulnerability: Vulnerability,
    trials: int = 40,
    seed: int = 7,
) -> ChannelEstimate:
    """Run one Table 2 row against an L1/L2 combination (a pure cell).

    The RNG is derived from the cell's own label (as in
    :meth:`repro.security.evaluate.SecurityEvaluator.evaluate_vulnerability`)
    so cells are order-independent and shard cleanly.
    """
    layout = BenchmarkLayout(nsets=L2_CONFIG.sets, nways=L2_CONFIG.ways)
    label = (
        f"{seed}/{l1_kind.value}/{l2_kind.value}/{vulnerability.pretty()}"
    )
    rng = random.Random(zlib.crc32(label.encode()))
    programs = {
        mapped: assemble(generate(vulnerability, layout, mapped=mapped))
        for mapped in (True, False)
    }
    misses = {True: 0, False: 0}
    for mapped in (True, False):
        for _ in range(trials):
            tlb = _make_hierarchy(l1_kind, l2_kind, rng)
            cpu = CPU(tlb=tlb, translator=make_walker())
            cpu.load(programs[mapped])
            outcome = cpu.run()
            if outcome.status is ExecutionStatus.PASSED:
                misses[mapped] += 1
    return ChannelEstimate(
        misses_mapped=misses[True],
        misses_unmapped=misses[False],
        trials_per_behaviour=trials,
    )


def evaluate_hierarchy(
    l1_kind: TLBKind,
    l2_kind: TLBKind,
    trials: int = 40,
    seed: int = 7,
) -> HierarchyResult:
    """Run the 24 Table 2 benchmarks against an L1/L2 combination.

    Benchmarks are generated for the L2's geometry: it is the level whose
    misses the walk counter exposes, so its sets are what the attacker
    primes.  (An attack against the L1's sets alone stops at the L2.)
    """
    estimates: Dict[Vulnerability, ChannelEstimate] = {
        vulnerability: evaluate_hierarchy_cell(
            l1_kind, l2_kind, vulnerability, trials, seed
        )
        for vulnerability in table2_vulnerabilities()
    }
    return HierarchyResult(
        name=f"{l1_kind.value} L1 + {l2_kind.value} L2", estimates=estimates
    )


def evaluate_hierarchies(trials: int = 40) -> List[HierarchyResult]:
    """The three instructive combinations (see module docstring)."""
    return [
        evaluate_hierarchy(TLBKind.SA, TLBKind.SA, trials),
        evaluate_hierarchy(TLBKind.RF, TLBKind.SA, trials),
        evaluate_hierarchy(TLBKind.RF, TLBKind.RF, trials),
    ]


def format_hierarchy_results(results: List[HierarchyResult]) -> str:
    lines = [
        f"{'hierarchy':22} {'defended':>9}   vulnerable strategies",
        "-" * 78,
    ]
    for result in results:
        strategies = sorted(
            {v.strategy.value for v in result.vulnerable_rows()}
        )
        lines.append(
            f"{result.name:22} {result.defended:>6}/24   "
            + (", ".join(strategies) if strategies else "-")
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# The declarative cross-design sweep (L1 x L2 x PWC)
# --------------------------------------------------------------------------

#: The page-walk cache appended to the "+pwc" half of the sweep.
SWEEP_PWC = PWCSpec()

SWEEP_L1_KINDS = ("SA", "SP", "RF")
#: ``None`` = no L2: the flat single-level designs, as baselines inside
#: the same matrix.
SWEEP_L2_KINDS = ("SA", "SP", "RF", None)

#: A spec or its plain-dict form (the shape runner cells carry).
SpecLike = Union[HierarchySpec, Mapping[str, Any]]


def coerce_spec(spec: SpecLike) -> HierarchySpec:
    """Accept a spec or its :meth:`HierarchySpec.to_dict` form."""
    if isinstance(spec, HierarchySpec):
        return spec
    return HierarchySpec.from_dict(spec)


def sweep_specs() -> List[HierarchySpec]:
    """The 24 sweep designs: L1 x L2 (incl. none) x PWC on/off."""
    specs = []
    for l1_kind in SWEEP_L1_KINDS:
        for l2_kind in SWEEP_L2_KINDS:
            for pwc in (None, SWEEP_PWC):
                levels = [LevelSpec.from_config(l1_kind, L1_CONFIG)]
                if l2_kind is not None:
                    levels.append(LevelSpec.from_config(l2_kind, L2_CONFIG))
                specs.append(HierarchySpec(levels=tuple(levels), pwc=pwc))
    return specs


def sweep_rows() -> List[Tuple[int, Vulnerability]]:
    """One representative Table 2 row per attack strategy (7 rows).

    The full 24-row grid over 24 designs would be a 20x blowup over the
    three-combination study; one row per strategy keeps the matrix
    readable while still distinguishing internal-collision, flush/reload,
    and the five external miss-based strategies.
    """
    selected: List[Tuple[int, Vulnerability]] = []
    seen = set()
    for index, vulnerability in enumerate(table2_vulnerabilities()):
        if vulnerability.strategy not in seen:
            seen.add(vulnerability.strategy)
            selected.append((index, vulnerability))
    return selected


def evaluate_sweep_cell(
    spec: SpecLike,
    vulnerability: Vulnerability,
    trials: int = 25,
    seed: int = 7,
) -> ChannelEstimate:
    """Run one Table 2 row against one sweep design (a pure cell).

    Benchmarks are generated for the *last* level's geometry -- the level
    whose misses the walk counter exposes -- and the RNG is derived from
    the cell's own label, so cells are order-independent and shard
    cleanly across runner workers.
    """
    spec = coerce_spec(spec)
    last = spec.levels[-1]
    layout = BenchmarkLayout(nsets=last.config().sets, nways=last.ways)
    label = f"{seed}/{spec.label()}/{vulnerability.pretty()}"
    rng = random.Random(zlib.crc32(label.encode()))
    programs = {
        mapped: assemble(generate(vulnerability, layout, mapped=mapped))
        for mapped in (True, False)
    }
    misses = {True: 0, False: 0}
    for mapped in (True, False):
        for _ in range(trials):
            tlb = make_hierarchy(
                spec, victim_asid=layout.victim_pid, rng=rng
            )
            cpu = CPU(tlb=tlb, translator=make_walker())
            cpu.load(programs[mapped])
            if cpu.run().status is ExecutionStatus.PASSED:
                misses[mapped] += 1
    return ChannelEstimate(
        misses_mapped=misses[True],
        misses_unmapped=misses[False],
        trials_per_behaviour=trials,
    )


def sweep_perf_point(
    spec: SpecLike, rsa_runs: int = 10, kernel: str = "run"
) -> Dict[str, Any]:
    """One design's performance under SecRSA through the timing model.

    Reports IPC/MPKI (L1 misses per kilo-instruction), the true walk
    count (last-level misses -- what ``tlb_miss_count`` observes) and the
    page-walk-cache hit count, so the matrix shows what an L2 or a PWC
    buys back from the secure designs' miss-rate cost.  ``kernel``
    selects the fast path's batched translation kernel (identical
    results; hierarchy L1s fall back from the run tier's caches to its
    probes automatically where their adapters lack walk memo tokens).
    """
    from repro.perf.harness import RSA_ASID
    from repro.perf.timing import ScheduledProcess, simulate
    from repro.workloads.rsa import RSAWorkload, generate_key

    spec = coerce_spec(spec)
    rsa = RSAWorkload(key=generate_key(bits=128, seed=7), runs=rsa_runs)
    tlb = make_hierarchy(spec, victim_asid=RSA_ASID)
    sbase, ssize = rsa.secure_region()
    tlb.set_secure_region(sbase, ssize, victim_asid=RSA_ASID)
    results = simulate(
        tlb,
        [ScheduledProcess(workload=rsa, asid=RSA_ASID)],
        walker=make_walker(),
        kernel=kernel,
    )
    total = results["total"]
    pwc = tlb.pwc
    return {
        "design": spec.label(),
        "ipc": total.ipc,
        "mpki": total.mpki,
        "walks": tlb.stats.misses,
        "accesses": total.memory_accesses,
        "cycles": total.cycles,
        "pwc_hits": pwc.stats.hits if pwc is not None else 0,
    }


def leakage_spec() -> HierarchySpec:
    """The refill cross-check design: a tiny protected L1 over a shared L2.

    Two L1 entries force constant inter-level movement, so every working-
    set page round-trips through the shared L2 and the ``refill`` stream
    carries the victim's access pattern in full.
    """
    return HierarchySpec(
        levels=(
            LevelSpec.from_config(
                "RF", TLBConfig(entries=2, ways=1, hit_latency=1)
            ),
            LevelSpec.from_config("SA", L2_CONFIG),
        ),
    )


def refill_leakage(
    spec: Optional[SpecLike] = None, workload_name: str = "rsa"
) -> Dict[str, Any]:
    """Dynamic cross-check: do *refill* counts correlate with the secret?

    Runs the guest workload under each probe exponent on the hierarchy
    and diffs the per-page tallies the :class:`repro.analysis.dynamic.
    TaintObserver` collects from the event bus.  Pages whose inter-level
    ``refill`` counts change with the secret are leaking through
    lower-level occupancy -- the channel a protected-L1 / shared-L2
    design leaves open -- even where L1 access counts alone look flat.
    """
    from repro.analysis.dynamic import correlated_pages, trace_pages
    from repro.analysis.workloads import GUEST_WORKLOADS

    spec = leakage_spec() if spec is None else coerce_spec(spec)
    workload = GUEST_WORKLOADS[workload_name]
    observers = [
        trace_pages(workload, exponent, spec=spec)
        for exponent in workload.exponents
    ]
    return {
        "design": spec.label(),
        "workload": workload.name,
        "correlated_access_pages": list(
            correlated_pages(tuple(o.pages for o in observers))
        ),
        "correlated_refill_pages": list(
            correlated_pages(tuple(o.refill_pages for o in observers))
        ),
        "refills": [observer.refills for observer in observers],
        "accesses": [observer.accesses for observer in observers],
    }


@dataclass(frozen=True)
class SweepDesignResult:
    """One sweep design's capacity row plus its performance point."""

    label: str
    spec: Dict[str, Any]
    estimates: Dict[Vulnerability, ChannelEstimate]
    perf: Dict[str, Any]

    @property
    def defended(self) -> int:
        return sum(
            1 for estimate in self.estimates.values() if estimate.defends()
        )

    def vulnerable_strategies(self) -> List[str]:
        return sorted(
            {
                vulnerability.strategy.value
                for vulnerability, estimate in self.estimates.items()
                if not estimate.defends()
            }
        )


def format_hierarchy_sweep(
    results: List[SweepDesignResult],
    leakage: Optional[Mapping[str, Any]] = None,
) -> str:
    """The cross-design matrix, one line per design."""
    total = len(results[0].estimates) if results else 0
    lines = [
        "hierarchy sweep: L1 x L2 x page-walk cache"
        f" ({len(results)} designs, {total} strategy rows each)",
        "",
        f"{'design':12} {'defended':>8} {'ipc':>7} {'mpki':>8}"
        f" {'walks':>7} {'pwc':>6}   vulnerable strategies",
        "-" * 96,
    ]
    for result in results:
        perf = result.perf
        strategies = result.vulnerable_strategies()
        lines.append(
            f"{result.label:12} {result.defended:>5}/{total}"
            f" {perf['ipc']:>7.3f} {perf['mpki']:>8.2f}"
            f" {perf['walks']:>7} {perf['pwc_hits']:>6}   "
            + (", ".join(strategies) if strategies else "-")
        )
    if leakage is not None:
        refill_pages = leakage["correlated_refill_pages"]
        lines += [
            "",
            f"refill-leakage cross-check ({leakage['design']},"
            f" {leakage['workload']} workload):",
            f"  secret-correlated refill pages: "
            + (
                ", ".join(hex(page) for page in refill_pages)
                if refill_pages
                else "none"
            ),
            f"  refills per exponent: {leakage['refills']}",
        ]
    return "\n".join(lines)
