"""Service counters behind ``GET /v1/metrics``.

One mutable object threaded through the app: the HTTP layer counts
requests and errors, the job manager counts submissions / dedups /
completions and cell-level cache traffic, the quota registry reports
per-client usage.  Everything is a plain monotonically-increasing
counter or an instantaneous gauge sampled at snapshot time -- no
histograms, no background threads -- so the endpoint is cheap enough to
poll aggressively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict


@dataclass
class ServiceMetrics:
    """Counters since service start; gauges are registered callables."""

    #: HTTP layer.
    http_requests: int = 0
    http_errors: int = 0
    #: Job lifecycle.
    jobs_submitted: int = 0
    #: Submissions answered instantly from the content-addressed store.
    jobs_store_hits: int = 0
    #: Submissions attached to an identical in-flight job (no new work).
    jobs_deduped: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    #: Jobs re-admitted from the jobs journal after a kill/restart.
    jobs_resumed: int = 0
    #: Requests rejected by a client's token bucket (HTTP 429).
    quota_rejections: int = 0
    #: Cell execution inside jobs.
    cells_run: int = 0
    cells_cached: int = 0
    cells_failed: int = 0
    #: Completed results whose assembled payload carried a static/dynamic
    #: cross-certification verdict (see repro.analysis.certify).
    results_certified: int = 0
    results_uncertified: int = 0

    started_at: float = field(default_factory=time.time)
    _gauges: Dict[str, Callable[[], Any]] = field(default_factory=dict)

    def register_gauge(self, name: str, read: Callable[[], Any]) -> None:
        """Expose a live value (queue depth, in-flight dedups) by name."""
        self._gauges[name] = read

    def snapshot(self) -> Dict[str, Any]:
        counters = {
            "http_requests": self.http_requests,
            "http_errors": self.http_errors,
            "jobs_submitted": self.jobs_submitted,
            "jobs_store_hits": self.jobs_store_hits,
            "jobs_deduped": self.jobs_deduped,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_resumed": self.jobs_resumed,
            "quota_rejections": self.quota_rejections,
            "cells_run": self.cells_run,
            "cells_cached": self.cells_cached,
            "cells_failed": self.cells_failed,
            "results_certified": self.results_certified,
            "results_uncertified": self.results_uncertified,
        }
        gauges = {name: read() for name, read in sorted(self._gauges.items())}
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "counters": counters,
            "gauges": gauges,
        }
