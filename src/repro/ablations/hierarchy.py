"""Security of two-level TLB hierarchies.

The paper designs and evaluates the L1 D-TLB and remarks the techniques
"can be applied to ... other levels of TLB".  This ablation shows that the
remark is load-bearing: protecting only the L1 is *not* enough.

The key mechanism: on an L1 miss the request goes to the L2, and an L2
miss performs the page-table walk and fills the L2 -- including for the
Random-Fill L1, whose *no-fill* path still resolves the secret translation
through the L2.  The victim's secret page therefore leaves a footprint in
a standard L2, and the attacker observes it through the walk counter (L2
evictions turn L1 misses into full walks).

The harness re-runs the Table 4 rows over three hierarchies:

* SA L1 + SA L2 -- the doubly standard baseline;
* RF L1 + SA L2 -- protected L1 only: the external miss-based rows leak
  again through the L2;
* RF L1 + RF L2 -- protection at both levels restores the full defence.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa import CPU, ExecutionStatus, assemble
from repro.mmu import make_walker
from repro.model.capacity import ChannelEstimate
from repro.model.patterns import Vulnerability
from repro.model.table2 import table2_vulnerabilities
from repro.security.benchgen import BenchmarkLayout, generate
from repro.security.kinds import TLBKind, make_two_level_tlb
from repro.tlb import TLBConfig
from repro.tlb.hierarchy import TwoLevelTLB

#: The evaluated L1 and L2 organizations (an L2 is larger and slower).
L1_CONFIG = TLBConfig(entries=32, ways=8, hit_latency=1)
L2_CONFIG = TLBConfig(entries=128, ways=8, hit_latency=8)


@dataclass(frozen=True)
class HierarchyResult:
    """Defence outcome of one L1/L2 combination."""

    name: str
    estimates: Dict[Vulnerability, ChannelEstimate]

    @property
    def defended(self) -> int:
        return sum(
            1 for estimate in self.estimates.values() if estimate.defends()
        )

    def vulnerable_rows(self) -> List[Vulnerability]:
        return [
            vulnerability
            for vulnerability, estimate in self.estimates.items()
            if not estimate.defends()
        ]


def _make_hierarchy(
    l1_kind: TLBKind, l2_kind: TLBKind, rng: random.Random
) -> TwoLevelTLB:
    layout = BenchmarkLayout()
    return make_two_level_tlb(
        l1_kind,
        l2_kind,
        L1_CONFIG,
        L2_CONFIG,
        victim_asid=layout.victim_pid,
        rng=rng,
    )


def hierarchy_cells(
    combinations: Tuple[Tuple[TLBKind, TLBKind], ...] = (
        (TLBKind.SA, TLBKind.SA),
        (TLBKind.RF, TLBKind.SA),
        (TLBKind.RF, TLBKind.RF),
    ),
) -> List[Tuple[TLBKind, TLBKind, int, Vulnerability]]:
    """The study's work-list: one (L1, L2, row) cell per entry."""
    rows = table2_vulnerabilities()
    return [
        (l1_kind, l2_kind, index, vulnerability)
        for l1_kind, l2_kind in combinations
        for index, vulnerability in enumerate(rows)
    ]


def evaluate_hierarchy_cell(
    l1_kind: TLBKind,
    l2_kind: TLBKind,
    vulnerability: Vulnerability,
    trials: int = 40,
    seed: int = 7,
) -> ChannelEstimate:
    """Run one Table 2 row against an L1/L2 combination (a pure cell).

    The RNG is derived from the cell's own label (as in
    :meth:`repro.security.evaluate.SecurityEvaluator.evaluate_vulnerability`)
    so cells are order-independent and shard cleanly.
    """
    layout = BenchmarkLayout(nsets=L2_CONFIG.sets, nways=L2_CONFIG.ways)
    label = (
        f"{seed}/{l1_kind.value}/{l2_kind.value}/{vulnerability.pretty()}"
    )
    rng = random.Random(zlib.crc32(label.encode()))
    programs = {
        mapped: assemble(generate(vulnerability, layout, mapped=mapped))
        for mapped in (True, False)
    }
    misses = {True: 0, False: 0}
    for mapped in (True, False):
        for _ in range(trials):
            tlb = _make_hierarchy(l1_kind, l2_kind, rng)
            cpu = CPU(tlb=tlb, translator=make_walker())
            cpu.load(programs[mapped])
            outcome = cpu.run()
            if outcome.status is ExecutionStatus.PASSED:
                misses[mapped] += 1
    return ChannelEstimate(
        misses_mapped=misses[True],
        misses_unmapped=misses[False],
        trials_per_behaviour=trials,
    )


def evaluate_hierarchy(
    l1_kind: TLBKind,
    l2_kind: TLBKind,
    trials: int = 40,
    seed: int = 7,
) -> HierarchyResult:
    """Run the 24 Table 2 benchmarks against an L1/L2 combination.

    Benchmarks are generated for the L2's geometry: it is the level whose
    misses the walk counter exposes, so its sets are what the attacker
    primes.  (An attack against the L1's sets alone stops at the L2.)
    """
    estimates: Dict[Vulnerability, ChannelEstimate] = {
        vulnerability: evaluate_hierarchy_cell(
            l1_kind, l2_kind, vulnerability, trials, seed
        )
        for vulnerability in table2_vulnerabilities()
    }
    return HierarchyResult(
        name=f"{l1_kind.value} L1 + {l2_kind.value} L2", estimates=estimates
    )


def evaluate_hierarchies(trials: int = 40) -> List[HierarchyResult]:
    """The three instructive combinations (see module docstring)."""
    return [
        evaluate_hierarchy(TLBKind.SA, TLBKind.SA, trials),
        evaluate_hierarchy(TLBKind.RF, TLBKind.SA, trials),
        evaluate_hierarchy(TLBKind.RF, TLBKind.RF, trials),
    ]


def format_hierarchy_results(results: List[HierarchyResult]) -> str:
    lines = [
        f"{'hierarchy':22} {'defended':>9}   vulnerable strategies",
        "-" * 78,
    ]
    for result in results:
        strategies = sorted(
            {v.strategy.value for v in result.vulnerable_rows()}
        )
        lines.append(
            f"{result.name:22} {result.defended:>6}/24   "
            + (", ".join(strategies) if strategies else "-")
        )
    return "\n".join(lines)
