"""Route table and handlers for the v1 API.

=======================  ======================================================
``POST /v1/jobs``        submit a spec; 202 queued / 200 deduped or cached
``GET /v1/jobs``         list known jobs (most recent first)
``GET /v1/jobs/{id}``    job status + per-cell progress from the JSONL log
``GET /v1/results/{h}``  the finished result document, verified on read
``GET /v1/health``       liveness + a tiny state summary
``GET /v1/metrics``      counters, gauges, cache/store stats, quota usage
=======================  ======================================================

Handlers are small: quota admission and spec parsing happen here, the
actual work lives in :class:`~repro.serve.jobs.JobManager`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Tuple

from .http import (
    HttpError,
    Request,
    Response,
    match_route,
    method_not_allowed,
    not_found,
)
from .jobs import JobManager, parse_spec
from .metrics import ServiceMetrics
from .quotas import QuotaRegistry
from .store import ResultStore, is_content_hash

Handler = Callable[..., Any]


class Router:
    """Literal-segment routing with ``{capture}`` placeholders."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, str, Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append((method.upper(), pattern, handler))

    def resolve(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        allowed: List[str] = []
        for route_method, pattern, handler in self._routes:
            captures = match_route(pattern, path)
            if captures is None:
                continue
            if route_method == method:
                return handler, captures
            allowed.append(route_method)
        if allowed:
            raise method_not_allowed(method, tuple(allowed))
        raise not_found(path)


class ApiRoutes:
    """The v1 handlers, bound to the service's collaborators."""

    def __init__(
        self,
        manager: JobManager,
        store: ResultStore,
        metrics: ServiceMetrics,
        quotas: QuotaRegistry,
    ) -> None:
        self.manager = manager
        self.store = store
        self.metrics = metrics
        self.quotas = quotas

    def router(self) -> Router:
        router = Router()
        router.add("POST", "/v1/jobs", self.submit_job)
        router.add("GET", "/v1/jobs", self.list_jobs)
        router.add("GET", "/v1/jobs/{job_id}", self.job_status)
        router.add("GET", "/v1/results/{content_hash}", self.result)
        router.add("GET", "/v1/health", self.health)
        router.add("GET", "/v1/metrics", self.metrics_snapshot)
        return router

    # -- handlers ------------------------------------------------------------------

    def submit_job(self, request: Request) -> Response:
        payload = request.json()
        client = request.client_id()
        if isinstance(payload, dict) and isinstance(payload.get("client"), str):
            client = payload["client"]
        admitted, retry_after = self.quotas.admit(
            client, asyncio.get_running_loop().time()
        )
        if not admitted:
            self.metrics.quota_rejections += 1
            raise HttpError(
                429,
                "quota-exhausted",
                f"client {client!r} is over its submission quota",
                headers={"Retry-After": f"{max(1, round(retry_after))}"},
            )
        spec = parse_spec(
            payload,
            extra_option_keys=self.manager.extra_option_keys,
            default_client=client,
        )
        job, disposition = self.manager.submit(spec)
        body = {
            "job_id": job.id,
            "state": job.state,
            "content_hash": job.content_hash,
            "disposition": disposition,
            "cells": len(job.units),
            "status_url": f"/v1/jobs/{job.id}",
        }
        if job.result_sha256 is not None:
            body["result_sha256"] = job.result_sha256
            body["result_url"] = f"/v1/results/{job.content_hash}"
        status = 202 if disposition == "queued" else 200
        return Response(status=status, payload=body)

    def list_jobs(self, request: Request) -> Response:
        try:
            limit = int(request.query.get("limit", "50"))
        except ValueError:
            raise HttpError(400, "bad-request", "'limit' must be an integer") from None
        jobs = list(self.manager.jobs.values())[-max(1, limit):]
        return Response(
            payload={
                "jobs": [
                    job.status_dict(progress_events=0)
                    for job in reversed(jobs)
                ]
            }
        )

    def job_status(self, request: Request, job_id: str) -> Response:
        job = self.manager.jobs.get(job_id)
        if job is None:
            raise not_found(f"/v1/jobs/{job_id}")
        return Response(payload=job.status_dict())

    def result(self, request: Request, content_hash: str) -> Response:
        if not is_content_hash(content_hash):
            raise HttpError(
                400, "bad-request",
                "result keys are 64-char lowercase hex SHA-256 hashes",
            )
        stored = self.store.get(content_hash)
        if stored is None:
            raise HttpError(
                404, "not-found",
                f"no result stored under {content_hash}; submit the spec"
                " to compute it",
            )
        payload, digest = stored
        return Response(
            body=payload,
            content_type="application/json",
            headers={"X-Repro-Sha256": digest},
        )

    def health(self, request: Request) -> Response:
        return Response(
            payload={
                "status": "ok",
                "jobs": len(self.manager.jobs),
                "inflight": len(self.manager.inflight),
                "queue_depth": self.manager.queue_depth(),
            }
        )

    def metrics_snapshot(self, request: Request) -> Response:
        snapshot = self.metrics.snapshot()
        snapshot["cell_cache"] = (
            self.manager.cache.stats.as_dict()
            if self.manager.cache is not None
            else None
        )
        snapshot["result_store"] = self.store.stats.as_dict()
        snapshot["quota"] = {
            "enabled": self.quotas.enabled,
            "rate": self.quotas.rate,
            "burst": self.quotas.burst,
            "clients": self.quotas.usage(),
        }
        return Response(payload=snapshot)


def make_router(
    manager: JobManager,
    store: ResultStore,
    metrics: ServiceMetrics,
    quotas: QuotaRegistry,
) -> Tuple[Router, ApiRoutes]:
    routes = ApiRoutes(manager, store, metrics, quotas)
    return routes.router(), routes


__all__ = ["ApiRoutes", "Router", "make_router"]
