"""Dynamic cross-check: does a static finding manifest in real traces?

The static layer says a page *may* be touched secret-dependently; this
layer checks it *does*.  A :class:`TaintObserver` subscribes to the
:class:`repro.sim.EventBus` and tallies, per virtual page and per TLB
set, every ``AccessEvent`` the :class:`repro.sim.MemorySystem` publishes
while the guest program runs on the ISA CPU.  Running the same workload
under several exponents and diffing the tallies yields the set of
*secret-correlated* pages -- pages whose access counts change with the
secret.  A static finding is **confirmed** when its page set intersects
that correlated set (or, for findings without a static page, when any
correlated page exists at all).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.security.kinds import TLBKind, make_hierarchy, make_tlb
from repro.sim.events import AccessEvent, EventBus
from repro.sim.system import MemorySystem
from repro.tlb.config import TLBConfig
from repro.tlb.spec import HierarchySpec

from .taint import GuestReport, LeakageFinding
from .workloads import GuestWorkload


@dataclass
class TaintObserver:
    """Per-page and per-TLB-set access tallies over the event bus.

    Inter-level ``refill`` events are tallied separately: on a hierarchy,
    a page whose *refill* counts correlate with the secret is leaking
    through lower-level occupancy even when the L1 access counts look
    flat -- exactly the channel a protected-L1 / shared-L2 design leaves
    open.
    """

    #: TLB set count used to fold pages onto sets (0 disables set tallies).
    sets: int = 0
    pages: Counter = field(default_factory=Counter)
    tlb_sets: Counter = field(default_factory=Counter)
    #: Per-page inter-level refill tallies (empty for single-level TLBs).
    refill_pages: Counter = field(default_factory=Counter)
    accesses: int = 0
    refills: int = 0

    def subscribe(self, bus: EventBus) -> "TaintObserver":
        bus.on_access(self._on_access)
        bus.on_refill(self._on_refill)
        return self

    def _on_access(self, event: AccessEvent) -> None:
        self.accesses += 1
        self.pages[event.vpn] += 1
        if self.sets:
            self.tlb_sets[event.vpn % self.sets] += 1

    def _on_refill(self, event) -> None:
        self.refills += 1
        self.refill_pages[event.vpn] += 1


@dataclass(frozen=True)
class CheckedFinding:
    """One static finding with its dynamic verdict."""

    finding: LeakageFinding
    confirmed: bool
    #: The correlated pages that matched this finding.
    correlated: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CrossCheckReport:
    """Static-vs-dynamic agreement for one workload."""

    workload: str
    exponents: Tuple[int, ...]
    #: Pages whose access counts differ across the probe exponents.
    correlated_pages: Tuple[int, ...]
    #: Same, folded onto TLB set indices.
    correlated_sets: Tuple[int, ...]
    checked: Tuple[CheckedFinding, ...]
    #: Per-exponent total accesses (sanity signal for the report).
    accesses: Tuple[int, ...]

    @property
    def all_confirmed(self) -> bool:
        return all(item.confirmed for item in self.checked)

    @property
    def confirmed_count(self) -> int:
        return sum(1 for item in self.checked if item.confirmed)

    @property
    def leaks_dynamically(self) -> bool:
        return bool(self.correlated_pages)


def trace_pages(
    workload: GuestWorkload,
    exponent: int,
    kind: TLBKind = TLBKind.SA,
    config: Optional[TLBConfig] = None,
    spec: Optional[HierarchySpec] = None,
) -> TaintObserver:
    """Run one exponent through the full CPU + MemorySystem stack.

    With ``spec`` the workload runs on a multi-level hierarchy instead of
    a flat ``kind``/``config`` TLB; set tallies then fold on the *last*
    level's geometry (the level whose misses reach the walk counter), and
    the observer's refill tallies become meaningful.
    """
    program = assemble(workload.source(exponent))
    bus = EventBus()
    if spec is not None:
        tlb = make_hierarchy(spec)
        sets = spec.levels[-1].sets
    else:
        config = config or TLBConfig(entries=16, ways=4)
        tlb = make_tlb(kind, config)
        sets = config.sets
    observer = TaintObserver(sets=sets).subscribe(bus)
    memory_system = MemorySystem(tlb, bus=bus)
    cpu = CPU(memory_system=memory_system)
    cpu.load(program)
    cpu.run()
    return observer


def correlated_pages(
    tallies: Tuple[Counter, ...],
) -> Tuple[int, ...]:
    """Pages whose access counts are not identical across all runs."""
    pages = set()
    for tally in tallies:
        pages.update(tally)
    return tuple(
        sorted(
            page
            for page in pages
            if len({tally[page] for tally in tallies}) > 1
        )
    )


def cross_check(
    workload: GuestWorkload,
    report: GuestReport,
    kind: TLBKind = TLBKind.SA,
    config: Optional[TLBConfig] = None,
    exponents: Optional[Tuple[int, ...]] = None,
) -> CrossCheckReport:
    """Confirm each static finding against event-bus traces.

    Every probe exponent gets a fresh CPU, TLB and bus, so tallies differ
    only through the program's secret-dependent behaviour.
    """
    exponents = exponents or workload.exponents
    observers = tuple(
        trace_pages(workload, exponent, kind=kind, config=config)
        for exponent in exponents
    )
    pages = correlated_pages(tuple(observer.pages for observer in observers))
    sets = correlated_pages(
        tuple(observer.tlb_sets for observer in observers)
    )
    checked = []
    for finding in report.findings:
        if finding.pages:
            matched = tuple(
                page for page in finding.pages if page in pages
            )
            confirmed = bool(matched)
        else:
            # No static page (branch sinks, unknown addresses): the trace
            # can only confirm that *some* page correlates with the secret.
            matched = pages
            confirmed = bool(pages)
        checked.append(
            CheckedFinding(
                finding=finding, confirmed=confirmed, correlated=matched
            )
        )
    return CrossCheckReport(
        workload=report.name,
        exponents=tuple(exponents),
        correlated_pages=pages,
        correlated_sets=sets,
        checked=tuple(checked),
        accesses=tuple(observer.accesses for observer in observers),
    )


def secret_correlation(
    workload: GuestWorkload,
    kind: TLBKind = TLBKind.SA,
    config: Optional[TLBConfig] = None,
    exponents: Optional[Tuple[int, ...]] = None,
) -> Dict[int, Tuple[int, ...]]:
    """Per-page access counts across the probe exponents (debug helper)."""
    exponents = exponents or workload.exponents
    observers = tuple(
        trace_pages(workload, exponent, kind=kind, config=config)
        for exponent in exponents
    )
    pages = set()
    for observer in observers:
        pages.update(observer.pages)
    return {
        page: tuple(observer.pages[page] for observer in observers)
        for page in sorted(pages)
    }
