"""Run telemetry: live console progress and a machine-readable JSONL log.

Every run appends structured events to a JSONL file (one JSON object per
line, ``event`` field first).  The schema is documented in
``docs/runner.md``; the events are:

``run_start``      jobs, unit count, code version, filters
``run_resume``     a previous (interrupted) run log was found and replayed
``unit_done``      one cell finished (ok / failed / cached), with timings
``retry``          a cell is being re-queued after an error or crash
``worker_crash``   a worker process died mid-cell
``watchdog_kill``  the wall-clock watchdog killed a hung worker
``interrupted``    the run stopped early (Ctrl-C); a partial report follows
``artifact``       one merged output file was written
``run_end``        wall time, throughput, cache hit-rate, utilization

The console printer renders the same information as throttled single-line
updates so a multi-hundred-cell run stays readable in CI logs.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional

from repro.sim.observers import JsonlWriter


class RunLog:
    """Append-only JSONL event log (no-op when constructed with ``None``).

    Serialization is delegated to :class:`repro.sim.JsonlWriter`, the same
    writer behind the event tracer, so both logs share one JSONL dialect.
    """

    def __init__(self, path: Optional[Path | str]) -> None:
        self.path = Path(path) if path is not None else None
        self._writer: Optional[JsonlWriter] = None
        if self.path is not None:
            self._writer = JsonlWriter(self.path)

    def emit(self, event: str, **fields: Any) -> None:
        if self._writer is None:
            return
        record: Dict[str, Any] = {"event": event, "time": time.time()}
        record.update(fields)
        self._writer.write(record)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


def replay_run_log(path: Path | str) -> List[Dict[str, Any]]:
    """Load a previous run's JSONL log, tolerating an interrupted tail.

    Used by ``run-all`` to report what an interrupted campaign already
    completed before resuming it from the result cache.  Delegates to
    :func:`repro.sim.read_jsonl`, so a log torn mid-record by a kill is
    replayed up to its last whole event.  Returns ``[]`` for a missing
    log.
    """
    from repro.sim import read_jsonl

    path = Path(path)
    if not path.is_file():
        return []
    return read_jsonl(path)


def completed_idents(events: List[Dict[str, Any]]) -> List[str]:
    """Cells a replayed run log records as successfully finished."""
    return [
        f"{record.get('experiment')}/{record.get('key')}"
        for record in events
        if record.get("event") == "unit_done" and record.get("status") == "ok"
    ]


@dataclass
class RunReport:
    """Summary statistics of one orchestrated run."""

    units_total: int = 0
    completed: int = 0
    failed: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    worker_crashes: int = 0
    #: Hung workers killed (and their cells requeued) by the watchdog.
    watchdog_kills: int = 0
    #: Results rejected by the integrity envelope and recomputed.
    corrupt_results: int = 0
    #: On-disk cache entries found unreadable (torn writes) and recomputed.
    cache_corrupt: int = 0
    #: The run stopped early (Ctrl-C); artifacts/manifest are partial.
    interrupted: bool = False
    #: Cells a previous interrupted run had already completed (log replay).
    resumed_cells: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    #: Per-worker busy seconds, for the utilization figure.
    worker_busy: Dict[Any, float] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)
    #: Which executor backend ran the cells ("serial"/"pool"/"work-stealing").
    executor: str = "pool"
    #: -- work-stealing executor counters (zero under other backends) --------
    #: Stale leases taken away from silent workers.
    leases_reclaimed: int = 0
    #: Cells observed to complete more than once (lease races/violations);
    #: harmless by determinism, but counted as protocol evidence.
    duplicate_completions: int = 0
    #: Cells quarantined into failed_cells.json with full attempt history.
    quarantined: int = 0
    #: Cells the parent ran inline after no worker ever checked in.
    fallback_cells: int = 0
    #: Cells completed by workers other than the parent process.
    cells_stolen: int = 0
    #: Worker journals found torn mid-record (masked, but never silent).
    torn_journals: int = 0
    #: -- run-kernel telemetry (this run's delta of
    #: :data:`repro.sim.KERNEL_TELEMETRY`; pool workers ship their counts
    #: home in their farewell message, work-stealing peers on other hosts
    #: do not, so their cells count as zero here) ---------------------------
    #: Accesses retired by proven hit-runs without a per-access probe.
    kernel_run_hits: int = 0
    #: Accesses that fell back to the per-access probe.
    kernel_fallback_accesses: int = 0
    #: Nonempty proven runs.
    kernel_runs: int = 0
    #: Structural-pre-pass backend active in this process ("numpy"/"python").
    kernel_backend: str = ""

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def cells_per_second(self) -> float:
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Busy time across workers over the run's total worker capacity."""
        if self.elapsed <= 0 or self.jobs <= 0:
            return 0.0
        busy = sum(self.worker_busy.values())
        return min(busy / (self.elapsed * self.jobs), 1.0)

    @property
    def ok(self) -> bool:
        return not self.failed and not self.interrupted

    def summary_fields(self) -> Dict[str, Any]:
        return {
            "units": self.units_total,
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "watchdog_kills": self.watchdog_kills,
            "corrupt_results": self.corrupt_results,
            "cache_corrupt": self.cache_corrupt,
            "interrupted": self.interrupted,
            "resumed_cells": self.resumed_cells,
            "jobs": self.jobs,
            "elapsed": round(self.elapsed, 3),
            "cells_per_second": round(self.cells_per_second, 3),
            "worker_utilization": round(self.utilization, 4),
            "executor": self.executor,
            "leases_reclaimed": self.leases_reclaimed,
            "duplicate_completions": self.duplicate_completions,
            "quarantined": self.quarantined,
            "fallback_cells": self.fallback_cells,
            "cells_stolen": self.cells_stolen,
            "torn_journals": self.torn_journals,
            "kernel_run_hits": self.kernel_run_hits,
            "kernel_fallback_accesses": self.kernel_fallback_accesses,
            "kernel_runs": self.kernel_runs,
            "kernel_backend": self.kernel_backend,
        }


class ProgressPrinter:
    """Throttled, single-line-per-update console progress."""

    def __init__(
        self,
        total: int,
        enabled: bool = True,
        stream: IO[str] = sys.stderr,
        min_interval: float = 1.0,
    ) -> None:
        self.total = total
        self.enabled = enabled
        self.stream = stream
        self.min_interval = min_interval
        self.started = time.monotonic()
        self._last_printed = 0.0
        #: Cells resolved before scheduling (cache hits); live completions
        #: from the scheduler are reported relative to this base.
        self.base_done = 0
        self.cache_hits = 0

    def note(self, message: str) -> None:
        if self.enabled:
            elapsed = time.monotonic() - self.started
            print(f"[{elapsed:7.1f}s] {message}", file=self.stream, flush=True)

    def update(
        self,
        done: int,
        retries: int = 0,
        workers: int = 0,
        force: bool = False,
    ) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_printed < self.min_interval:
            return
        self._last_printed = now
        total_done = self.base_done + done
        elapsed = now - self.started
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = self.total - total_done
        eta = remaining / rate if rate > 0 else float("inf")
        eta_text = f"{eta:5.0f}s" if eta != float("inf") else "   --"
        print(
            f"[{elapsed:7.1f}s] {total_done}/{self.total} cells"
            f" · {rate:5.1f} cells/s · eta {eta_text}"
            f" · cache {self.cache_hits} · retries {retries}"
            f" · workers {workers}",
            file=self.stream,
            flush=True,
        )
