"""The hierarchy-sweep experiment: units, execution, assembly, artifact.

A reduced-trials end-to-end pass over the registered experiment -- the
same units/run/assemble contract the parallel runner drives, without the
worker processes.
"""

from __future__ import annotations

import pytest

from repro.runner import get_experiment
from repro.runner.results import write_artifacts

OPTIONS = {"hierarchy_sweep_trials": 2, "hierarchy_sweep_rsa_runs": 2}


@pytest.fixture(scope="module")
def experiment():
    return get_experiment("hierarchy_sweep")


@pytest.fixture(scope="module")
def assembled(experiment):
    units = experiment.units(OPTIONS)
    values = [type(experiment).run(unit.params) for unit in units]
    return experiment.assemble(values, OPTIONS)


class TestUnits:
    def test_cell_count_and_parts(self, experiment):
        units = experiment.units(OPTIONS)
        parts = {}
        for unit in units:
            part = unit.params["part"]
            parts[part] = parts.get(part, 0) + 1
        assert parts == {"security": 24 * 7, "perf": 24, "leakage": 1}

    def test_specs_travel_as_plain_dicts(self, experiment):
        import json

        for unit in experiment.units(OPTIONS):
            json.dumps(unit.params["spec"])

    def test_trials_option_reaches_the_cells(self, experiment):
        units = experiment.units(OPTIONS)
        assert all(
            unit.params["trials"] == 2
            for unit in units
            if unit.params["part"] == "security"
        )


class TestAssembly:
    def test_every_design_gets_a_result(self, assembled):
        designs = assembled["designs"]
        assert len(designs) == 24
        labels = {result.label for result in designs}
        assert "SA+SA" in labels and "RF+RF+pwc" in labels
        for result in designs:
            assert len(result.estimates) == 7
            assert result.perf is not None

    def test_leakage_cell_is_threaded_through(self, assembled):
        leakage = assembled["leakage"]
        assert leakage["design"] == "RF+SA"
        assert leakage["workload"] == "rsa"

    def test_certification_verdict_is_stamped(self, assembled):
        # The assembly re-certifies every design statically and compares
        # row-by-row with the estimates this run measured.  At this
        # fixture's degenerate trial count (2 trials -> defends()
        # threshold 2.05, so every row "defends" dynamically) the static
        # certificates rightly disagree, and the flag honestly reads
        # False; the CI gate covers the operating point where it holds.
        assert assembled["certified"] is False
        per_design = assembled["certified_designs"]
        assert len(per_design) == 24
        assert set(per_design) == {
            result.label for result in assembled["designs"]
        }
        assert all(isinstance(v, bool) for v in per_design.values())

    def test_certification_agrees_at_the_operating_point(self, experiment):
        # One design end-to-end at the committed operating point: the
        # sweep cells measured at 40 trials must match the static
        # certificate on all 7 rows (the full 24-design version is the
        # `certify --gate` CI job).
        from repro.ablations.hierarchy import evaluate_sweep_cell, sweep_rows
        from repro.analysis.certify import certify
        from repro.analysis.certify_gate import certified_rows
        from repro.tlb import HierarchySpec

        unit = next(
            u
            for u in experiment.units(OPTIONS)
            if u.params["part"] == "security"
            and HierarchySpec.from_dict(u.params["spec"]).label() == "RF+SA"
        )
        spec = HierarchySpec.from_dict(unit.params["spec"])
        estimates = {
            vulnerability: evaluate_sweep_cell(
                spec, vulnerability, trials=40, seed=7
            )
            for _, vulnerability in sweep_rows()
        }
        agreement = certified_rows(certify(spec), estimates)
        assert len(agreement) == 7
        assert all(agreement.values())

    def test_artifact_is_written(self, assembled, tmp_path):
        written = write_artifacts(
            {"hierarchy_sweep": assembled}, tmp_path, OPTIONS
        )
        assert "hierarchy_sweep.txt" in written
        text = (tmp_path / "hierarchy_sweep.txt").read_text()
        assert "hierarchy sweep" in text
        assert "refill-leakage cross-check" in text
