"""``python -m repro``: the experiment CLI (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
