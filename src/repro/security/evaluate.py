"""The Table 4 security evaluation harness.

For every Table 2 vulnerability and every TLB design, run the generated
micro security benchmark 500 times with the victim's secret page mapped to
the tested block and 500 times unmapped (the paper's 24 x 1000 protocol),
count Step-3 misses (n_{M,M} and n_{N,M}), estimate p1*/p2* and the channel
capacity C*, and compare against the theoretical values.

Each trial runs on a fresh processor and TLB; the Random-Fill TLB's RNG is
shared across a design's trials so randomization varies trial to trial, and
is seeded so the whole table is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa import CPU, ExecutionStatus, Program, assemble
from repro.model.capacity import ChannelEstimate
from repro.model.patterns import Vulnerability
from repro.model.table2 import table2_vulnerabilities
from repro.mmu import PageTableWalker, SwitchPolicy, make_walker
from repro.sim.events import EventBus
from repro.sim.system import MemorySystem
from repro.tlb import TLBConfig

from .benchgen import BenchmarkLayout, generate, layout_for_partitioned_tlb
from .kinds import TLBKind, make_tlb
from .theory import TheoreticalModel


@dataclass(frozen=True)
class EvaluationConfig:
    """Parameters of the Section 5.3 evaluation."""

    tlb: TLBConfig = TLBConfig(entries=32, ways=8)
    trials: int = 500
    seed: int = 2019
    #: Victim partition size for the SP TLB (the paper's 50% default).
    victim_ways: Optional[int] = None
    #: Emulate the Sanctum / Intel SGX software mitigation (Section 2.3):
    #: flush the whole TLB on every process switch.
    flush_on_switch: bool = False
    #: Builds the walker for each trial; override to pre-map pages (e.g.
    #: the large-page mitigation backs the secure region with a superpage).
    walker_factory: Optional[Callable[[], PageTableWalker]] = None
    layout: BenchmarkLayout = field(default_factory=BenchmarkLayout)

    def resolved_victim_ways(self) -> int:
        if self.victim_ways is not None:
            return self.victim_ways
        return max(self.tlb.ways // 2, 1)

    def layout_for(self, kind: TLBKind) -> BenchmarkLayout:
        layout = self.layout
        if layout.nsets != self.tlb.sets or layout.nways != self.tlb.ways:
            from dataclasses import replace

            layout = replace(
                layout,
                nsets=self.tlb.sets,
                nways=self.tlb.ways,
                prime_ways_victim=self.tlb.ways,
                prime_ways_attacker=self.tlb.ways,
            )
        if kind is TLBKind.SP:
            return layout_for_partitioned_tlb(
                layout, self.resolved_victim_ways()
            )
        return layout


@dataclass(frozen=True)
class VulnerabilityResult:
    """One Table 4 cell group: a design's behaviour on one row.

    The theoretical columns are ``None`` for extended-model (Appendix B)
    rows, for which the paper gives no closed forms.
    """

    vulnerability: Vulnerability
    kind: TLBKind
    estimate: ChannelEstimate
    theoretical_p1: Optional[float]
    theoretical_p2: Optional[float]
    theoretical_capacity: Optional[float]

    @property
    def defended(self) -> bool:
        """The paper's bold criterion: measured capacity "about 0"."""
        return self.estimate.defends()

    @property
    def theory_defends(self) -> Optional[bool]:
        if self.theoretical_capacity is None:
            return None
        return self.theoretical_capacity < 1e-9


class SecurityEvaluator:
    """Runs the micro security benchmarks against the TLB simulators."""

    def __init__(self, config: EvaluationConfig = EvaluationConfig()) -> None:
        self.config = config
        self.theory = TheoreticalModel(
            nsets=config.tlb.sets, nways=config.tlb.ways
        )

    # -- single trials ------------------------------------------------------------

    def run_trial(
        self,
        program: Program,
        kind: TLBKind,
        rng: random.Random,
        bus: Optional[EventBus] = None,
    ) -> bool:
        """Run one benchmark once on a fresh CPU; True iff Step 3 missed."""
        tlb = make_tlb(
            kind,
            self.config.tlb,
            victim_asid=self.config.layout.victim_pid,
            victim_ways=(
                self.config.resolved_victim_ways()
                if kind is TLBKind.SP
                else None
            ),
            rng=rng,
        )
        if self.config.walker_factory is not None:
            walker = self.config.walker_factory()
        else:
            walker = make_walker()
        memory = MemorySystem(
            tlb,
            walker,
            switch_policy=(
                SwitchPolicy.FLUSH_ALL
                if self.config.flush_on_switch
                else SwitchPolicy.KEEP
            ),
            bus=bus,
        )
        cpu = CPU(memory_system=memory)
        cpu.load(program)
        result = cpu.run()
        if result.status is ExecutionStatus.HALTED:  # pragma: no cover
            raise RuntimeError("benchmark ended without a pass/fail verdict")
        return result.status is ExecutionStatus.PASSED

    # -- per-vulnerability evaluation ------------------------------------------------

    def evaluate_vulnerability(
        self,
        vulnerability: Vulnerability,
        kind: TLBKind,
        trials: Optional[int] = None,
    ) -> VulnerabilityResult:
        trials = trials if trials is not None else self.config.trials
        # Derive a per-(design, vulnerability) seed that is stable across
        # interpreter runs (str.__hash__ is salted per process).
        import zlib

        label = f"{self.config.seed}/{kind.value}/{vulnerability.pretty()}"
        rng = random.Random(zlib.crc32(label.encode()))
        layout = self.config.layout_for(kind)
        programs = {
            mapped: assemble(generate(vulnerability, layout, mapped=mapped))
            for mapped in (True, False)
        }
        misses = {True: 0, False: 0}
        for mapped in (True, False):
            for _ in range(trials):
                if self.run_trial(programs[mapped], kind, rng):
                    misses[mapped] += 1
        estimate = ChannelEstimate(
            misses_mapped=misses[True],
            misses_unmapped=misses[False],
            trials_per_behaviour=trials,
        )
        if vulnerability.pattern.uses_extended_states():
            p1 = p2 = capacity = None
        else:
            p1, p2 = self.theory.probabilities(kind, vulnerability)
            capacity = self.theory.capacity(kind, vulnerability)
        return VulnerabilityResult(
            vulnerability=vulnerability,
            kind=kind,
            estimate=estimate,
            theoretical_p1=p1,
            theoretical_p2=p2,
            theoretical_capacity=capacity,
        )

    # -- the full table ------------------------------------------------------------------

    def evaluate_kind(
        self,
        kind: TLBKind,
        vulnerabilities: Optional[Sequence[Vulnerability]] = None,
        trials: Optional[int] = None,
    ) -> List[VulnerabilityResult]:
        return [
            self.evaluate_vulnerability(vulnerability, cell_kind, trials)
            for cell_kind, vulnerability in table4_cells(
                kinds=(kind,), vulnerabilities=vulnerabilities
            )
        ]

    def evaluate_table4(
        self,
        kinds: Iterable[TLBKind] = (TLBKind.SA, TLBKind.SP, TLBKind.RF),
        trials: Optional[int] = None,
    ) -> Dict[TLBKind, List[VulnerabilityResult]]:
        table: Dict[TLBKind, List[VulnerabilityResult]] = {}
        for kind, vulnerability in table4_cells(kinds=kinds):
            table.setdefault(kind, []).append(
                self.evaluate_vulnerability(vulnerability, kind, trials)
            )
        return table

    def evaluate_extended(
        self,
        kind: TLBKind,
        trials: Optional[int] = None,
    ) -> List[VulnerabilityResult]:
        """Appendix B: run the targeted-invalidation rows (Table 7).

        The generated benchmarks realize targeted invalidations as
        per-page ``sfence.vma`` with Appendix B's presence-dependent
        timing; invalidation probes measure the cycle counter instead of
        the miss counter.
        """
        return [
            self.evaluate_vulnerability(vulnerability, cell_kind, trials)
            for cell_kind, vulnerability in extended_cells(kinds=(kind,))
        ]


def table4_cells(
    kinds: Iterable[TLBKind] = (TLBKind.SA, TLBKind.SP, TLBKind.RF),
    vulnerabilities: Optional[Sequence[Vulnerability]] = None,
) -> List[Tuple[TLBKind, Vulnerability]]:
    """The Table 4 work-list, one entry per (design, vulnerability) cell.

    Every cell is independent -- :meth:`SecurityEvaluator.evaluate_vulnerability`
    derives its RNG from the cell's own label -- so this enumeration is the
    unit of sharding for :mod:`repro.runner` as well as the serial iteration
    order of :meth:`SecurityEvaluator.evaluate_table4`.
    """
    rows = (
        list(vulnerabilities)
        if vulnerabilities is not None
        else table2_vulnerabilities()
    )
    return [(kind, vulnerability) for kind in kinds for vulnerability in rows]


def extended_cells(
    kinds: Iterable[TLBKind] = (TLBKind.SA, TLBKind.SP, TLBKind.RF),
) -> List[Tuple[TLBKind, Vulnerability]]:
    """The Appendix B work-list (Table 7 rows), at cell granularity."""
    from repro.model.extended import invalidation_only_vulnerabilities

    return [
        (kind, vulnerability)
        for kind in kinds
        for vulnerability in invalidation_only_vulnerabilities()
    ]


def defended_counts(
    table: Dict[TLBKind, List[VulnerabilityResult]]
) -> Dict[TLBKind, int]:
    """How many of the 24 rows each design defends (measured C* ~ 0)."""
    return {
        kind: sum(1 for result in results if result.defended)
        for kind, results in table.items()
    }


def format_table4(table: Dict[TLBKind, List[VulnerabilityResult]]) -> str:
    """Render results in the layout of the paper's Table 4."""
    lines: List[str] = []
    for kind, results in table.items():
        lines.append(f"== {kind.value} TLB ==")
        lines.append(
            f"{'Strategy':34} {'Vulnerability':30} "
            f"{'n_MM':>5} {'p1*':>6} {'p1':>6} "
            f"{'n_NM':>5} {'p2*':>6} {'p2':>6} {'C*':>6} {'C':>6}  defended"
        )
        lines.append("-" * 130)
        ordered = sorted(
            results,
            key=lambda r: (r.vulnerability.strategy.value, r.vulnerability.pattern.pretty()),
        )
        for result in ordered:
            estimate = result.estimate
            theory_p1 = (
                f"{result.theoretical_p1:>6.2f}"
                if result.theoretical_p1 is not None
                else f"{'--':>6}"
            )
            theory_p2 = (
                f"{result.theoretical_p2:>6.2f}"
                if result.theoretical_p2 is not None
                else f"{'--':>6}"
            )
            theory_capacity = (
                f"{result.theoretical_capacity:>6.2f}"
                if result.theoretical_capacity is not None
                else f"{'--':>6}"
            )
            lines.append(
                f"{result.vulnerability.strategy.value:34} "
                f"{result.vulnerability.pretty():30} "
                f"{estimate.misses_mapped:>5} {estimate.p1:>6.2f} "
                f"{theory_p1} "
                f"{estimate.misses_unmapped:>5} {estimate.p2:>6.2f} "
                f"{theory_p2} "
                f"{estimate.capacity:>6.2f} {theory_capacity}  "
                f"{'yes' if result.defended else 'NO'}"
            )
        lines.append("")
    counts = defended_counts(table)
    lines.append(
        "defended rows: "
        + ", ".join(
            f"{kind.value}={count}/{len(table[kind])}"
            for kind, count in counts.items()
        )
    )
    return "\n".join(lines)
