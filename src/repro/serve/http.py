"""Hand-rolled HTTP/1.1 over asyncio streams (stdlib only).

Just enough protocol for a JSON API: request-line + headers + an
optional ``Content-Length`` body in, status + headers + body out, one
request per connection (every response carries ``Connection: close``).
No chunked encoding, no keep-alive, no TLS -- the service sits behind
whatever terminates those in production, and the tests speak plain
``http.client``.

Parsing is defensive: oversized request lines, header blocks, or bodies
raise :class:`HttpError` with the right 4xx status instead of buffering
unboundedly, so a misbehaving client cannot balloon the event loop's
memory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Reason phrases for the statuses the service actually emits.
REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard limits on what one request may occupy.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024


class HttpError(Exception):
    """An error with an HTTP status; handlers raise it, the app renders it.

    ``code`` is a stable machine-readable slug (``bad-request``,
    ``quota-exhausted``, ...) so clients can branch without parsing the
    human-readable ``detail``.
    """

    def __init__(
        self,
        status: int,
        code: str,
        detail: str,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        super().__init__(f"{status} {code}: {detail}")
        self.status = status
        self.code = code
        self.detail = detail
        self.headers = dict(headers or {})

    def to_payload(self) -> Dict[str, Any]:
        return {"error": self.code, "detail": self.detail}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  #: keys lower-cased
    body: bytes

    def json(self) -> Any:
        """Decode the body as JSON or raise a 400."""
        if not self.body:
            raise HttpError(400, "bad-request", "request body is empty")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(
                400, "bad-request", f"request body is not valid JSON: {error}"
            ) from None

    def client_id(self, default: str = "anonymous") -> str:
        """The quota identity: the ``X-Repro-Client`` header, or a default."""
        client = self.headers.get("x-repro-client", "").strip()
        return client or default


@dataclass
class Response:
    """One response: a status plus either a JSON payload or raw bytes."""

    status: int = 200
    payload: Any = None
    body: Optional[bytes] = None
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        if self.body is not None:
            body = self.body
        else:
            body = (
                json.dumps(self.payload, sort_keys=True, default=str) + "\n"
            ).encode("utf-8")
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in sorted(self.headers.items()):
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("latin-1") + body


def error_response(error: HttpError) -> Response:
    return Response(
        status=error.status, payload=error.to_payload(), headers=error.headers
    )


async def read_request(reader: Any) -> Optional[Request]:
    """Parse one request from an asyncio stream reader.

    Returns ``None`` when the client closed the connection before
    sending a request line; raises :class:`HttpError` on anything
    malformed or oversized.
    """
    import asyncio

    try:
        raw_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as eof:
        if not eof.partial.strip():
            return None
        raise HttpError(400, "bad-request", "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "bad-request", "request line too long") from None
    if len(raw_line) > MAX_REQUEST_LINE:
        raise HttpError(400, "bad-request", "request line too long")
    try:
        method, target, version = raw_line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "bad-request", "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "bad-request", f"unsupported {version}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(
                400, "bad-request", "truncated header block"
            ) from None
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "bad-request", "header block too large")
        if line == b"\r\n":
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, "bad-request", "malformed header line")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(
                400, "bad-request", "malformed Content-Length"
            ) from None
        if length < 0:
            raise HttpError(400, "bad-request", "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, "payload-too-large",
                f"body exceeds the {MAX_BODY_BYTES}-byte limit",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "bad-request", "truncated body") from None

    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def match_route(
    pattern: str, path: str
) -> Optional[Dict[str, str]]:
    """Match ``/v1/jobs/{id}``-style patterns; returns captured segments."""
    pattern_parts = pattern.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    captures: Dict[str, str] = {}
    for expected, actual in zip(pattern_parts, path_parts):
        if expected.startswith("{") and expected.endswith("}"):
            if not actual:
                return None
            captures[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return captures


def not_found(path: str) -> HttpError:
    return HttpError(404, "not-found", f"no resource at {path!r}")


def method_not_allowed(method: str, allowed: Tuple[str, ...]) -> HttpError:
    return HttpError(
        405,
        "method-not-allowed",
        f"{method} not supported here (allowed: {', '.join(sorted(allowed))})",
        headers={"Allow": ", ".join(sorted(allowed))},
    )
