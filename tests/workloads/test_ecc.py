"""Tests for the elliptic-curve victim: group laws + trace structure."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.ecc import (
    BASE_POINT,
    Curve,
    ECCBuffers,
    ECCWorkload,
    TOY_CURVE,
    TracedScalarMult,
    random_scalar,
)

scalars = st.integers(min_value=1, max_value=1 << 20)


class TestCurveGroupLaws:
    def test_base_point_on_curve(self):
        assert TOY_CURVE.contains(BASE_POINT)

    def test_identity_laws(self):
        assert TOY_CURVE.add(None, BASE_POINT) == BASE_POINT
        assert TOY_CURVE.add(BASE_POINT, None) == BASE_POINT
        assert TOY_CURVE.add(None, None) is None

    def test_inverse(self):
        negated = TOY_CURVE.negate(BASE_POINT)
        assert TOY_CURVE.contains(negated)
        assert TOY_CURVE.add(BASE_POINT, negated) is None

    def test_addition_stays_on_curve(self):
        doubled = TOY_CURVE.double(BASE_POINT)
        tripled = TOY_CURVE.add(doubled, BASE_POINT)
        assert TOY_CURVE.contains(doubled)
        assert TOY_CURVE.contains(tripled)

    @given(scalars, scalars)
    @settings(max_examples=40, deadline=None)
    def test_commutativity(self, a, b):
        point_a = TOY_CURVE.scalar_mult(a, BASE_POINT)
        point_b = TOY_CURVE.scalar_mult(b, BASE_POINT)
        assert TOY_CURVE.add(point_a, point_b) == TOY_CURVE.add(point_b, point_a)

    @given(scalars, scalars)
    @settings(max_examples=40, deadline=None)
    def test_scalar_distributivity(self, a, b):
        # (a + b)G == aG + bG: the defining homomorphism property.
        left = TOY_CURVE.scalar_mult(a + b, BASE_POINT)
        right = TOY_CURVE.add(
            TOY_CURVE.scalar_mult(a, BASE_POINT),
            TOY_CURVE.scalar_mult(b, BASE_POINT),
        )
        assert left == right

    @given(scalars)
    @settings(max_examples=40, deadline=None)
    def test_scalar_mult_stays_on_curve(self, scalar):
        assert TOY_CURVE.contains(TOY_CURVE.scalar_mult(scalar, BASE_POINT))

    def test_singular_curve_rejected(self):
        with pytest.raises(ValueError):
            Curve(p=23, a=0, b=0)


class TestTracedScalarMult:
    @given(scalars)
    @settings(max_examples=40, deadline=None)
    def test_traced_result_matches_reference(self, scalar):
        traced = TracedScalarMult(scalar)
        list(traced.run())
        assert traced.result == TOY_CURVE.scalar_mult(scalar, BASE_POINT)

    def test_add_page_touched_only_on_one_bits(self):
        buffers = ECCBuffers()
        scalar = 0b1011001
        traced = TracedScalarMult(scalar, buffers=buffers)
        current_bit = None
        touched = {}
        for kind, arg1, vpn in traced.run():
            if kind == "bit":
                current_bit = arg1
                touched[current_bit] = 0
            elif vpn == buffers.add_vpn:
                touched[current_bit] += 1
        for index, count in touched.items():
            assert (count > 0) == bool((scalar >> index) & 1)

    def test_double_pages_touched_every_window(self):
        buffers = ECCBuffers()
        traced = TracedScalarMult(0b101, buffers=buffers)
        windows = []
        pages = set()
        for kind, _arg1, vpn in traced.run():
            if kind == "bit":
                if pages:
                    windows.append(pages)
                pages = set()
            else:
                pages.add(vpn)
        windows.append(pages)
        for window in windows:
            assert buffers.accum_vpn in window
            assert buffers.double_vpn in window

    def test_negative_scalar_rejected(self):
        with pytest.raises(ValueError):
            TracedScalarMult(-1)


class TestECCWorkload:
    def test_trace_confined_to_buffers(self):
        workload = ECCWorkload(scalar=0b110101, runs=1)
        pages = {vpn for _gap, vpn in workload.events(random.Random(0))}
        assert pages <= set(workload.buffers.pages())

    def test_secure_region_covers_buffers(self):
        workload = ECCWorkload(scalar=5, runs=1)
        sbase, ssize = workload.secure_region()
        assert ssize == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ECCWorkload(scalar=5, runs=0)
        with pytest.raises(ValueError):
            ECCWorkload(scalar=0, runs=1)

    def test_random_scalar_has_top_bit_set(self):
        scalar = random_scalar(bits=32, seed=4)
        assert scalar.bit_length() == 32
        assert scalar % 2 == 1


class TestEdDSAAttack:
    def test_full_scalar_recovery_on_sa(self):
        from repro.attacks import eddsa_attack
        from repro.security.kinds import TLBKind

        result = eddsa_attack(TLBKind.SA)
        assert result.recovered_exactly

    def test_secure_designs_block_recovery(self):
        from repro.attacks import eddsa_attack
        from repro.security.kinds import TLBKind

        for kind in (TLBKind.SP, TLBKind.RF):
            result = eddsa_attack(kind)
            assert not result.recovered_exactly
