"""Unit tests for the hand-rolled HTTP layer (no sockets needed)."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    MAX_BODY_BYTES,
    Request,
    Response,
    match_route,
    read_request,
)


def _parse(raw: bytes):
    """Drive read_request over an in-memory StreamReader."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_roundtrip(self):
        request = _parse(
            b"GET /v1/jobs?limit=5 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"X-Repro-Client: alice\r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/jobs"
        assert request.query == {"limit": "5"}
        assert request.client_id() == "alice"

    def test_post_with_body(self):
        body = json.dumps({"experiment": "table2"}).encode()
        request = _parse(
            b"POST /v1/jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.json() == {"experiment": "table2"}

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GETONLY\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_body(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(
                b"POST / HTTP/1.1\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
        assert excinfo.value.status == 413

    def test_unsupported_version(self):
        with pytest.raises(HttpError):
            _parse(b"GET / SPDY/99\r\n\r\n")

    def test_header_without_colon(self):
        with pytest.raises(HttpError):
            _parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n")


class TestRequestJson:
    def _request(self, body: bytes) -> Request:
        return Request(
            method="POST", path="/", query={}, headers={}, body=body
        )

    def test_empty_body_raises(self):
        with pytest.raises(HttpError) as excinfo:
            self._request(b"").json()
        assert excinfo.value.code == "bad-request"

    def test_invalid_json_raises(self):
        with pytest.raises(HttpError):
            self._request(b"{nope").json()


class TestResponseEncode:
    def test_json_payload(self):
        raw = Response(payload={"b": 2, "a": 1}).encode()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: close" in head
        assert f"Content-Length: {len(body)}".encode() in head
        # Canonical payloads sort their keys.
        assert body == b'{"a": 1, "b": 2}\n'

    def test_raw_body_passthrough(self):
        payload = b"exact bytes\n"
        raw = Response(
            body=payload, headers={"X-Repro-Sha256": "abc"}
        ).encode()
        assert raw.endswith(payload)
        assert b"X-Repro-Sha256: abc" in raw


class TestMatchRoute:
    def test_literal(self):
        assert match_route("/v1/health", "/v1/health") == {}
        assert match_route("/v1/health", "/v1/metrics") is None

    def test_capture(self):
        assert match_route("/v1/jobs/{job_id}", "/v1/jobs/j000001") == {
            "job_id": "j000001"
        }

    def test_length_mismatch(self):
        assert match_route("/v1/jobs/{job_id}", "/v1/jobs") is None
        assert match_route("/v1/jobs", "/v1/jobs/j000001") is None
