"""``run_all``: the one-call orchestration entry point.

Expands every registered experiment into cells, resolves what it can from
the result cache, shards the rest across worker processes, stores fresh
results back, reassembles the serial path's artifacts, and returns a
:class:`~repro.runner.progress.RunReport`.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.faults.chaos import ChaosConfig, ExecutorChaosConfig

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .experiments import DEFAULT_OPTIONS
from .progress import (
    ProgressPrinter,
    RunLog,
    RunReport,
    completed_idents,
    replay_run_log,
)
from .registry import all_experiments, ensure_default_experiments, expand_units
from .scheduler import Scheduler, TaskOutcome, run_units_serially
from .results import write_artifacts


def default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def run_all(
    jobs: Optional[int] = None,
    use_cache: bool = True,
    filters: Optional[Iterable[str]] = None,
    results_dir: Union[Path, str] = "results",
    cache_dir: Union[Path, str, None] = None,
    log_path: Union[Path, str, None] = None,
    options: Optional[Mapping[str, Any]] = None,
    progress: bool = True,
    max_retries: int = 2,
    backoff: float = 0.05,
    task_timeout: Optional[float] = None,
    chaos: Optional[ChaosConfig] = None,
    executor: str = "pool",
    workers: int = 0,
    executor_options: Optional[Mapping[str, Any]] = None,
    executor_chaos: Optional[ExecutorChaosConfig] = None,
) -> RunReport:
    """Run every (filtered) experiment cell and merge the artifacts.

    ``log_path`` defaults to ``<results_dir>/run_log.jsonl``; pass an
    explicit path to redirect it.  ``options`` overrides entries of
    :data:`~repro.runner.experiments.DEFAULT_OPTIONS` (e.g. smaller trial
    counts for smoke tests).

    ``task_timeout`` arms the scheduler's per-cell wall-clock watchdog;
    ``chaos`` injects deterministic worker faults (testing only; see
    :mod:`repro.faults`).  If the previous run at this ``results_dir`` was
    interrupted, its run log is replayed for a ``run_resume`` event and
    the cache transparently resumes the work; an interrupted or
    partially-failed run leaves a ``failed_cells.json`` manifest beside
    the artifacts (now with the full per-attempt history of each failed
    cell).

    ``executor`` picks the backend: ``"pool"`` (the default per-host
    multiprocessing scheduler; ``--jobs 1`` degrades to in-process) or
    ``"work-stealing"`` -- the lease-based multi-host executor of
    :mod:`repro.runner.distributed`, which coordinates through the shared
    cache directory and accepts any ``python -m repro worker`` process on
    any host.  ``workers`` spawns that many local stealing workers;
    ``executor_options`` forwards protocol knobs (``lease_ttl``,
    ``heartbeat_interval``, ``fallback_after``, ...) and
    ``executor_chaos`` arms the executor-level fault campaign.
    """
    from repro.sim.kernel import KERNEL_TELEMETRY, STRUCTURE_BACKEND

    started = time.monotonic()
    telemetry_base = KERNEL_TELEMETRY.snapshot()
    ensure_default_experiments()
    jobs = jobs if jobs is not None else default_jobs()
    jobs = max(1, jobs)
    merged_options: Dict[str, Any] = dict(DEFAULT_OPTIONS)
    if options:
        merged_options.update(options)
    filters = list(filters) if filters else None

    units = expand_units(merged_options, filters)
    report = RunReport(units_total=len(units), jobs=jobs)
    report.executor = (
        "work-stealing" if executor == "work-stealing"
        else ("pool" if jobs > 1 else "serial")
    )

    log_file = Path(
        log_path if log_path is not None
        else Path(results_dir) / "run_log.jsonl"
    )
    # Replay the previous log *before* RunLog truncates it: a log whose
    # run never ended cleanly (no run_end, or run_end with interrupted
    # set, or a torn tail from a hard kill) marks an interrupted run this
    # one resumes (via the cache).
    prior_events = replay_run_log(log_file)
    prior_done: List[str] = []
    if prior_events:
        ended_clean = any(
            event.get("event") == "run_end" and not event.get("interrupted")
            for event in prior_events
        )
        if not ended_clean:
            prior_done = completed_idents(prior_events)

    log = RunLog(log_file)
    printer = ProgressPrinter(total=len(units), enabled=progress)

    cache = (
        ResultCache(cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR)
        if use_cache
        else None
    )
    log.emit(
        "run_start",
        jobs=jobs,
        units=len(units),
        filters=filters,
        cache=bool(cache),
        code_version=cache.code_version if cache else None,
    )
    if prior_done:
        resumable = {unit.ident for unit in units}
        report.resumed_cells = sum(
            1 for ident in prior_done if ident in resumable
        )
        log.emit(
            "run_resume",
            prior_completed=len(prior_done),
            resumed=report.resumed_cells,
        )
        printer.note(
            f"resuming: a previous interrupted run completed"
            f" {report.resumed_cells}/{len(units)} of these cells"
        )

    # Resolve cache hits in-process; only misses are scheduled.
    outcomes: Dict[int, TaskOutcome] = {}
    to_run: List[Any] = []
    for task_id, unit in enumerate(units):
        if cache is not None:
            hit, value = cache.get(unit)
            if hit:
                outcomes[task_id] = TaskOutcome(
                    unit=unit, value=value, cached=True
                )
                log.emit(
                    "unit_done",
                    experiment=unit.experiment,
                    key=unit.key,
                    status="ok",
                    cached=True,
                    elapsed=0.0,
                )
                continue
        to_run.append((task_id, unit))

    printer.cache_hits = len(outcomes)
    printer.base_done = len(outcomes)
    if outcomes:
        printer.note(
            f"{len(outcomes)}/{len(units)} cells from cache,"
            f" {len(to_run)} to run"
        )

    if executor not in ("pool", "work-stealing"):
        raise ValueError(
            f"unknown executor {executor!r}; known: pool, work-stealing"
        )
    if to_run and executor == "work-stealing":
        from .distributed import WorkStealingExecutor

        stealer = WorkStealingExecutor(
            cache_dir=cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
            local_workers=workers,
            max_retries=max_retries,
            backoff=backoff,
            log=log,
            progress=printer,
            chaos=executor_chaos,
            **dict(executor_options or {}),
        )
        try:
            fresh = stealer.run(to_run)
        finally:
            stealer.close()
        report.retries = stealer.retries
        report.worker_crashes = stealer.worker_crashes
        report.corrupt_results = stealer.corrupt_results
        report.interrupted = stealer.interrupted
        report.leases_reclaimed = stealer.leases_reclaimed
        report.duplicate_completions = stealer.duplicate_completions
        report.quarantined = stealer.quarantined
        report.fallback_cells = stealer.fallback_cells
        report.torn_journals = stealer.torn_journals
        report.worker_busy = dict(stealer.worker_busy)
        report.cells_stolen = sum(
            count
            for worker, count in stealer.cells_by_worker.items()
            if not worker.startswith("orchestrator-")
        )
    elif to_run and jobs > 1:
        scheduler = Scheduler(
            jobs=jobs,
            max_retries=max_retries,
            backoff=backoff,
            log=log,
            progress=printer,
            task_timeout=task_timeout,
            chaos=chaos,
        )
        fresh = scheduler.run(to_run)
        report.retries = scheduler.retries
        report.worker_crashes = scheduler.worker_crashes
        report.watchdog_kills = scheduler.watchdog_kills
        report.corrupt_results = scheduler.corrupt_results
        report.interrupted = scheduler.interrupted
        report.worker_busy = dict(scheduler.worker_busy)
    elif to_run:
        fresh = run_units_serially(to_run, log)
        # The serial path records an outcome for every cell it reaches
        # (even failures); a shortfall means Ctrl-C stopped it early.
        report.interrupted = len(fresh) < len(to_run)
        report.worker_busy = {
            0: sum(outcome.elapsed for outcome in fresh.values())
        }
    else:
        fresh = {}

    if cache is not None:
        for outcome in fresh.values():
            if not outcome.failed:
                cache.put(outcome.unit, outcome.value, outcome.elapsed)
    outcomes.update(fresh)

    report.cache_hits = cache.stats.hits if cache else 0
    report.cache_misses = cache.stats.misses if cache else 0
    report.cache_corrupt = cache.stats.corrupt if cache else 0
    report.completed = sum(
        1 for outcome in outcomes.values() if not outcome.failed
    )
    report.failed = [
        outcomes[task_id].unit.ident
        for task_id in sorted(outcomes)
        if outcomes[task_id].failed
    ]

    # Group completed values per experiment, in unit enumeration order.
    grouped: Dict[str, List[Any]] = {}
    incomplete: set = set()
    for task_id, unit in enumerate(units):
        outcome = outcomes.get(task_id)
        if outcome is None or outcome.failed:
            incomplete.add(unit.experiment)
            continue
        grouped.setdefault(unit.experiment, []).append(outcome.value)

    assembled: Dict[str, Any] = {}
    for experiment in all_experiments():
        name = experiment.name
        if name in incomplete or name not in grouped:
            continue
        # A filtered run may hold only a subset of an experiment's cells;
        # partial sets cannot be reassembled into a faithful artifact.
        if len(grouped[name]) != len(experiment.units(merged_options)):
            continue
        assembled[name] = experiment.assemble(grouped[name], merged_options)

    report.artifacts = write_artifacts(
        assembled, results_dir, merged_options, log
    )

    # Quarantine manifest: which cells failed (with errors), which never
    # ran, and whether the run was cut short -- machine-readable, so CI
    # and resume tooling need not parse the log.
    manifest_path = Path(results_dir) / "failed_cells.json"
    if report.failed or report.interrupted:
        missing = [
            unit.ident
            for task_id, unit in enumerate(units)
            if task_id not in outcomes
        ]
        manifest = {
            "interrupted": report.interrupted,
            "failed": [
                {
                    "ident": outcomes[task_id].unit.ident,
                    "attempts": outcomes[task_id].attempts,
                    "error": (
                        outcomes[task_id].error.splitlines()[-1]
                        if outcomes[task_id].error
                        else None
                    ),
                    # Full per-attempt evidence: worker id, fault or
                    # exception, and the backoff each retry waited out.
                    "history": outcomes[task_id].history,
                }
                for task_id in sorted(outcomes)
                if outcomes[task_id].failed
            ],
            "missing": missing,
        }
        manifest_path.parent.mkdir(parents=True, exist_ok=True)
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        log.emit("manifest", path=str(manifest_path))
    elif manifest_path.exists():
        # A fully successful run clears the previous quarantine record.
        manifest_path.unlink()

    # This run's run-kernel engagement: the process-global telemetry
    # delta (serial cells accrue directly; pool workers shipped their
    # counts home in their farewell messages, absorbed by the scheduler).
    final = KERNEL_TELEMETRY.snapshot()
    report.kernel_run_hits = final[0] - telemetry_base[0]
    report.kernel_fallback_accesses = final[1] - telemetry_base[1]
    report.kernel_runs = final[2] - telemetry_base[2]
    report.kernel_backend = STRUCTURE_BACKEND

    report.elapsed = time.monotonic() - started
    log.emit("run_end", **report.summary_fields())
    log.close()
    printer.update(
        done=len(outcomes) - printer.base_done,
        retries=report.retries,
        workers=0,
        force=True,
    )
    if report.artifacts:
        printer.note(f"wrote {len(report.artifacts)} artifacts")
    if report.cache_corrupt:
        printer.note(
            f"cache: {report.cache_corrupt} corrupt entries treated as"
            " misses and recomputed"
        )
    if report.failed:
        printer.note(f"FAILED cells: {', '.join(report.failed)}")
    if report.interrupted:
        printer.note(
            f"interrupted: {report.completed}/{report.units_total} cells"
            " done; rerun to resume from the cache"
        )
    return report
