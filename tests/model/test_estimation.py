"""Tests for the interval/significance treatment of channel estimates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.capacity import ChannelEstimate
from repro.model.estimation import (
    capacity_bounds,
    significantly_leaky,
    two_proportion_z,
    wilson_interval,
)

counts = st.integers(min_value=0, max_value=200)


class TestWilsonInterval:
    def test_contains_the_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_degenerate_counts_have_width(self):
        # Unlike Wald, Wilson stays informative at 0/n and n/n.
        low, high = wilson_interval(0, 500)
        assert low == 0.0 and 0 < high < 0.02
        low, high = wilson_interval(500, 500)
        assert 0.98 < low < 1.0 and high == 1.0

    def test_narrows_with_trials(self):
        narrow = wilson_interval(50, 500)
        wide = wilson_interval(5, 50)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    @given(counts, st.integers(min_value=1, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_interval_properties(self, successes, trials):
        successes = min(successes, trials)
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, z=0)


class TestCapacityBounds:
    def test_perfect_channel(self):
        estimate = ChannelEstimate(500, 0, 500)
        lower, upper = capacity_bounds(estimate)
        assert lower > 0.9
        assert upper == pytest.approx(1.0, abs=1e-6)
        assert significantly_leaky(estimate)

    def test_balanced_channel_is_not_leaky(self):
        estimate = ChannelEstimate(167, 158, 500)  # RF-style counts
        lower, _upper = capacity_bounds(estimate)
        assert lower == 0.0
        assert not significantly_leaky(estimate)

    def test_bounds_bracket_the_point_estimate(self):
        for n_mm, n_nm in [(500, 0), (343, 333), (126, 165), (0, 500)]:
            estimate = ChannelEstimate(n_mm, n_nm, 500)
            lower, upper = capacity_bounds(estimate)
            assert lower <= estimate.capacity <= upper + 1e-9

    @given(counts, counts, st.integers(min_value=10, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_bounds_are_ordered(self, n_mm, n_nm, trials):
        n_mm, n_nm = min(n_mm, trials), min(n_nm, trials)
        estimate = ChannelEstimate(n_mm, n_nm, trials)
        lower, upper = capacity_bounds(estimate)
        assert 0.0 <= lower <= upper <= 1.0 + 1e-9


class TestTwoProportionZ:
    def test_identical_counts_give_no_evidence(self):
        z, p_value = two_proportion_z(ChannelEstimate(100, 100, 500))
        assert z == 0.0 and p_value == 1.0

    def test_degenerate_equal_counts(self):
        z, p_value = two_proportion_z(ChannelEstimate(0, 0, 500))
        assert p_value == 1.0

    def test_full_separation_is_overwhelming(self):
        z, p_value = two_proportion_z(ChannelEstimate(500, 0, 500))
        assert abs(z) > 10
        assert p_value < 1e-12

    def test_small_imbalance_is_insignificant(self):
        _z, p_value = two_proportion_z(ChannelEstimate(52, 48, 500))
        assert p_value > 0.05


class TestAgainstTheHarness:
    def test_table4_verdicts_agree_with_significance(self):
        # The significance criterion reproduces the paper's defended
        # pattern on a real (reduced-trial) Table 4 run.
        from repro.security import EvaluationConfig, SecurityEvaluator, TLBKind

        evaluator = SecurityEvaluator(EvaluationConfig(trials=60))
        for kind, expected in (
            (TLBKind.SA, 10),
            (TLBKind.SP, 14),
            (TLBKind.RF, 24),
        ):
            results = evaluator.evaluate_kind(kind)
            defended = sum(
                1
                for result in results
                if not significantly_leaky(result.estimate)
            )
            assert defended == expected, kind
