#!/usr/bin/env python3
"""TLBleed in simulation: recover an RSA exponent through the TLB.

The victim decrypts with a real (simulated-workload) libgcrypt-style
square-and-multiply whose ``tp`` pointer page is touched only for 1-bits
(Figure 5).  The attacker Prime + Probes the TLB set that page maps to,
once per exponent-bit window.

Against the standard SA TLB the single-trace recovery is exact.  The SP
TLB's partitions remove the cross-process eviction signal entirely; the RF
TLB randomizes the victim's fills so the probe decorrelates from ``tp``.

Run with:  python examples/rsa_key_recovery.py
"""

from repro.attacks import tlbleed_attack
from repro.security import TLBKind
from repro.workloads.rsa import generate_key


def main() -> None:
    key = generate_key(bits=64, seed=2019)
    print(f"victim RSA key: n={key.n:#x}")
    print(f"secret exponent d ({key.d.bit_length()} bits): {key.d:#x}\n")

    for kind in (TLBKind.SA, TLBKind.SP, TLBKind.RF):
        result = tlbleed_attack(kind, key=key)
        print(f"== {kind.value} TLB ==")
        print(f"true d     : {result.true_bits}")
        print(f"recovered  : {result.recovered_bits}")
        print(
            f"accuracy   : {result.accuracy:.1%}"
            f"{'  (FULL KEY RECOVERED)' if result.recovered_exactly else ''}\n"
        )

    print(
        "The paper reports TLBleed's 92% single-trace success on real\n"
        "hardware; the noise-free simulator recovers the SA TLB key\n"
        "exactly, while the secure designs block exact recovery."
    )


if __name__ == "__main__":
    main()
