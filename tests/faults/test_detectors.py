"""Detector units: quiet on clean runs, loud on targeted corruption."""

import pytest

from repro.faults import DetectorSuite, SimFaultInjector, FaultSpec
from repro.faults.campaign import build_campaign_memory, drive_workload


@pytest.fixture
def clean_memory():
    return build_campaign_memory("SA")


class TestCleanBaseline:
    @pytest.mark.parametrize("design", ["SA", "SP", "RF"])
    def test_no_false_positives(self, design):
        memory = build_campaign_memory(design)
        suite = DetectorSuite.standard(
            memory, strict_shadow=(design != "RF")
        )
        drive_workload(memory)
        assert suite.finish() == {}
        assert suite.fired == ()


class TestSingleFaults:
    def _run(self, memory, kind, **spec_kwargs):
        import random

        suite = DetectorSuite.standard(memory)
        spec = FaultSpec(kind=kind, **spec_kwargs)
        injector = SimFaultInjector(
            memory=memory, spec=spec, rng=random.Random(99)
        ).arm()
        drive_workload(memory)
        return injector, suite.finish()

    def test_ppn_flip_caught_by_oracle_and_shadow(self, clean_memory):
        injector, fired = self._run(clean_memory, "bitflip-ppn")
        assert injector.injected
        assert "translation-oracle" in fired
        assert "shadow-model" in fired

    def test_asid_flip_caught(self, clean_memory):
        injector, fired = self._run(clean_memory, "bitflip-asid")
        assert injector.injected
        assert fired  # any detector: the entry no longer matches its fill

    def test_sec_flip_caught_by_sec_bit_checker(self, clean_memory):
        injector, fired = self._run(clean_memory, "bitflip-sec")
        assert injector.injected
        assert "sec-bit" in fired

    def test_dropped_flush_caught_synchronously(self, clean_memory):
        injector, fired = self._run(clean_memory, "drop-flush", trigger=2)
        assert injector.injected
        assert "flush-efficacy" in fired

    def test_walk_jitter_breaks_the_level_multiple(self, clean_memory):
        injector, fired = self._run(clean_memory, "walk-jitter")
        assert injector.injected
        assert "walk-timing" in fired

    def test_spurious_evict_caught_by_shadow(self, clean_memory):
        # Trigger past the last re-touch of any live entry, so a refill
        # can never legally mask the silent eviction.
        injector, fired = self._run(clean_memory, "spurious-evict", trigger=64)
        assert injector.injected
        assert "shadow-model" in fired

    def test_index_corrupt_caught_by_audit(self, clean_memory):
        injector, fired = self._run(clean_memory, "index-corrupt")
        assert injector.injected
        assert "tlb-audit" in fired


class TestInjectorContract:
    def test_runner_kind_cannot_be_armed(self, clean_memory):
        import random

        injector = SimFaultInjector(
            memory=clean_memory,
            spec=FaultSpec(kind="hang"),
            rng=random.Random(0),
        )
        with pytest.raises(ValueError, match="runner-layer"):
            injector.arm()

    def test_injection_is_silent_on_the_bus(self, clean_memory):
        """The fault itself must not announce itself via events."""
        import random

        flushes = []
        clean_memory.bus.on_flush(flushes.append)
        evicts = []
        clean_memory.bus.on_evict(evicts.append)
        SimFaultInjector(
            memory=clean_memory,
            spec=FaultSpec(kind="spurious-evict", trigger=5),
            rng=random.Random(1),
        ).arm()
        clean_memory.context_switch(0)
        for vpn in range(0x100, 0x108):
            clean_memory.translate(vpn, 0)
        # The spurious eviction dropped an entry without any event.
        assert not flushes
        assert not evicts
        assert clean_memory.tlb.occupancy() < 8

    def test_summary_reports_injections(self, clean_memory):
        import random

        injector = SimFaultInjector(
            memory=clean_memory,
            spec=FaultSpec(kind="bitflip-ppn", trigger=3),
            rng=random.Random(2),
        ).arm()
        assert injector.summary() is None
        clean_memory.context_switch(0)
        for vpn in range(0x100, 0x108):
            clean_memory.translate(vpn, 0)
        summary = injector.summary()
        assert summary is not None
        assert summary["kind"] == "bitflip-ppn"
        assert summary["injections"] == 1


class TestAudit:
    def test_audit_clean_tlb_is_empty(self, clean_memory):
        drive_workload(clean_memory)
        assert clean_memory.tlb.audit() == []

    def test_audit_flags_misplaced_entry(self, clean_memory):
        clean_memory.context_switch(0)
        for vpn in range(0x100, 0x110):
            clean_memory.translate(vpn, 0)
        tlb = clean_memory.tlb
        # Corrupt an entry's VPN so it no longer indexes to its set.
        entry = next(e for s in tlb._sets for e in s if e.valid)
        entry.vpn ^= 0x8  # flips a set-index bit for 16-set geometries
        problems = tlb.audit()
        assert problems and "indexes to set" in problems[0]

    def test_audit_flags_fast_index_corruption(self, clean_memory):
        clean_memory.context_switch(0)
        for vpn in range(0x100, 0x110):
            clean_memory.translate(vpn, 0)
        tlb = clean_memory.tlb
        # Rebind one live entry's fast-index slot under a bogus key, the
        # way the index-corrupt chaos fault does.
        entry = next(e for s in tlb._sets for e in s if e.valid)
        key = entry.index_key()
        del tlb._index[key]
        tlb._index[(key[0] ^ 1, key[1], key[2])] = entry
        problems = tlb.audit()
        assert any("fast index" in p or "fast-index" in p for p in problems)
