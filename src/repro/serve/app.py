"""The service: wiring, connection handling, and lifecycle.

:class:`ServeApp` assembles the collaborators -- result store, cell
cache, quotas, metrics, the async executor, the job manager, the router
-- and runs an ``asyncio.start_server`` accept loop over the hand-rolled
HTTP layer.  One connection handles one request: parse, route, render,
close.  Handler exceptions become JSON error responses (4xx for
:class:`~repro.serve.http.HttpError`, 500 otherwise); the accept loop
itself never dies to a bad client.

``run()`` is the blocking entry point behind ``python -m repro serve``:
it installs SIGTERM/SIGINT handlers that resolve a stop future, stops
accepting connections, then *drains* -- in-flight jobs get up to
``drain_timeout`` seconds to finish before the dispatchers are torn
down -- and returns 0 on a clean shutdown, so process supervisors (and
the CI smoke script) can tell a graceful stop from a crash by exit code
alone.  Work that outlives the drain (or a plain SIGKILL) is not lost:
every queued job lives in the state dir's jobs journal until it reaches
a terminal state, and ``start()`` resumes the orphans (see
:meth:`repro.serve.jobs.JobManager.resume_pending`).
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
import traceback
from pathlib import Path
from typing import Any, FrozenSet, Mapping, Optional, Union

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.registry import ensure_default_experiments
from repro.runner.scheduler import AsyncInProcessExecutor, Executor

from .http import HttpError, Response, error_response, read_request
from .jobs import JobManager
from .metrics import ServiceMetrics
from .quotas import QuotaRegistry
from .routes import make_router
from .store import ResultStore

#: Default service state location (result store, job telemetry logs).
DEFAULT_STATE_DIR = ".repro-serve"


class ServeApp:
    """One service instance (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        state_dir: Union[Path, str] = DEFAULT_STATE_DIR,
        cache_dir: Union[Path, str, None] = None,
        use_cache: bool = True,
        executor: Optional[Executor] = None,
        max_concurrency: int = 2,
        dispatchers: int = 2,
        quota_rate: float = 0.0,
        quota_burst: float = 10.0,
        options: Optional[Mapping[str, Any]] = None,
        extra_option_keys: FrozenSet[str] = frozenset(),
        drain_timeout: float = 20.0,
        quiet: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.state_dir = Path(state_dir)
        self.drain_timeout = drain_timeout
        self.quiet = quiet
        self.metrics = ServiceMetrics()
        self.quotas = QuotaRegistry(rate=quota_rate, burst=quota_burst)
        self.store = ResultStore(self.state_dir / "results")
        self.cache = (
            ResultCache(cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR)
            if use_cache
            else None
        )
        self.executor = executor or AsyncInProcessExecutor(
            max_concurrency=max_concurrency
        )
        self.manager = JobManager(
            executor=self.executor,
            store=self.store,
            metrics=self.metrics,
            cache=self.cache,
            state_dir=self.state_dir,
            base_options=options,
            extra_option_keys=extra_option_keys,
            dispatchers=dispatchers,
        )
        self.router, self.routes = make_router(
            self.manager, self.store, self.metrics, self.quotas
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the job dispatchers.

        With ``port=0`` the OS picks a free port; ``self.port`` is
        updated to the bound one (the tests rely on this).
        """
        ensure_default_experiments()
        resumed = self.manager.resume_pending()
        if resumed:
            self._log(
                f"resumed {resumed} pending job(s) from the jobs journal"
            )
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._log(f"serving on http://{self.host}:{self.port}")

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.stop()
        self._log("stopped")

    async def drain(self) -> None:
        """Stop accepting, then let in-flight jobs finish (bounded).

        The listener closes first so no new work arrives; queued and
        running jobs then get up to ``drain_timeout`` seconds to reach a
        terminal state.  Jobs still pending when the clock runs out stay
        journaled as queued, so the *next* start resumes them -- the
        timeout defers work, it never loses it.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + max(0.0, self.drain_timeout)
        while self.manager.inflight or self.manager.queue_depth():
            if time.monotonic() >= deadline:
                pending = (
                    len(self.manager.inflight) + self.manager.queue_depth()
                )
                self._log(
                    f"drain timed out with {pending} job(s) pending;"
                    " they stay journaled for the next start"
                )
                return
            await asyncio.sleep(0.05)
        self._log("drained all in-flight jobs")

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro.serve] {message}", file=sys.stderr, flush=True)

    # -- connection handling -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._one_response(reader)
            if response is None:
                return
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _one_response(
        self, reader: asyncio.StreamReader
    ) -> Optional[Response]:
        try:
            request = await read_request(reader)
        except HttpError as error:
            self.metrics.http_requests += 1
            self.metrics.http_errors += 1
            return error_response(error)
        if request is None:
            return None
        self.metrics.http_requests += 1
        try:
            handler, captures = self.router.resolve(
                request.method, request.path
            )
            result = handler(request, **captures)
            if asyncio.iscoroutine(result):
                result = await result
            return result
        except HttpError as error:
            self.metrics.http_errors += 1
            return error_response(error)
        except Exception:
            self.metrics.http_errors += 1
            self._log(
                "unhandled handler error:\n" + traceback.format_exc()
            )
            return error_response(
                HttpError(
                    500, "internal-error",
                    "unhandled error; see the server log",
                )
            )

    # -- blocking entry point ------------------------------------------------------

    def run(self) -> int:
        """Serve until SIGTERM/SIGINT; returns 0 on graceful shutdown."""
        return asyncio.run(self._run_until_signalled())

    async def _run_until_signalled(self) -> int:
        loop = asyncio.get_running_loop()
        stop = loop.create_future()

        def request_stop(signame: str) -> None:
            if not stop.done():
                self._log(f"received {signame}; shutting down")
                stop.set_result(signame)

        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, request_stop, signum.name
                )
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loops: Ctrl-C surfaces as KeyboardInterrupt
        await self.start()
        try:
            await stop
            await self.drain()
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            pass
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()
        return 0
