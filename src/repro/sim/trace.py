"""Named trace scenarios for ``python -m repro trace``.

Each scenario runs a small-parameter version of one of the repo's drive
loops with a :class:`TraceObserver` and a :class:`StatsObserver` attached
to the :class:`repro.sim.MemorySystem` event bus, writing every TLB event
as one JSONL record.  The scenarios exist to make the unified sim core
*observable*: the same code paths that produce the paper's tables can be
replayed at toy scale and inspected event by event.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Callable, Dict, List, Optional, Union

from .events import EventBus
from .observers import StatsObserver, TraceObserver, read_jsonl


@dataclass(frozen=True)
class TraceReport:
    """What one scenario run produced."""

    scenario: str
    #: Number of JSONL records written.
    events: int
    stats: StatsObserver
    #: One-line human summary of the traced experiment's outcome.
    outcome: str


def _trace_tlbleed(bus: EventBus, kind: "TLBKind", seed: int) -> str:
    from repro.attacks.prime_probe import tlbleed_attack
    from repro.workloads.rsa import generate_key

    result = tlbleed_attack(
        kind, key=generate_key(bits=16, seed=11), seed=seed, bus=bus
    )
    return (
        f"TLBleed vs {kind.value}: recovered {result.recovered_bits!r}"
        f" (accuracy {result.accuracy:.0%})"
    )


def _trace_covert(bus: EventBus, kind: "TLBKind", seed: int) -> str:
    from repro.attacks.covert_channel import random_message, transmit

    result = transmit(random_message(16, seed=1), kind, seed=seed, bus=bus)
    return (
        f"covert channel vs {kind.value}: BER {result.bit_error_rate:.0%}"
        f" over {len(result.sent)} bits"
    )


def _trace_dpf(bus: EventBus, kind: "TLBKind", seed: int) -> str:
    from repro.attacks.double_page_fault import scan_secret_page

    result = scan_secret_page(kind, seed=seed, bus=bus)
    return (
        f"double-page-fault scan vs {kind.value}: recovered "
        f"{result.recovered} (secret {result.secret_vpn}, "
        f"{'correct' if result.correct else 'wrong'})"
    )


def _trace_profiling(bus: EventBus, kind: "TLBKind", seed: int) -> str:
    from repro.attacks.set_profiling import profile_secret_set

    result = profile_secret_set(kind, rounds=5, seed=seed, bus=bus)
    return (
        f"set profiling vs {kind.value}: recovered set "
        f"{result.recovered_set} (true {result.true_set})"
    )


def _trace_perf(bus: EventBus, kind: "TLBKind", seed: int) -> str:
    from repro.perf.harness import PerfSettings, Scenario, run_cell
    from repro.workloads.spec import SPEC_BENCHMARKS

    cell = run_cell(
        kind,
        "4W 32",
        Scenario(secure=True, spec=SPEC_BENCHMARKS[0]),
        rsa_runs=1,
        settings=PerfSettings(
            key_bits=32, spec_instructions=2_000, seed=seed
        ),
        bus=bus,
    )
    total = cell.total
    return (
        f"perf cell {kind.value}/4W 32/{cell.scenario.label}: "
        f"IPC {total.ipc:.3f}, MPKI {total.mpki:.3f}, "
        f"{total.switches} switches"
    )


def _trace_security(bus: EventBus, kind: "TLBKind", seed: int) -> str:
    import random

    from repro.model.table2 import table2_vulnerabilities
    from repro.security.benchgen import generate
    from repro.security.evaluate import EvaluationConfig, SecurityEvaluator
    from repro.isa import assemble

    evaluator = SecurityEvaluator(EvaluationConfig(seed=seed))
    vulnerability = table2_vulnerabilities()[0]
    layout = evaluator.config.layout_for(kind)
    program = assemble(generate(vulnerability, layout, mapped=True))
    missed = evaluator.run_trial(
        program, kind, random.Random(seed), bus=bus
    )
    return (
        f"security trial vs {kind.value} "
        f"[{vulnerability.pretty()}]: step 3 "
        f"{'missed' if missed else 'hit'}"
    )


def read_trace(source: Union[str, Path, IO[str]]) -> List[Dict[str, Any]]:
    """Load a :class:`TraceObserver` JSONL file back into event records.

    Delegates to :func:`repro.sim.read_jsonl`, so a trace torn mid-record
    by a killed tracer process is replayable up to its last whole event
    (the torn tail is skipped with a warning).
    """
    return read_jsonl(source)


#: Scenario name -> runner(bus, kind, seed) -> outcome line.
SCENARIOS: Dict[str, Callable[[EventBus, "TLBKind", int], str]] = {
    "tlbleed": _trace_tlbleed,
    "covert": _trace_covert,
    "dpf": _trace_dpf,
    "profiling": _trace_profiling,
    "perf": _trace_perf,
    "security": _trace_security,
}


def run_scenario(
    name: str,
    target: Union[str, Path, IO[str], None] = None,
    kind: Optional["TLBKind"] = None,
    seed: int = 0,
) -> TraceReport:
    """Run one named scenario, streaming its event trace to ``target``.

    ``target`` may be a path, an open text handle, or ``None`` for stdout.
    """
    from repro.security.kinds import TLBKind

    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (known: {known})")
    kind = kind if kind is not None else TLBKind.SA
    bus = EventBus()
    stats = StatsObserver().subscribe(bus)
    with TraceObserver(target if target is not None else sys.stdout) as trace:
        trace.subscribe(bus)
        outcome = SCENARIOS[name](bus, kind, seed)
        events = trace.seq
    return TraceReport(
        scenario=name, events=events, stats=stats, outcome=outcome
    )
