"""Per-client token-bucket quotas for job submission.

Every ``POST /v1/jobs`` costs one token from the submitting client's
bucket (identified by the ``X-Repro-Client`` header).  Buckets hold at
most ``burst`` tokens and refill continuously at ``rate`` tokens per
second, so a client can burst a batch of submissions and then settles to
the sustained rate; an empty bucket means HTTP 429 with a
``Retry-After`` hint.

Time is injected by the caller (the app passes its event loop's clock),
which keeps the bucket arithmetic trivially unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class TokenBucket:
    """One client's allowance: ``tokens`` at ``updated``, refilling."""

    rate: float
    burst: float
    tokens: float
    updated: float
    #: Submissions admitted / rejected, for the metrics endpoint.
    admitted: int = 0
    rejected: int = 0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be available (post-refill)."""
        deficit = max(0.0, cost - self.tokens)
        return deficit / self.rate if self.rate > 0 else float("inf")


@dataclass
class QuotaRegistry:
    """Token buckets by client id, created on first sight.

    ``rate <= 0`` disables quotas entirely (every request is admitted),
    which is the right default for a trusted single-tenant deployment;
    the CLI turns them on with ``--quota-rate``/``--quota-burst``.
    """

    rate: float = 0.0
    burst: float = 10.0
    buckets: Dict[str, TokenBucket] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client: str, now: float) -> Tuple[bool, float]:
        """Charge one submission; returns ``(admitted, retry_after)``."""
        if not self.enabled:
            return True, 0.0
        bucket = self.buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(
                rate=self.rate, burst=self.burst,
                tokens=self.burst, updated=now,
            )
            self.buckets[client] = bucket
        if bucket.try_acquire(now):
            return True, 0.0
        return False, bucket.retry_after()

    def usage(self) -> Dict[str, Dict[str, float]]:
        """Per-client usage for ``/v1/metrics``."""
        return {
            client: {
                "admitted": bucket.admitted,
                "rejected": bucket.rejected,
                "tokens_left": round(bucket.tokens, 3),
                "burst": bucket.burst,
                "rate": bucket.rate,
            }
            for client, bucket in sorted(self.buckets.items())
        }
