"""Ablations: mitigation ladder and design-space sweeps.

* :mod:`repro.ablations.mitigations` -- the pre-existing mitigations of
  Section 2.3 re-evaluated with the Table 4 harness (ASIDs 10/24, Sanctum
  or SGX-style flush-on-switch 14/24, fully associative 18/24) alongside
  the paper's SP (14/24) and RF (24/24) designs;
* :mod:`repro.ablations.sweeps` -- the knobs the paper leaves for future
  work: the SP partition split, the RF secure-region size, and the
  replacement policy's effect on the baseline attack.
"""

from .hierarchy import (
    HierarchyResult,
    SweepDesignResult,
    evaluate_hierarchies,
    evaluate_hierarchy,
    evaluate_hierarchy_cell,
    evaluate_sweep_cell,
    format_hierarchy_results,
    format_hierarchy_sweep,
    hierarchy_cells,
    leakage_spec,
    refill_leakage,
    sweep_perf_point,
    sweep_rows,
    sweep_specs,
)
from .large_pages import (
    LargePageResult,
    evaluate_large_pages,
    format_large_page_comparison,
    large_page_cells,
    run_large_page_cell,
)
from .mitigations import (
    MITIGATION_SPECS,
    MitigationResult,
    MitigationSpec,
    evaluate_all_mitigations,
    evaluate_asid_baseline,
    evaluate_flush_on_switch,
    evaluate_fully_associative,
    format_mitigation_ladder,
    mitigation_cells,
    run_mitigation_cell,
)
from .sweeps import (
    PartitionPoint,
    PolicyPoint,
    RegionPoint,
    WalkLatencyPoint,
    replacement_policy_point,
    rf_region_point,
    sp_partition_point,
    sweep_walk_latency,
    format_partition_sweep,
    format_region_sweep,
    sweep_replacement_policy,
    sweep_rf_region,
    sweep_sp_partition,
    walk_latency_point,
)

__all__ = [
    "HierarchyResult",
    "SweepDesignResult",
    "LargePageResult",
    "MITIGATION_SPECS",
    "MitigationResult",
    "MitigationSpec",
    "PartitionPoint",
    "PolicyPoint",
    "RegionPoint",
    "evaluate_all_mitigations",
    "evaluate_hierarchies",
    "evaluate_hierarchy",
    "evaluate_hierarchy_cell",
    "evaluate_sweep_cell",
    "evaluate_asid_baseline",
    "evaluate_large_pages",
    "evaluate_flush_on_switch",
    "evaluate_fully_associative",
    "format_hierarchy_results",
    "format_hierarchy_sweep",
    "format_large_page_comparison",
    "format_mitigation_ladder",
    "format_partition_sweep",
    "format_region_sweep",
    "hierarchy_cells",
    "large_page_cells",
    "leakage_spec",
    "refill_leakage",
    "sweep_perf_point",
    "sweep_rows",
    "sweep_specs",
    "mitigation_cells",
    "replacement_policy_point",
    "rf_region_point",
    "run_large_page_cell",
    "run_mitigation_cell",
    "sp_partition_point",
    "sweep_replacement_policy",
    "sweep_rf_region",
    "sweep_sp_partition",
    "sweep_walk_latency",
    "walk_latency_point",
    "WalkLatencyPoint",
]
