"""Appendix A: reduction of beta-step (beta > 3) patterns to three steps.

The paper argues the three-step model is sound: any attack sequence of
memory-page-related operations, however long, either contains an effective
three-step vulnerability or contains none at all.  Algorithm 1 makes the
argument constructive with four rules:

* **Rule 1** -- a ``*`` in the middle splits the pattern in two (the
  attacker loses track of the block state, so everything before the star is
  a separate, shorter pattern); a trailing ``*`` is deleted.
* **Rule 2** -- a coarse invalidation in the middle likewise splits the
  pattern (it can only serve as the Step 1 "flush" of the second half); a
  trailing coarse invalidation is deleted.
* **Rule 3** -- two adjacent secret operations, or two adjacent known
  operations, collapse to the later one (the resulting block state is the
  same), until secret and known operations strictly alternate.
* **Rule 4** -- scan the now-alternating segments for embedded three-step
  windows; the pattern is effective iff some window is an effective
  vulnerability per the Table 2 derivation.

This module implements the algorithm over arbitrary-length state sequences
and is exercised by property-based tests: reducing a random long pattern and
checking effectiveness must agree with brute-force windowing semantics.
"""

from __future__ import annotations

from typing import List, Sequence

from . import effectiveness
from .patterns import ThreeStepPattern, Vulnerability
from .states import AddressClass, Operation, STAR, State


def _split_on(
    steps: Sequence[State], should_split: callable
) -> List[List[State]]:
    """Split ``steps`` into segments at (and including, as the new Step 1)
    every state for which ``should_split`` holds, except in position 0."""
    segments: List[List[State]] = []
    current: List[State] = []
    for index, state in enumerate(steps):
        if index > 0 and should_split(state) and current:
            segments.append(current)
            current = [state]
        else:
            current.append(state)
    if current:
        segments.append(current)
    return segments


def rule1_split_at_stars(steps: Sequence[State]) -> List[List[State]]:
    """Split at interior stars; delete a trailing star."""
    segments = _split_on(steps, lambda state: state.is_star)
    cleaned = []
    for segment in segments:
        while segment and segment[-1].is_star:
            segment = segment[:-1]
        if segment:
            cleaned.append(segment)
    return cleaned


def rule2_split_at_flushes(steps: Sequence[State]) -> List[List[State]]:
    """Split at interior coarse invalidations; delete a trailing one."""
    def is_flush(state: State) -> bool:
        return state.operation is Operation.INVALIDATE_ALL

    segments = _split_on(steps, is_flush)
    cleaned = []
    for segment in segments:
        while segment and is_flush(segment[-1]):
            segment = segment[:-1]
        if segment:
            cleaned.append(segment)
    return cleaned


def rule3_collapse_adjacent(steps: Sequence[State]) -> List[State]:
    """Collapse runs of adjacent secret (or adjacent known) operations.

    Two adjacent operations of the same knowledge class leave the block in a
    state determined by the later one, so only the later one matters.  After
    this rule, secret and known operations strictly alternate.
    """
    collapsed: List[State] = []
    for state in steps:
        if collapsed:
            previous = collapsed[-1]
            same_class = (
                (previous.is_secret and state.is_secret)
                or (previous.is_known and state.is_known)
            )
            if same_class:
                collapsed[-1] = state
                continue
        collapsed.append(state)
    return collapsed


def canonicalize_alias(pattern: ThreeStepPattern) -> ThreeStepPattern:
    """Apply rule 5's alias symmetry to put a pattern in Table 2 form.

    ``a`` and ``a_alias`` are interchangeable labels for two known in-range
    pages that map to the same block, so the attack is invariant under
    swapping their roles.  Table 2's convention keeps alias states in Step 1
    only: a pattern that references the alias but never ``a`` is renamed to
    use ``a``, and a pattern with an alias in Step 2 or 3 has the two roles
    swapped everywhere.
    """
    classes = {step.address for step in pattern.steps}
    if AddressClass.A_ALIAS not in classes:
        return pattern

    if AddressClass.A not in classes:
        swap = {AddressClass.A_ALIAS: AddressClass.A}
    elif pattern.step2.is_alias or pattern.step3.is_alias:
        swap = {
            AddressClass.A_ALIAS: AddressClass.A,
            AddressClass.A: AddressClass.A_ALIAS,
        }
    else:
        return pattern

    renamed = tuple(
        State(step.actor, step.operation, swap.get(step.address, step.address))
        for step in pattern.steps
    )
    return ThreeStepPattern(renamed)


def rule4_effective_windows(steps: Sequence[State]) -> List[Vulnerability]:
    """All effective three-step windows embedded in an alternating segment.

    Windows are canonicalized under the alias symmetry (rule 5) so reported
    vulnerabilities are Table 2 rows.  A segment shorter than three steps is
    padded with a leading star (the paper's convention for two-step attacks)
    before checking; such patterns are never effective, matching the
    beta <= 2 analysis of Appendix A.
    """
    padded = list(steps)
    while len(padded) < 3:
        padded.insert(0, STAR)
    found = []
    for start in range(len(padded) - 2):
        window = canonicalize_alias(
            ThreeStepPattern(tuple(padded[start : start + 3]))
        )
        vulnerability = effectiveness.analyze(window)
        if vulnerability is not None:
            found.append(vulnerability)
    return found


def reduce_pattern(steps: Sequence[State]) -> List[List[State]]:
    """Run Rules 1-3 of Algorithm 1, returning the alternating segments."""
    if not steps:
        return []
    segments: List[List[State]] = [list(steps)]
    # Rules 1 and 2 can expose each other's trailing states (e.g. deleting a
    # trailing flush can leave a trailing star), so iterate to a fixpoint as
    # Algorithm 1's "recursively checked" wording requires.
    while True:
        next_segments: List[List[State]] = []
        for segment in segments:
            for split1 in rule1_split_at_stars(segment):
                next_segments.extend(rule2_split_at_flushes(split1))
        if next_segments == segments:
            break
        segments = next_segments
    return [rule3_collapse_adjacent(segment) for segment in segments]


def effective_vulnerabilities(steps: Sequence[State]) -> List[Vulnerability]:
    """Algorithm 1: the effective vulnerabilities a beta-step pattern maps to.

    Empty iff the pattern cannot be used as a timing attack.
    """
    found: List[Vulnerability] = []
    for segment in reduce_pattern(steps):
        found.extend(rule4_effective_windows(segment))
    return found


def is_effective(steps: Sequence[State]) -> bool:
    """True iff the beta-step pattern reduces to >= 1 effective three-step."""
    return bool(effective_vulnerabilities(steps))


def reduced_length(steps: Sequence[State]) -> int:
    """Total number of steps remaining after Rules 1-3 (for analyses)."""
    return sum(len(segment) for segment in reduce_pattern(steps))
