"""Tests for the Double-Page-Fault-style internal-collision scan."""

import pytest

from repro.attacks import probe_candidate, scan_secret_page
from repro.mmu import PageTableWalker
from repro.security.kinds import TLBKind
from repro.tlb import SetAssociativeTLB, TLBConfig


class TestProbePrimitive:
    def test_collision_detected(self):
        tlb = SetAssociativeTLB(TLBConfig(entries=32, ways=8))
        walker = PageTableWalker(auto_map=True)
        assert probe_candidate(tlb, walker, secret_vpn=0x101, candidate_vpn=0x101)

    def test_non_collision_not_detected(self):
        tlb = SetAssociativeTLB(TLBConfig(entries=32, ways=8))
        walker = PageTableWalker(auto_map=True)
        assert not probe_candidate(
            tlb, walker, secret_vpn=0x101, candidate_vpn=0x102
        )


class TestScan:
    @pytest.mark.parametrize("offset", [0, 1, 2])
    def test_sa_recovers_every_secret_position(self, offset):
        result = scan_secret_page(TLBKind.SA, secret_offset=offset)
        assert result.correct
        assert result.hits == [result.secret_vpn]

    def test_sp_does_not_stop_internal_collisions(self):
        # Section 5.3.1: internal hit-based rows defeat partitioning.
        result = scan_secret_page(TLBKind.SP, secret_offset=1)
        assert result.correct

    def test_rf_breaks_the_scan(self):
        # The secret access installs a *random* region page, so over seeds
        # the scan recovers the true page no better than chance.
        correct = sum(
            scan_secret_page(TLBKind.RF, secret_offset=1, seed=seed).correct
            for seed in range(30)
        )
        assert correct < 20  # chance is ~1/3 over a 3-page region

    def test_rf_answers_are_uniformly_spread(self):
        recovered = [
            scan_secret_page(TLBKind.RF, secret_offset=0, seed=seed).recovered
            for seed in range(45)
        ]
        observed = {page for page in recovered if page is not None}
        assert len(observed) >= 2  # not pinned to the secret

    def test_invalid_offset_rejected(self):
        with pytest.raises(ValueError):
            scan_secret_page(TLBKind.SA, secret_offset=5, region_pages=3)
