"""A TLB covert channel and its empirical capacity.

Section 3.1 notes every side channel doubles as a covert channel: the
victim becomes a cooperating *sender*.  This module builds the highest-rate
variant from Table 2 -- Prime + Probe -- as a covert channel: per bit, the
receiver primes a TLB set, the sender touches a page mapping to that set
to send 1 (or stays idle for 0), and the receiver probes.

The empirical error probabilities plug straight into Equation 1, linking
the end-to-end experiment back to the channel-capacity framework of
Section 5.2: the standard TLB carries ~1 bit per symbol, the SP TLB and RF
TLB drive the measured capacity to ~0.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.model.capacity import channel_capacity
from repro.mmu import make_walker
from repro.security.kinds import TLBKind, make_tlb
from repro.sim.events import EventBus
from repro.sim.probe import SetProber
from repro.sim.system import MemorySystem
from repro.tlb import RandomFillTLB, TLBConfig

SENDER_ASID = 1  # The "victim" role: the protected process.
RECEIVER_ASID = 2

SIGNAL_BASE = 0x100  # The sender's page region (RF secure region).
PROBE_BASE = 0x600


@dataclass(frozen=True)
class CovertChannelResult:
    """Transmission statistics for one message."""

    sent: str
    received: str
    kind: TLBKind
    cycles: int

    @property
    def bit_error_rate(self) -> float:
        if not self.sent:
            return 0.0
        errors = sum(1 for a, b in zip(self.sent, self.received) if a != b)
        return errors / len(self.sent)

    @property
    def bits_per_kilocycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return 1000.0 * len(self.sent) / self.cycles

    def empirical_capacity(self) -> float:
        """Per-symbol mutual information from the observed error pattern.

        ``p1``/``p2`` are estimated as the probability of the receiver
        reading 1 given the sender sent 1 / sent 0 (Table 3's structure with
        "miss" = "read 1").
        """
        ones = [i for i, bit in enumerate(self.sent) if bit == "1"]
        zeros = [i for i, bit in enumerate(self.sent) if bit == "0"]
        if not ones or not zeros:
            raise ValueError("need both symbols to estimate the capacity")
        p1 = sum(1 for i in ones if self.received[i] == "1") / len(ones)
        p2 = sum(1 for i in zeros if self.received[i] == "1") / len(zeros)
        return channel_capacity(p1, p2)


def transmit(
    bits: str,
    kind: TLBKind = TLBKind.SA,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    monitored_set: int = 0,
    seed: int = 0,
    bus: Optional[EventBus] = None,
) -> CovertChannelResult:
    """Send ``bits`` over the Prime + Probe covert channel."""
    if not bits or any(bit not in "01" for bit in bits):
        raise ValueError("message must be a non-empty string of 0s and 1s")
    tlb = make_tlb(
        kind,
        config,
        victim_asid=SENDER_ASID,
        victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
        rng=random.Random(seed),
    )
    nsets = config.sets
    signal_page = SIGNAL_BASE - (SIGNAL_BASE % nsets) + monitored_set
    if isinstance(tlb, RandomFillTLB):
        # The sender's signalling region is "secure" -- the scenario where
        # the defence must break the channel.
        tlb.set_secure_region(signal_page, nsets, victim_asid=SENDER_ASID)
    memory = MemorySystem(tlb, make_walker(), bus=bus)
    receiver = SetProber.for_set(
        memory, PROBE_BASE, monitored_set, RECEIVER_ASID, nsets, config.ways
    )

    # Sending 0 accesses a different-set page rather than idling: Table 3's
    # binary behaviours are "maps to the tested block" vs "does not", which
    # is what the RF TLB's randomization equalizes.
    zero_page = signal_page + 1

    received: List[str] = []
    for bit in bits:
        receiver.prime()
        # Sender signals.
        sender_page = signal_page if bit == "1" else zero_page
        memory.translate(sender_page, SENDER_ASID)
        received.append("1" if receiver.probe().evicted else "0")
    return CovertChannelResult(
        sent=bits, received="".join(received), kind=kind, cycles=memory.cycles
    )


def random_message(length: int, seed: int = 1) -> str:
    """A balanced random test message."""
    rng = random.Random(seed)
    return "".join(rng.choice("01") for _ in range(length))


def parallel_transmit(
    bits: str,
    kind: TLBKind = TLBKind.SA,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
    bus: Optional[EventBus] = None,
) -> CovertChannelResult:
    """Several covert-channel bits per prime/probe round.

    TLBleed monitors many sets in parallel; the covert-channel analogue
    uses *differential lanes*: each lane owns a pair of TLB sets, the
    sender touches the pair's first set for 1 and its second for 0, and
    the receiver decodes by comparing the two sets' probe misses.  The
    pairing keeps lanes from interfering (every send lands in exactly one
    lane's sets).  A 4-set TLB carries 2 bits per round; the message is
    padded to whole rounds with zeros.

    The differential pairing spends two sets per bit, so the raw
    access-count throughput is no better than the serial channel's; its
    value is needing ``lanes``-fold fewer sender/receiver synchronization
    rounds, which is what dominates a real cross-process channel.
    """
    if not bits or any(bit not in "01" for bit in bits):
        raise ValueError("message must be a non-empty string of 0s and 1s")
    nsets = config.sets
    lanes = nsets // 2
    if lanes < 1:
        raise ValueError("the parallel channel needs at least two TLB sets")
    tlb = make_tlb(
        kind,
        config,
        victim_asid=SENDER_ASID,
        victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
        rng=random.Random(seed),
    )
    if isinstance(tlb, RandomFillTLB):
        tlb.set_secure_region(
            SIGNAL_BASE - (SIGNAL_BASE % nsets), nsets, victim_asid=SENDER_ASID
        )
    memory = MemorySystem(tlb, make_walker(), bus=bus)

    signal_base = SIGNAL_BASE - (SIGNAL_BASE % nsets)
    # Lane i signals in sets 2i (bit 1) / 2i+1 (bit 0).
    probers = [
        SetProber.for_set(
            memory, PROBE_BASE, set_index, RECEIVER_ASID, nsets, config.ways
        )
        for set_index in range(nsets)
    ]

    padded = bits + "0" * ((-len(bits)) % lanes)
    received = []
    for round_start in range(0, len(padded), lanes):
        symbols = padded[round_start : round_start + lanes]
        for prober in probers:
            prober.prime()
        for lane, bit in enumerate(symbols):
            set_index = 2 * lane + (0 if bit == "1" else 1)
            memory.translate(signal_base + set_index, SENDER_ASID)
        for lane, _bit in enumerate(symbols):
            counts = [
                probers[set_index].probe().misses
                for set_index in (2 * lane, 2 * lane + 1)
            ]
            received.append("1" if counts[0] >= counts[1] else "0")
    return CovertChannelResult(
        sent=padded,
        received="".join(received),
        kind=kind,
        cycles=memory.cycles,
    )
