"""Shared TLB machinery: lookup, flush, invalidation, and the fill hook.

Every design (standard SA/FA, Static-Partition, Random-Fill) shares the same
hit path -- a hit requires matching page number *and* process ID -- and the
same maintenance operations; the designs differ only in how a miss is
handled.  :class:`BaseTLB` implements the common template and defers the
miss to :meth:`BaseTLB._handle_miss`.

Translations come from a *translator* (the page-table walker in the full
system; tests use :class:`IdentityTranslator`).  The walker reports its
latency so the TLB can expose the fast/slow timing the attacks measure.

Lookups are backed by a *fast index*: a dict from ``(tag, asid, level)``
to the resident entry, maintained alongside ``_sets`` by every fill,
eviction, flush and invalidation (the coherence invariant
:meth:`BaseTLB.audit` checks).  The index turns the per-access way scan
into at most three dict probes -- one per superpage level -- and backs the
allocation-free :meth:`BaseTLB.translate_fast` kernel used by the trace
simulator (see :mod:`repro.sim.kernel`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from .config import TLBConfig
from .entry import TLBEntry
from .replacement import ReplacementPolicy, make_policy
from .stats import TLBStats


@dataclass(frozen=True)
class WalkResult:
    """A page-table walk's outcome: the physical page and its latency.

    ``level`` reports the leaf's superpage level (0 = 4 KiB): superpage
    walks touch fewer radix levels and their translations cover a whole
    aligned region in the TLB.
    """

    ppn: int
    cycles: int
    level: int = 0


class Translator(Protocol):
    """Anything that can resolve a (vpn, asid) to a physical page."""

    def walk(self, vpn: int, asid: int) -> WalkResult:  # pragma: no cover
        ...


class IdentityTranslator:
    """A trivial translator mapping every page to itself.

    Used by unit tests and the security benchmarks, where only hit/miss
    behaviour matters; the full system uses :class:`repro.mmu.walker`.
    """

    def __init__(self, cycles: int = 30) -> None:
        self.cycles = cycles
        self.walks = 0

    def walk(self, vpn: int, asid: int) -> WalkResult:
        self.walks += 1
        return WalkResult(ppn=vpn, cycles=self.cycles)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one translation request."""

    hit: bool
    ppn: int
    #: Total latency in cycles: the architectural timing the attacker sees.
    cycles: int
    #: The valid entry displaced by this access's fill, if any.
    evicted: Optional[TLBEntry] = None
    #: Whether the *requested* translation was inserted into the TLB.  The
    #: Random-Fill TLB returns secure-region translations through its buffer
    #: without filling (Section 4.2.1), in which case this is False.
    filled: bool = True

    @property
    def miss(self) -> bool:
        return not self.hit


class BaseTLB(abc.ABC):
    """Template for all TLB designs."""

    def __init__(self, config: TLBConfig, name: str = "tlb") -> None:
        self.config = config
        self.name = name
        self.stats = TLBStats()
        self._policy: ReplacementPolicy = make_policy(config.replacement)
        self._clock = 0
        self._sets: List[List[TLBEntry]] = [
            [TLBEntry() for _way in range(config.ways)]
            for _set in range(config.sets)
        ]
        #: Fast lookup index: (tag, asid, level) -> the resident entry.
        #: Coherent with ``_sets`` at every step (see the module doc); a
        #: clean TLB has exactly one index key per valid entry.
        self._index: Dict[Tuple[int, int, int], TLBEntry] = {}
        #: Count of valid superpage (level > 0) entries: lets the fast
        #: path skip the level-1/2 index probes entirely for the common
        #: all-4KiB case.
        self._super_entries = 0
        #: Precomputed hit return value for :meth:`translate_fast`
        #: (cycles << 2 | hit bit; a hit never fills).
        self._hit_packed = (config.hit_latency << 2) | 0b10

    # -- the shared hit path ---------------------------------------------------

    def translate(self, vpn: int, asid: int, translator: Translator) -> AccessResult:
        """Translate one page access, updating state and statistics."""
        self._clock += 1
        entry = self._find(vpn, asid)
        if entry is not None:
            entry.touch(self._clock)
            self.stats.record_access(hit=True, asid=asid)
            # A hit inserts nothing: the entry was already resident (it may
            # even be a *random* fill's, never the requested translation).
            return AccessResult(
                hit=True,
                ppn=entry.translate(vpn),
                cycles=self.config.hit_latency,
                filled=False,
            )
        self.stats.record_access(hit=False, asid=asid)
        return self._handle_miss(vpn, asid, translator)

    def translate_fast(self, vpn: int, asid: int, translator: Translator) -> int:
        """Allocation-free translate: ``cycles << 2 | hit << 1 | filled``.

        Architecturally identical to :meth:`translate` -- same clock, LRU,
        statistics, fills and evictions -- but the hit path builds no
        :class:`AccessResult` (and, driven through
        :meth:`repro.sim.MemorySystem.translate_fast`, no events), which
        is what the batched trace simulator runs millions of times.  The
        miss path still goes through the design's :meth:`_handle_miss`,
        so the four fill policies stay implemented exactly once.
        """
        self._clock += 1
        # Inlined level-0 probe (the overwhelmingly common case).  The
        # guard is exactly ``entry.matches(vpn, asid)`` for equal VPNs --
        # an entry whose own vpn/asid equal the request's covers it at any
        # level -- so index corruption can still only cause a spurious
        # miss, never a false hit.
        entry = self._index.get((vpn, asid, 0))
        if (
            entry is not None
            and entry.valid
            and entry.vpn == vpn
            and entry.asid == asid
        ):
            entry.last_used = self._clock
            stats = self.stats
            stats.accesses += 1
            stats.hits += 1
            return self._hit_packed
        if self._super_entries:
            entry = self._find(vpn, asid)
            if entry is not None:
                entry.last_used = self._clock
                stats = self.stats
                stats.accesses += 1
                stats.hits += 1
                return self._hit_packed
        self.stats.record_access(hit=False, asid=asid)
        result = self._handle_miss(vpn, asid, translator)
        return (result.cycles << 2) | (1 if result.filled else 0)

    #: Set by the Random-Fill TLB: its one-entry no-fill ``buffer`` must be
    #: cleaned at the start of every request, including batched ones.
    _NOFILL_BUFFER = False

    def translate_slice(
        self, vpns, start: int, stop: int, asid: int, translator: Translator
    ) -> Tuple[int, int]:
        """Batched :meth:`translate_fast` over ``vpns[start:stop]``.

        Returns ``(total_cycles, misses)``.  The batch form exists for the
        trace-driven quantum loop: state (clock, index, hit counters) is
        hoisted into locals across the hit run and synced back around
        every miss, so the common all-hit stretch costs one dict probe and
        a handful of local operations per access.  State transitions and
        statistics are identical to ``stop - start`` single calls.
        """
        index = self._index
        stats = self.stats
        clock = self._clock
        hit_cycles = self.config.hit_latency
        clear_buffer = self._NOFILL_BUFFER
        hits = 0
        misses = 0
        total_cycles = 0
        i = start
        while i < stop:
            vpn = vpns[i]
            i += 1
            clock += 1
            if clear_buffer:
                self.buffer = None
            entry = index.get((vpn, asid, 0))
            if (
                entry is not None
                and entry.valid
                and entry.vpn == vpn
                and entry.asid == asid
            ):
                entry.last_used = clock
                hits += 1
                total_cycles += hit_cycles
                continue
            # Sync the hoisted state, take the ordinary superpage-probe /
            # miss path, then continue the batch.
            self._clock = clock
            stats.accesses += hits
            stats.hits += hits
            hits = 0
            found = self._find(vpn, asid) if self._super_entries else None
            if found is not None:
                found.last_used = clock
                stats.accesses += 1
                stats.hits += 1
                total_cycles += hit_cycles
                continue
            stats.record_access(hit=False, asid=asid)
            result = self._handle_miss(vpn, asid, translator)
            total_cycles += result.cycles
            misses += 1
        self._clock = clock
        stats.accesses += hits
        stats.hits += hits
        return total_cycles, misses

    @abc.abstractmethod
    def _handle_miss(
        self, vpn: int, asid: int, translator: Translator
    ) -> AccessResult:
        """Design-specific miss handling (fill policy)."""

    # -- lookup helpers ---------------------------------------------------------

    #: Superpage levels a lookup probes (Sv39: 4 KiB, 2 MiB, 1 GiB).
    _LEVELS = (0, 1, 2)

    def _set_for(self, vpn: int, level: int = 0) -> List[TLBEntry]:
        return self._sets[self.config.set_index_for_level(vpn, level)]

    def _find(self, vpn: int, asid: int) -> Optional[TLBEntry]:
        """The resident entry covering ``(vpn, asid)``, via the fast index.

        One dict probe per superpage level, cheapest first.  The
        ``matches`` re-check keeps the lookup honest even if the index has
        been corrupted behind the TLB's back (the fault injector does
        exactly that): a stale or mispointed slot can cause a spurious
        miss -- which refills, and the refill plus :meth:`audit` expose the
        corruption -- but never a false hit.
        """
        index = self._index
        entry = index.get((vpn, asid, 0))
        if entry is not None and entry.matches(vpn, asid):
            return entry
        entry = index.get((vpn >> 9, asid, 1))
        if entry is not None and entry.matches(vpn, asid):
            return entry
        entry = index.get((vpn >> 18, asid, 2))
        if entry is not None and entry.matches(vpn, asid):
            return entry
        return None

    def resident(self, vpn: int, asid: int) -> bool:
        """Introspection for tests/harnesses: is the translation cached?"""
        return self._find(vpn, asid) is not None

    def entries(self) -> List[TLBEntry]:
        """All valid entries (copies), for inspection."""
        return [
            entry.snapshot()
            for tlb_set in self._sets
            for entry in tlb_set
            if entry.valid
        ]

    def occupancy(self) -> int:
        return sum(
            1 for tlb_set in self._sets for entry in tlb_set if entry.valid
        )

    def audit(self) -> List[str]:
        """Structural self-check; returns human-readable violations.

        The paper's security argument assumes the TLB state machine holds
        its structural invariants at every step; this is the programmatic
        form of the ``tests/tlb/test_invariants`` suite, callable against a
        *live* (possibly fault-injected) instance: every valid entry must
        sit in the set its VPN indexes to, and no set may hold two entries
        answering the same (tag, ASID) lookup.  A clean simulator returns
        ``[]`` always; the :mod:`repro.faults` detectors rely on seeded
        corruption making this non-empty.
        """
        problems: List[str] = []
        for index, tlb_set in enumerate(self._sets):
            seen: dict = {}
            for entry in tlb_set:
                if not entry.valid:
                    continue
                expected = self.config.set_index_for_level(
                    entry.vpn, entry.level
                )
                if expected != index:
                    problems.append(
                        f"entry vpn={entry.vpn:#x} asid={entry.asid} sits in"
                        f" set {index}, indexes to set {expected}"
                    )
                lookup = (entry._tag(entry.vpn), entry.asid, entry.level)
                if lookup in seen:
                    problems.append(
                        f"duplicate entries for vpn={entry.vpn:#x}"
                        f" asid={entry.asid} in set {index}"
                    )
                seen[lookup] = entry
        if self.occupancy() > self.config.entries:
            problems.append(
                f"occupancy {self.occupancy()} exceeds capacity"
                f" {self.config.entries}"
            )
        problems.extend(self._audit_index())
        return problems

    def _audit_index(self) -> List[str]:
        """Cross-check the fast index against ``_sets`` (both directions).

        Every valid entry must be indexed under its own key, and every
        index slot must point at the valid entry that owns its key -- the
        coherence invariant the fill/evict/flush/invalidate paths
        maintain.  A stale slot (entry evicted behind the TLB's back) or a
        mispointed one (index corruption) is silent-corruption surface the
        chaos campaign's ``tlb-audit`` detector must see.
        """
        problems: List[str] = []
        for tlb_set in self._sets:
            for entry in tlb_set:
                if entry.valid and self._index.get(entry.index_key()) is not entry:
                    problems.append(
                        f"valid entry vpn={entry.vpn:#x} asid={entry.asid}"
                        " is missing from the fast index (or its key points"
                        " at another entry)"
                    )
        for key, entry in self._index.items():
            if not entry.valid:
                problems.append(
                    f"fast-index key {key} points at an invalid entry"
                    " (stale mapping after an evict/flush)"
                )
            elif entry.index_key() != key:
                problems.append(
                    f"fast-index key {key} points at entry"
                    f" vpn={entry.vpn:#x} asid={entry.asid} whose own key is"
                    f" {entry.index_key()}"
                )
        return problems

    # -- fill helper shared by the designs ---------------------------------------

    def _fill_entry(
        self,
        victim: TLBEntry,
        vpn: int,
        ppn: int,
        asid: int,
        sec: bool = False,
        level: int = 0,
    ) -> Optional[TLBEntry]:
        """Install a translation into ``victim``; return the displaced entry."""
        evicted = victim.snapshot() if victim.valid else None
        if evicted is not None:
            self.stats.evictions += 1
            self._index.pop(victim.index_key(), None)
            if victim.level:
                self._super_entries -= 1
        victim.fill(vpn, ppn, asid, now=self._clock, sec=sec, level=level)
        self._index[victim.index_key()] = victim
        if level:
            self._super_entries += 1
        self.stats.fills += 1
        return evicted

    def _invalidate_entry(self, entry: TLBEntry) -> None:
        """Invalidate one resident entry, keeping the fast index coherent.

        Every invalidation inside the TLB must go through here (or a
        flush): ``entry.invalidate()`` alone would leave a stale index
        mapping -- exactly the corruption :meth:`audit` exists to catch.
        """
        if entry.valid:
            self._index.pop(entry.index_key(), None)
            if entry.level:
                self._super_entries -= 1
        entry.invalidate()

    # -- maintenance operations ---------------------------------------------------

    def flush_all(self) -> None:
        """Full flush (``sfence.vma`` with no operands / context switch)."""
        for tlb_set in self._sets:
            for entry in tlb_set:
                entry.invalidate()
        self._index.clear()
        self._super_entries = 0
        self.stats.flushes += 1

    def flush_asid(self, asid: int) -> None:
        """Flush every entry belonging to one process."""
        for tlb_set in self._sets:
            for entry in tlb_set:
                if entry.valid and entry.asid == asid:
                    self._invalidate_entry(entry)
        self.stats.flushes += 1

    def invalidate_page(self, vpn: int, asid: int) -> AccessResult:
        """Targeted invalidation of one translation (Appendix B semantics).

        Returns an :class:`AccessResult` whose ``cycles`` exposes the
        presence-dependent timing: invalidating a resident entry takes a
        second cycle (slow); invalidating an absent one completes in the
        probe cycle (fast).  ``hit`` reports whether the entry was present.
        """
        self._clock += 1
        self.stats.invalidations += 1
        entry = self._find(vpn, asid)
        if entry is None:
            return AccessResult(
                hit=False, ppn=0, cycles=self.config.hit_latency, filled=False
            )
        self.stats.invalidation_hits += 1
        ppn = entry.translate(vpn)
        self._invalidate_entry(entry)
        return AccessResult(
            hit=True,
            ppn=ppn,
            cycles=self.config.hit_latency + 1,
            filled=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.config.label()} "
            f"occupancy={self.occupancy()}/{self.config.entries}>"
        )
