"""Workloads for the performance evaluation (Section 6.2).

* :mod:`repro.workloads.rsa` -- genuine RSA (Miller-Rabin keygen, traced
  square-and-multiply mirroring libgcrypt's Figure 5 access pattern);
* :mod:`repro.workloads.spec` -- synthetic page-trace generators calibrated
  to the four TLB-intensive SPEC 2006 benchmarks;
* :mod:`repro.workloads.trace` -- the (gap, vpn) trace interface consumed
  by the timing model.
"""

from .ecc import (
    BASE_POINT,
    Curve,
    ECCBuffers,
    ECCWorkload,
    TOY_CURVE,
    TracedScalarMult,
    random_scalar,
)
from .rsa import (
    CodePages,
    MPIBuffers,
    RSAKey,
    RSAWorkload,
    TracedModExp,
    generate_key,
    generate_prime,
    is_probable_prime,
)
from .spec import (
    CACTUSADM,
    OMNETPP,
    POVRAY,
    SPEC_BENCHMARKS,
    SpecProfile,
    XALANCBMK,
    by_name,
)
from .trace import MemoryEvent, TraceStats, Workload, collect

__all__ = [
    "BASE_POINT",
    "CACTUSADM",
    "Curve",
    "ECCBuffers",
    "ECCWorkload",
    "TOY_CURVE",
    "TracedScalarMult",
    "CodePages",
    "MPIBuffers",
    "MemoryEvent",
    "OMNETPP",
    "POVRAY",
    "RSAKey",
    "RSAWorkload",
    "SPEC_BENCHMARKS",
    "SpecProfile",
    "TraceStats",
    "TracedModExp",
    "Workload",
    "XALANCBMK",
    "by_name",
    "collect",
    "generate_key",
    "random_scalar",
    "generate_prime",
    "is_probable_prime",
]
