"""Trace and stats observers, and the shared JSONL writer."""

from __future__ import annotations

import io
import json

from repro.mmu import PageTableWalker, SwitchPolicy
from repro.sim import (
    EventBus,
    JsonlWriter,
    MemorySystem,
    StatsObserver,
    TraceObserver,
)
from repro.tlb import SetAssociativeTLB, TLBConfig


def build(bus: EventBus, policy=SwitchPolicy.FLUSH_ALL) -> MemorySystem:
    tlb = SetAssociativeTLB(TLBConfig(entries=8, ways=2))
    return MemorySystem(
        tlb, PageTableWalker(auto_map=True), switch_policy=policy, bus=bus
    )


def drive(memory: MemorySystem) -> None:
    memory.context_switch(1)
    memory.translate(0x10, 1)  # miss
    memory.translate(0x10, 1)  # hit
    memory.context_switch(2)  # switch + flush
    memory.translate(0x20, 2)  # miss
    memory.invalidate_page(0x20, 2)


def test_trace_observer_emits_valid_jsonl(tmp_path) -> None:
    bus = EventBus()
    path = tmp_path / "trace.jsonl"
    with TraceObserver(path) as trace:
        trace.subscribe(bus)
        drive(build(bus))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [record["event"] for record in records] == [
        "access", "walk", "fill",     # first miss
        "access",                      # hit
        "context_switch", "flush",     # FLUSH_ALL switch
        "access", "walk", "fill",      # post-flush miss
        "flush",                       # targeted invalidation
    ]
    assert [record["seq"] for record in records] == list(range(len(records)))
    first = records[0]
    assert first["vpn"] == 0x10 and first["hit"] is False
    assert records[-1]["scope"] == "page" and records[-1]["present"] is True


def test_trace_observer_accepts_open_handles() -> None:
    bus = EventBus()
    sink = io.StringIO()
    trace = TraceObserver(sink).subscribe(bus)
    build(bus).translate(0x10, 1)
    trace.close()
    lines = sink.getvalue().splitlines()
    assert len(lines) == 3
    assert json.loads(lines[0])["event"] == "access"
    assert not sink.closed  # Borrowed handles are not closed.


def test_stats_observer_aggregates_by_type_and_asid() -> None:
    bus = EventBus()
    stats = StatsObserver().subscribe(bus)
    memory = build(bus)
    drive(memory)
    assert stats.accesses == 3
    assert stats.hits == 1 and stats.misses == 2
    assert stats.walks == 2 and stats.fills == 2
    assert stats.flushes == 2  # The switch flush and the invalidation.
    assert stats.context_switches == 1
    # Invalidation latency is a flush record, not an access's cycles.
    invalidation_cycles = memory.tlb.config.hit_latency + 1
    assert stats.cycles == memory.cycles - invalidation_cycles
    assert set(stats.by_asid) == {1, 2}
    assert stats.by_asid[1].accesses == 2 and stats.by_asid[1].hits == 1
    assert stats.by_asid[2].misses == 1
    summary = stats.summary()
    assert summary["accesses"] == 3 and summary["asids"] == [1, 2]


def test_stats_hit_rate() -> None:
    stats = StatsObserver()
    assert stats.hit_rate == 0.0
    bus = EventBus()
    stats.subscribe(bus)
    memory = build(bus)
    memory.translate(0x10, 1)
    memory.translate(0x10, 1)
    assert stats.hit_rate == 0.5


def test_jsonl_writer_round_trips_and_coerces(tmp_path) -> None:
    path = tmp_path / "deep" / "log.jsonl"
    writer = JsonlWriter(path)  # Parent directories are created.
    writer.write({"event": "x", "value": 1})
    writer.write({"event": "y", "odd": object()})  # default=str coercion
    writer.close()
    lines = path.read_text().splitlines()
    assert json.loads(lines[0]) == {"event": "x", "value": 1}
    assert json.loads(lines[1])["event"] == "y"
