"""The sim detection-matrix campaign: zero silent faults, ever."""

import json

import pytest

from repro.faults import (
    SIM_FAULT_KINDS,
    default_sim_plan,
    run_sim_campaign,
)


class TestSimCampaign:
    @pytest.mark.parametrize("design", ["SA", "SP", "RF"])
    def test_zero_silent_faults(self, design):
        report = run_sim_campaign(design=design)
        assert report.baseline_violations == []
        assert report.silent_faults == []
        assert report.not_injected == []
        assert report.ok

    def test_matrix_covers_every_fault_class(self):
        report = run_sim_campaign()
        assert [row.kind for row in report.rows] == list(SIM_FAULT_KINDS)
        for row in report.rows:
            assert row.injections >= 1
            assert row.detected_by
            assert row.evidence

    def test_report_is_deterministic(self):
        first = run_sim_campaign(seed=5).to_dict()
        second = run_sim_campaign(seed=5).to_dict()
        assert first == second

    def test_report_serializes(self):
        report = run_sim_campaign()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        text = report.to_text()
        assert "verdict: OK" in text
        for kind in SIM_FAULT_KINDS:
            assert kind in text

    def test_explicit_plan_round_trips_through_json(self):
        plan = default_sim_plan(seed=13)
        from repro.faults import FaultPlan

        replayed = run_sim_campaign(
            plan=FaultPlan.from_json(plan.to_json())
        )
        direct = run_sim_campaign(plan=plan)
        assert replayed.to_dict() == direct.to_dict()
