"""The existing mitigations of Section 2.3, evaluated with the harness.

The paper surveys five pre-existing (mostly software) approaches and
credits each with a defence count over the 24 Table 2 rows:

* **ASID-tagged SA TLBs** (today's Linux): 10 of 24 -- already the
  baseline ``TLBKind.SA`` evaluation;
* **Sanctum's security-monitor flush / Intel SGX's enclave-exit flush**:
  flushing the TLB on every protection-domain switch adds the 4 external
  miss-based rows, for 14 of 24;
* **fully associative TLBs**: a single set means miss-based rows carry no
  set-conflict information, for 18 of 24.

This module reproduces those counts by re-running the Table 4 harness
under each mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.model.patterns import Vulnerability
from repro.model.table2 import table2_vulnerabilities
from repro.security.evaluate import (
    EvaluationConfig,
    SecurityEvaluator,
    VulnerabilityResult,
)
from repro.security.kinds import TLBKind
from repro.tlb import fully_associative


@dataclass(frozen=True)
class MitigationResult:
    """One mitigation's measured defence count."""

    name: str
    results: List[VulnerabilityResult]
    paper_claim: int

    @property
    def defended(self) -> int:
        return sum(1 for result in self.results if result.defended)

    @property
    def matches_paper(self) -> bool:
        return self.defended == self.paper_claim


@dataclass(frozen=True)
class MitigationSpec:
    """A ladder rung: how to configure the harness for one mitigation."""

    key: str
    name: str
    paper_claim: int
    kind: TLBKind
    flush_on_switch: bool = False
    #: When set, replace the default TLB organization by a fully
    #: associative one of this many entries.
    fa_entries: Optional[int] = None

    def evaluation_config(self, trials: int) -> EvaluationConfig:
        if self.fa_entries is not None:
            return EvaluationConfig(
                tlb=fully_associative(self.fa_entries), trials=trials
            )
        return EvaluationConfig(
            trials=trials, flush_on_switch=self.flush_on_switch
        )


#: Section 2.3's ladder, plus the paper's own designs for reference,
#: in presentation order.
MITIGATION_SPECS: Tuple[MitigationSpec, ...] = (
    MitigationSpec(
        "asid", "ASID-tagged SA TLB (Linux baseline)", 10, TLBKind.SA
    ),
    MitigationSpec(
        "flush", "SA TLB + flush on switch (Sanctum / SGX)", 14, TLBKind.SA,
        flush_on_switch=True,
    ),
    MitigationSpec(
        "fa", "fully associative 32-entry TLB", 18, TLBKind.SA, fa_entries=32
    ),
    MitigationSpec(
        "sp", "Static-Partition TLB (this paper)", 14, TLBKind.SP
    ),
    MitigationSpec("rf", "Random-Fill TLB (this paper)", 24, TLBKind.RF),
)


def spec_by_key(key: str) -> MitigationSpec:
    for spec in MITIGATION_SPECS:
        if spec.key == key:
            return spec
    raise KeyError(f"unknown mitigation {key!r}")


def mitigation_cells() -> List[Tuple[MitigationSpec, int, Vulnerability]]:
    """The ladder's work-list: one (rung, row) cell per entry.

    Cells are independent (the harness seeds each from its own label), so
    the ladder shards at this granularity under :mod:`repro.runner`.
    """
    rows = table2_vulnerabilities()
    return [
        (spec, index, vulnerability)
        for spec in MITIGATION_SPECS
        for index, vulnerability in enumerate(rows)
    ]


def run_mitigation_cell(
    key: str, vulnerability_index: int, trials: int = 60
) -> VulnerabilityResult:
    """Evaluate one Table 2 row under one mitigation (a pure cell)."""
    spec = spec_by_key(key)
    evaluator = SecurityEvaluator(spec.evaluation_config(trials))
    vulnerability = table2_vulnerabilities()[vulnerability_index]
    return evaluator.evaluate_vulnerability(vulnerability, spec.kind)


def _evaluate_spec(spec: MitigationSpec, trials: int) -> MitigationResult:
    evaluator = SecurityEvaluator(spec.evaluation_config(trials))
    return MitigationResult(
        name=spec.name,
        results=evaluator.evaluate_kind(spec.kind),
        paper_claim=spec.paper_claim,
    )


def evaluate_asid_baseline(trials: int = 60) -> MitigationResult:
    """Standard SA TLB with ASIDs: the paper's 10-of-24 baseline."""
    return _evaluate_spec(spec_by_key("asid"), trials)


def evaluate_flush_on_switch(trials: int = 60) -> MitigationResult:
    """Sanctum/SGX-style full flush on every process switch: 14 of 24."""
    return _evaluate_spec(spec_by_key("flush"), trials)


def evaluate_fully_associative(
    entries: int = 32, trials: int = 60
) -> MitigationResult:
    """A fully associative TLB: miss-based rows lose their signal (18/24).

    With a single set, the victim's secret access contends with *every*
    translation equally, so eviction patterns no longer depend on whether
    ``u`` "maps to the tested block" -- only the 6 hit-based Internal
    Collision rows (exact-address collisions) survive.
    """
    spec = MitigationSpec(
        "fa", f"fully associative {entries}-entry TLB", 18, TLBKind.SA,
        fa_entries=entries,
    )
    return _evaluate_spec(spec, trials)


def evaluate_all_mitigations(trials: int = 60) -> List[MitigationResult]:
    """Section 2.3's ladder, plus the paper's own designs for reference."""
    return [_evaluate_spec(spec, trials) for spec in MITIGATION_SPECS]


def format_mitigation_ladder(results: List[MitigationResult]) -> str:
    lines = [
        f"{'Mitigation':45} {'defended':>9} {'paper':>6}  match",
        "-" * 72,
    ]
    for result in results:
        lines.append(
            f"{result.name:45} {result.defended:>6}/24 {result.paper_claim:>6}  "
            f"{'yes' if result.matches_paper else 'NO'}"
        )
    return "\n".join(lines)
