"""A two-level TLB hierarchy.

Section 4 notes the secure designs "can be applied to instruction TLBs as
well as other levels of TLB"; this module makes that concrete.  The L2 TLB
is wired in as the L1's *translator*: an L1 miss consults the L2 (whose hit
latency stands in for the L2 array access), and only an L2 miss pays the
page-table walk.  Each level keeps its own design logic -- any combination
of SA/SP/RF is expressible -- which lets the hierarchy ablation show the
security consequence: a protected L1 in front of a standard L2 still leaks,
because the victim's translations land in the L2 on the walk path and L2
evictions remain attacker-observable through the miss latency.
"""

from __future__ import annotations

from typing import List, Optional

from .base import AccessResult, BaseTLB, Translator, WalkResult
from .stats import TLBStats


class _LevelAdapter:
    """Presents the next TLB level as a translator for the level above."""

    def __init__(self, next_level: BaseTLB, walker: Translator) -> None:
        self._next_level = next_level
        self._walker = walker

    def walk(self, vpn: int, asid: int) -> WalkResult:
        result = self._next_level.translate(vpn, asid, self._walker)
        return WalkResult(ppn=result.ppn, cycles=result.cycles)


class TwoLevelTLB:
    """An L1 TLB backed by an L2 TLB.

    Implements the same access interface as :class:`BaseTLB` (``translate``
    / ``flush_all`` / ``flush_asid`` / ``invalidate_page`` / ``resident``),
    so it drops into the CPU, the security evaluator (via a TLB factory)
    and the performance harness unchanged.

    ``stats`` exposes the L2's counters, whose ``misses`` are the true
    page-table walks: that is what the benchmarks' ``tlb_miss_count``
    observes, matching a hardware walk counter.  Per-level statistics are
    available as ``l1.stats`` / ``l2.stats``.
    """

    def __init__(self, l1: BaseTLB, l2: BaseTLB, name: str = "two-level") -> None:
        if l1 is l2:
            raise ValueError("L1 and L2 must be distinct TLB instances")
        self.l1 = l1
        self.l2 = l2
        self.name = name
        #: Adapter reused across accesses while the walker stays the same,
        #: so the hot loop does not allocate one per translation.
        self._adapter: Optional[_LevelAdapter] = None

    def _adapter_for(self, translator: Translator) -> _LevelAdapter:
        adapter = self._adapter
        if adapter is None or adapter._walker is not translator:
            adapter = _LevelAdapter(self.l2, translator)
            self._adapter = adapter
        return adapter

    # -- the BaseTLB-compatible surface -----------------------------------------

    @property
    def config(self):
        return self.l1.config

    @property
    def stats(self) -> TLBStats:
        return self.l2.stats

    def translate(self, vpn: int, asid: int, translator: Translator) -> AccessResult:
        return self.l1.translate(vpn, asid, self._adapter_for(translator))

    def translate_fast(self, vpn: int, asid: int, translator: Translator) -> int:
        """Packed-int translate (see :meth:`BaseTLB.translate_fast`).

        Only the L1 hit path is allocation-free; an L1 miss consults the
        L2 through the ordinary adapter, which is already the slow
        (walk-latency) path.
        """
        return self.l1.translate_fast(vpn, asid, self._adapter_for(translator))

    def translate_slice(
        self, vpns, start: int, stop: int, asid: int, translator: Translator
    ):
        """Batched fast path (see :meth:`BaseTLB.translate_slice`)."""
        return self.l1.translate_slice(
            vpns, start, stop, asid, self._adapter_for(translator)
        )

    def flush_all(self) -> None:
        self.l1.flush_all()
        self.l2.flush_all()

    def flush_asid(self, asid: int) -> None:
        self.l1.flush_asid(asid)
        self.l2.flush_asid(asid)

    def invalidate_page(self, vpn: int, asid: int) -> AccessResult:
        """Invalidate in both levels; present if either level held it."""
        first = self.l1.invalidate_page(vpn, asid)
        second = self.l2.invalidate_page(vpn, asid)
        hit = first.hit or second.hit
        return AccessResult(
            hit=hit,
            ppn=first.ppn if first.hit else second.ppn,
            cycles=max(first.cycles, second.cycles),
            filled=False,
        )

    def resident(self, vpn: int, asid: int) -> bool:
        return self.l1.resident(vpn, asid) or self.l2.resident(vpn, asid)

    def entries(self):
        """All valid entries across both levels (copies), for inspection."""
        return self.l1.entries() + self.l2.entries()

    def occupancy(self) -> int:
        return self.l1.occupancy() + self.l2.occupancy()

    def audit(self) -> List[str]:
        """Per-level structural self-check (see :meth:`BaseTLB.audit`)."""
        return [
            f"{label}: {problem}"
            for label, level in (("L1", self.l1), ("L2", self.l2))
            for problem in level.audit()
        ]

    def set_secure_region(
        self, sbase: int, ssize: int, victim_asid: Optional[int] = None
    ) -> None:
        """Forward the RF region registers to whichever levels support them."""
        for level in (self.l1, self.l2):
            if hasattr(level, "set_secure_region"):
                level.set_secure_region(sbase, ssize, victim_asid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TwoLevelTLB l1={self.l1!r} l2={self.l2!r}>"
