"""Tests for the RSA workload: real crypto + the Figure 5 access pattern."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.rsa import (
    MPIBuffers,
    RSAWorkload,
    TracedModExp,
    generate_key,
    generate_prime,
    is_probable_prime,
)


class TestNumberTheory:
    def test_small_primes_recognized(self):
        rng = random.Random(0)
        for prime in (2, 3, 5, 7, 11, 101, 7919):
            assert is_probable_prime(prime, rng)
        for composite in (0, 1, 4, 9, 100, 7917, 561, 41041):  # incl. Carmichael
            assert not is_probable_prime(composite, rng)

    def test_generated_prime_has_requested_bits(self):
        rng = random.Random(1)
        for bits in (8, 16, 64):
            prime = generate_prime(bits, rng)
            assert prime.bit_length() == bits
            assert is_probable_prime(prime, rng)

    @given(st.integers(min_value=16, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_keygen_roundtrip(self, message_seed):
        key = generate_key(bits=64, seed=3)
        message = message_seed % key.n
        assert key.decrypt(key.encrypt(message)) == message

    def test_keygen_is_deterministic(self):
        assert generate_key(bits=64, seed=9) == generate_key(bits=64, seed=9)

    def test_keygen_rejects_odd_sizes(self):
        with pytest.raises(ValueError):
            generate_key(bits=63)
        with pytest.raises(ValueError):
            generate_key(bits=8)


class TestTracedModExp:
    def test_result_matches_builtin_pow(self):
        traced = TracedModExp(base=1234, exponent=0b1011001, modulus=99991)
        list(traced.run())
        assert traced.result == pow(1234, 0b1011001, 99991)

    @given(
        st.integers(min_value=2, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=2, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_result_property(self, base, exponent, modulus):
        traced = TracedModExp(base, exponent, modulus)
        list(traced.run())
        assert traced.result == pow(base, exponent, modulus)

    def test_tp_page_touched_only_on_one_bits(self):
        buffers = MPIBuffers()
        exponent = 0b1100101
        traced = TracedModExp(5, exponent, 99991, buffers)
        touches_by_bit = {}
        current_bit = None
        for kind, arg1, arg2 in traced.run():
            if kind == "bit":
                current_bit = arg1
                touches_by_bit[current_bit] = 0
            elif arg2 == buffers.tp_vpn:
                touches_by_bit[current_bit] += 1
        for index, touched in touches_by_bit.items():
            bit = (exponent >> index) & 1
            assert (touched > 0) == bool(bit), f"bit {index}"

    def test_bit_windows_cover_all_exponent_bits(self):
        exponent = 0b10110
        traced = TracedModExp(5, exponent, 99991)
        bits = [arg1 for kind, arg1, _ in traced.run() if kind == "bit"]
        assert bits == [4, 3, 2, 1, 0]

    def test_square_and_multiply_touch_rp_xp_every_bit(self):
        buffers = MPIBuffers()
        traced = TracedModExp(5, 0b101, 99991, buffers)
        per_bit_pages = []
        pages = set()
        for kind, arg1, arg2 in traced.run():
            if kind == "bit":
                if pages:
                    per_bit_pages.append(pages)
                pages = set()
            else:
                pages.add(arg2)
        per_bit_pages.append(pages)
        for pages in per_bit_pages:
            assert buffers.rp_vpn in pages
            assert buffers.xp_vpn in pages

    def test_zero_exponent(self):
        traced = TracedModExp(5, 0, 7)
        assert list(traced.run()) == []
        assert traced.result == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TracedModExp(2, 3, 0)
        with pytest.raises(ValueError):
            TracedModExp(2, -1, 7)


class TestRSAWorkload:
    def test_events_verify_decryption(self):
        key = generate_key(bits=32, seed=5)
        workload = RSAWorkload(key=key, runs=2)
        events = list(workload.events(random.Random(0)))
        assert events  # The internal assert verified each decryption.

    def test_trace_confined_to_mpi_pages(self):
        key = generate_key(bits=32, seed=5)
        workload = RSAWorkload(key=key, runs=1)
        pages = {vpn for _gap, vpn in workload.events(random.Random(0))}
        assert pages <= set(workload.buffers.pages())

    def test_secure_region_covers_three_pages(self):
        key = generate_key(bits=32, seed=5)
        workload = RSAWorkload(key=key, runs=1)
        sbase, ssize = workload.secure_region()
        assert ssize == 3
        assert set(range(sbase, sbase + ssize)) == set(workload.buffers.pages())

    def test_more_runs_produce_proportional_traces(self):
        key = generate_key(bits=32, seed=5)
        one = len(list(RSAWorkload(key=key, runs=1).events(random.Random(0))))
        three = len(list(RSAWorkload(key=key, runs=3).events(random.Random(0))))
        assert three == 3 * one

    def test_zero_runs_rejected(self):
        key = generate_key(bits=32, seed=5)
        with pytest.raises(ValueError):
            RSAWorkload(key=key, runs=0)
