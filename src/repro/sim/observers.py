"""Observers over the event bus, and the JSONL writer they share.

* :class:`JsonlWriter` -- a tiny append-only JSON-Lines writer, shared with
  the runner's telemetry log (:class:`repro.runner.progress.RunLog`).
* :class:`TraceObserver` -- serializes every bus event as one JSONL record
  (``python -m repro trace`` builds on it).
* :class:`StatsObserver` -- cheap aggregate counters (per event type and
  per ASID) replacing the ad-hoc tallies the drive loops used to keep.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, Optional, Union

from .events import (
    AccessEvent,
    ContextSwitchEvent,
    EVENT_NAMES,
    EventBus,
    EvictEvent,
    FillEvent,
    FlushEvent,
    WalkEvent,
)


class JsonlWriter:
    """Append-only JSON-Lines output over a path or an open text handle.

    Records are written with ``sort_keys=False`` (insertion order) and
    ``default=str``, one object per line, flushed per record so partial
    logs of crashed runs stay readable.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: Optional[IO[str]] = target
            self._owns_handle = False
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = path.open("w")
            self._owns_handle = True

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError("writer is closed")
        self._handle.write(json.dumps(record, sort_keys=False, default=str))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and self._owns_handle:
            self._handle.close()
        self._handle = None


class TraceObserver:
    """Dump every bus event as one JSONL record.

    Each record carries the event name, a monotonically increasing ``seq``
    number, and the event's own fields, e.g.::

        {"event": "access", "seq": 3, "vpn": 257, "asid": 1, "hit": false,
         "ppn": 257, "cycles": 31, "filled": true}
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        self._writer = JsonlWriter(target)
        self.seq = 0

    def subscribe(self, bus: EventBus) -> "TraceObserver":
        for event_type in EVENT_NAMES:
            bus.subscribe(event_type, self._record)
        return self

    def _record(self, event: object) -> None:
        record: Dict[str, Any] = {
            "event": EVENT_NAMES[type(event)],
            "seq": self.seq,
        }
        record.update(asdict(event))
        self._writer.write(record)
        self.seq += 1

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "TraceObserver":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class AsidCounters:
    """Per-address-space access tallies."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    cycles: int = 0


@dataclass
class StatsObserver:
    """Aggregate counters over the event stream.

    Subscribing costs one handler per event type; when detached the
    :class:`repro.sim.MemorySystem` hot path never constructs an event, so
    the observer is pay-for-use.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    cycles: int = 0
    walks: int = 0
    walk_cycles: int = 0
    fills: int = 0
    evictions: int = 0
    flushes: int = 0
    context_switches: int = 0
    by_asid: Dict[int, AsidCounters] = field(default_factory=dict)

    def subscribe(self, bus: EventBus) -> "StatsObserver":
        bus.on_access(self._on_access)
        bus.on_walk(self._on_walk)
        bus.on_fill(self._on_fill)
        bus.on_evict(self._on_evict)
        bus.on_flush(self._on_flush)
        bus.on_context_switch(self._on_context_switch)
        return self

    def _on_access(self, event: AccessEvent) -> None:
        self.accesses += 1
        self.cycles += event.cycles
        per_asid = self.by_asid.get(event.asid)
        if per_asid is None:
            per_asid = self.by_asid[event.asid] = AsidCounters()
        per_asid.accesses += 1
        per_asid.cycles += event.cycles
        if event.hit:
            self.hits += 1
            per_asid.hits += 1
        else:
            self.misses += 1
            per_asid.misses += 1

    def _on_walk(self, event: WalkEvent) -> None:
        self.walks += 1
        self.walk_cycles += event.cycles

    def _on_fill(self, _event: FillEvent) -> None:
        self.fills += 1

    def _on_evict(self, _event: EvictEvent) -> None:
        self.evictions += 1

    def _on_flush(self, _event: FlushEvent) -> None:
        self.flushes += 1

    def _on_context_switch(self, _event: ContextSwitchEvent) -> None:
        self.context_switches += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def summary(self) -> Dict[str, Any]:
        """A plain-dict rollup (used by the trace CLI's footer)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "cycles": self.cycles,
            "walks": self.walks,
            "fills": self.fills,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "context_switches": self.context_switches,
            "asids": sorted(self.by_asid),
        }
