"""Tampered results are rejected and re-executed -- never served.

The acceptance path for a work-stealing result has three integrity
gates: the pickled board record must parse (truncation), the envelope's
SHA-256 must match its blob (bit flips), and the record's code
fingerprint must match the orchestrator's (stale or foreign code).
Each test plants one kind of forged record on the board before the run
and asserts the orchestrator (a) counts the rejection, (b) re-executes
the cell, and (c) hands back only the honest value.
"""

import pickle

import pytest

from repro.runner.cache import unit_cache_key
from repro.runner.distributed import Board, WorkStealingExecutor
from repro.runner.registry import REGISTRY, Experiment, register
from repro.runner.scheduler import IntegrityError, ResultEnvelope


class TamperToyExperiment(Experiment):
    """Returns a recognizable honest value."""

    def units(self, options):
        return []

    @staticmethod
    def run(params):
        return {"honest": params["value"]}

    def assemble(self, values, options):
        return values


@pytest.fixture
def toy():
    register("tamper-toy")(TamperToyExperiment)
    yield REGISTRY["tamper-toy"]
    REGISTRY.pop("tamper-toy", None)


def _executor(tmp_path):
    return WorkStealingExecutor(
        cache_dir=tmp_path / "cache",
        local_workers=0,
        max_retries=2,
        backoff=0.001,
        backoff_cap=0.01,
        lease_ttl=1.0,
        heartbeat_interval=0.1,
        poll_interval=0.02,
        fallback_after=0.05,
    )


def _plant_and_run(tmp_path, toy, plant):
    """Plant a forged result for the cell, then run the executor."""
    executor = _executor(tmp_path)
    unit = toy.unit("x", value=11)
    cell = unit_cache_key(unit, executor.code_version)
    board = Board(tmp_path / "cache")
    board.ensure_layout()
    plant(board, cell, unit, executor.code_version)
    try:
        outcomes = executor.run([(0, unit)])
    finally:
        executor.close()
    return executor, board, cell, outcomes[0]


class TestTamperedResultsNeverServed:
    def test_bit_flipped_blob_rejected_and_reexecuted(self, tmp_path, toy):
        def plant(board, cell, unit, code_version):
            envelope = ResultEnvelope.seal({"honest": "no"})
            tampered = bytearray(envelope.blob)
            tampered[len(tampered) // 2] ^= 0xFF
            board.write_result(
                cell, unit.ident, "mallory",
                ResultEnvelope(blob=bytes(tampered), sha256=envelope.sha256),
                0.0, code_version,
            )

        executor, board, cell, outcome = _plant_and_run(
            tmp_path, toy, plant
        )
        assert executor.corrupt_results == 1
        assert not outcome.failed
        assert outcome.value == {"honest": 11}

    def test_truncated_record_rejected_and_reexecuted(self, tmp_path, toy):
        def plant(board, cell, unit, code_version):
            envelope = ResultEnvelope.seal({"honest": "no"})
            board.write_result(
                cell, unit.ident, "mallory", envelope, 0.0, code_version
            )
            raw = board.result_path(cell).read_bytes()
            board.result_path(cell).write_bytes(raw[: len(raw) // 2])

        executor, board, cell, outcome = _plant_and_run(
            tmp_path, toy, plant
        )
        assert executor.corrupt_results == 1
        assert not outcome.failed
        assert outcome.value == {"honest": 11}

    def test_mismatched_code_fingerprint_rejected(self, tmp_path, toy):
        def plant(board, cell, unit, code_version):
            board.write_result(
                cell, unit.ident, "stale-host",
                ResultEnvelope.seal({"honest": "stale"}), 0.0,
                "0" * 40,  # a fingerprint from some other source tree
            )

        executor, board, cell, outcome = _plant_and_run(
            tmp_path, toy, plant
        )
        assert executor.corrupt_results == 1
        assert not outcome.failed
        assert outcome.value == {"honest": 11}

    def test_record_naming_another_cell_rejected(self, tmp_path, toy):
        def plant(board, cell, unit, code_version):
            record = {
                "cell": "some-other-cell",
                "ident": unit.ident,
                "worker": "mallory",
                "code_version": code_version,
            }
            envelope = ResultEnvelope.seal({"honest": "no"})
            record["sha256"] = envelope.sha256
            record["blob"] = envelope.blob
            record["elapsed"] = 0.0
            board.result_path(cell).parent.mkdir(
                parents=True, exist_ok=True
            )
            board.result_path(cell).write_bytes(pickle.dumps(record))

        executor, board, cell, outcome = _plant_and_run(
            tmp_path, toy, plant
        )
        assert executor.corrupt_results == 1
        assert not outcome.failed
        assert outcome.value == {"honest": 11}

    def test_rejection_is_journaled_with_backoff(self, tmp_path, toy):
        def plant(board, cell, unit, code_version):
            envelope = ResultEnvelope.seal("whatever")
            board.write_result(
                cell, unit.ident, "mallory",
                ResultEnvelope(blob=envelope.blob[:-3], sha256=envelope.sha256),
                0.0, code_version,
            )

        executor, board, cell, outcome = _plant_and_run(
            tmp_path, toy, plant
        )
        assert not outcome.failed
        # Retirement cleans the board on success; the rejection still
        # counted and the retry was paced, which the outcome's attempt
        # count reflects (corrupt record + honest completion).
        assert executor.corrupt_results == 1
        assert executor.retries >= 1
        assert outcome.attempts >= 2


class TestEnvelopeTruncation:
    def test_truncated_blob_fails_integrity(self):
        envelope = ResultEnvelope.seal([1, 2, 3])
        truncated = ResultEnvelope(
            blob=envelope.blob[:-1], sha256=envelope.sha256
        )
        assert not truncated.intact
        with pytest.raises(IntegrityError):
            truncated.open()
