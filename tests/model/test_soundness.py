"""Tests for Appendix A's Algorithm 1 (beta-step pattern reduction)."""

from hypothesis import given, settings, strategies as st

from repro.model import soundness
from repro.model.effectiveness import analyze
from repro.model.patterns import ThreeStepPattern
from repro.model.states import (
    A_A,
    A_D,
    A_INV,
    BASE_STATES,
    STAR,
    V_A,
    V_D,
    V_INV,
    V_U,
)
from repro.model.table2 import table2_vulnerabilities


base_states = st.sampled_from(list(BASE_STATES))
state_sequences = st.lists(base_states, min_size=0, max_size=12)


class TestSplitRules:
    def test_rule1_splits_at_interior_star(self):
        segments = soundness.rule1_split_at_stars([A_D, STAR, V_U, V_A])
        assert segments == [[A_D], [STAR, V_U, V_A]]

    def test_rule1_deletes_trailing_star(self):
        segments = soundness.rule1_split_at_stars([A_D, V_U, STAR])
        assert segments == [[A_D, V_U]]

    def test_rule1_keeps_leading_star(self):
        segments = soundness.rule1_split_at_stars([STAR, A_A, V_U])
        assert segments == [[STAR, A_A, V_U]]

    def test_rule2_splits_at_interior_flush(self):
        segments = soundness.rule2_split_at_flushes([V_U, A_INV, V_U, V_A])
        assert segments == [[V_U], [A_INV, V_U, V_A]]

    def test_rule2_deletes_trailing_flush(self):
        segments = soundness.rule2_split_at_flushes([A_D, V_U, V_INV])
        assert segments == [[A_D, V_U]]


class TestCollapseRule:
    def test_adjacent_known_collapse_to_later(self):
        collapsed = soundness.rule3_collapse_adjacent([A_D, V_A, V_U])
        assert collapsed == [V_A, V_U]

    def test_adjacent_secrets_collapse(self):
        collapsed = soundness.rule3_collapse_adjacent([V_U, V_U, A_A])
        assert collapsed == [V_U, A_A]

    def test_alternating_sequence_is_unchanged(self):
        steps = [A_D, V_U, A_D, V_U]
        assert soundness.rule3_collapse_adjacent(steps) == steps

    def test_result_alternates(self):
        collapsed = soundness.rule3_collapse_adjacent(
            [A_D, A_A, V_U, V_U, V_D, V_A, V_U]
        )
        for first, second in zip(collapsed, collapsed[1:]):
            assert not (first.is_known and second.is_known)
            assert not (first.is_secret and second.is_secret)


class TestAlgorithm1:
    def test_three_step_vulnerability_is_preserved(self):
        for expected in table2_vulnerabilities():
            found = soundness.effective_vulnerabilities(expected.pattern.steps)
            assert expected in found

    def test_padding_with_prefix_keeps_effectiveness(self):
        # A longer attack containing Prime + Probe still reduces to it.
        steps = [V_D, V_A, A_D, V_U, A_D]  # rule 3 collapses V_d, V_a, A_d.
        found = soundness.effective_vulnerabilities(steps)
        patterns = {v.pattern for v in found}
        assert ThreeStepPattern((A_D, V_U, A_D)) in patterns

    def test_star_in_middle_severs_the_channel(self):
        # Prime ~> * ~> access ~> probe: the star destroys the attacker's
        # knowledge, so no effective three-step remains.
        steps = [A_D, STAR, V_U, A_A]
        assert not soundness.is_effective(steps)

    def test_flush_in_middle_restarts_the_pattern(self):
        # The flush becomes Step 1 of the second half: A_inv ~> V_u ~> V_a.
        steps = [V_U, A_INV, V_U, V_A]
        found = soundness.effective_vulnerabilities(steps)
        patterns = {v.pattern for v in found}
        assert ThreeStepPattern((A_INV, V_U, V_A)) in patterns

    def test_short_patterns_are_never_effective(self):
        # beta <= 2 (Appendix A): no attack is possible.
        assert not soundness.is_effective([])
        for first in BASE_STATES:
            assert not soundness.is_effective([first])
            for second in BASE_STATES:
                assert not soundness.is_effective([first, second])


class TestProperties:
    @given(state_sequences)
    @settings(max_examples=200, deadline=None)
    def test_reduction_never_grows(self, steps):
        assert soundness.reduced_length(steps) <= len(steps)

    @given(state_sequences)
    @settings(max_examples=200, deadline=None)
    def test_segments_alternate_and_avoid_interior_stars(self, steps):
        for segment in soundness.reduce_pattern(steps):
            assert segment, "empty segments must be dropped"
            for index, state in enumerate(segment):
                if index > 0:
                    assert not state.is_star
            for first, second in zip(segment, segment[1:]):
                assert not (first.is_secret and second.is_secret)
                assert not (first.is_known and second.is_known)

    @given(state_sequences)
    @settings(max_examples=200, deadline=None)
    def test_every_reported_vulnerability_is_a_table2_row(self, steps):
        table2 = set(table2_vulnerabilities())
        for vulnerability in soundness.effective_vulnerabilities(steps):
            assert vulnerability in table2

    @given(state_sequences)
    @settings(max_examples=200, deadline=None)
    def test_idempotent_reduction(self, steps):
        once = soundness.reduce_pattern(steps)
        for segment in once:
            again = soundness.reduce_pattern(segment)
            assert again == [segment]

    @given(base_states, base_states, base_states)
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_direct_analysis_on_alternating_triples(
        self, s1, s2, s3
    ):
        # For triples that Algorithm 1 leaves intact, windowing must agree
        # with the direct effectiveness analysis.
        steps = [s1, s2, s3]
        if soundness.reduce_pattern(steps) != [steps]:
            return
        canonical = soundness.canonicalize_alias(
            ThreeStepPattern((s1, s2, s3))
        )
        direct = analyze(canonical)
        found = soundness.effective_vulnerabilities(steps)
        if direct is not None:
            assert direct in found
