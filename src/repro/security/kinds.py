"""TLB design selector shared by the security evaluation and the harness."""

from __future__ import annotations

import enum
import random
from typing import Optional

from repro.tlb import (
    BaseTLB,
    RandomFillTLB,
    SetAssociativeTLB,
    StaticPartitionTLB,
    TLBConfig,
    TwoLevelTLB,
)


class TLBKind(enum.Enum):
    """The three designs compared throughout the paper."""

    SA = "SA"
    SP = "SP"
    RF = "RF"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def make_tlb(
    kind: TLBKind,
    config: TLBConfig,
    victim_asid: int = 1,
    victim_ways: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> BaseTLB:
    """Instantiate one of the three designs over a common configuration."""
    if kind is TLBKind.SA:
        return SetAssociativeTLB(config)
    if kind is TLBKind.SP:
        return StaticPartitionTLB(
            config, victim_asid=victim_asid, victim_ways=victim_ways
        )
    if kind is TLBKind.RF:
        return RandomFillTLB(config, victim_asid=victim_asid, rng=rng)
    raise ValueError(f"unknown TLB kind {kind}")  # pragma: no cover


def make_two_level_tlb(
    l1_kind: TLBKind,
    l2_kind: TLBKind,
    l1_config: TLBConfig,
    l2_config: TLBConfig,
    victim_asid: int = 1,
    rng: Optional[random.Random] = None,
) -> TwoLevelTLB:
    """A two-level hierarchy with any L1/L2 design combination.

    SP levels default to an even way split, matching the single-level
    convention the evaluations use.  Like :func:`make_tlb`, this is a
    registered factory: the invariant linter keeps direct construction
    out of the drive loops.
    """
    levels = [
        make_tlb(
            kind,
            config,
            victim_asid=victim_asid,
            victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
            rng=rng,
        )
        for kind, config in ((l1_kind, l1_config), (l2_kind, l2_config))
    ]
    return TwoLevelTLB(levels[0], levels[1])
