"""The execution seam and its backends: run cells, survive failures.

Two layers live here.  The :class:`Executor` protocol is the seam every
backend implements -- ``submit(unit) -> TaskOutcome`` -- shared by
``run_all``, :mod:`repro.serve`, and any future remote backend.  Behind
it sit three implementations:

* :class:`Scheduler` -- the multiprocessing pool (bulk-optimized via
  :meth:`Scheduler.run`): workers fed from a bounded task queue, each
  announcing a *claim* before running a cell so the parent always knows
  which cell died with a crashed worker.  Crashed or erroring cells are
  retried with exponential backoff up to ``max_retries`` times, then
  marked failed -- a dead worker never loses the run, and never blocks
  the remaining cells.
* :class:`InProcessExecutor` -- the ``--jobs 1`` path: cells run in the
  calling process, same telemetry, no processes.
* :class:`AsyncInProcessExecutor` -- the :mod:`repro.serve` backend:
  ``submit`` is a coroutine that runs the cell on a worker thread under
  a concurrency semaphore, so a long-lived asyncio service stays
  responsive while cells execute.

Results can travel as a :class:`ResultEnvelope` -- the pickled payload
plus its SHA-256 -- so any boundary (a worker queue, a service response)
can verify the bytes it received are the bytes the cell produced.

Determinism comes from the units, not the schedule: every
:class:`~repro.runner.registry.Unit` carries its own stable seed and its
run function derives any internal RNG from the cell's identity, so results
are identical for any backend, any ``--jobs`` value, and any completion
order.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import queue as queue_module
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.faults.chaos import ChaosConfig

from .backoff import backoff_delay
from .progress import ProgressPrinter, RunLog
from .registry import Unit, get_experiment


class IntegrityError(RuntimeError):
    """A result envelope whose payload no longer matches its digest."""


@dataclass(frozen=True)
class ResultEnvelope:
    """A pickled cell result sealed with its SHA-256.

    Sealing hashes the exact serialized bytes, so the envelope can cross
    any boundary -- a worker result queue, an on-disk store, a service
    response -- and :meth:`open` will refuse a payload corrupted anywhere
    in between.
    """

    blob: bytes
    sha256: str
    #: Static/dynamic cross-certification verdict carried by the payload
    #: (``certified`` key of an assembled result), when it has one.  None
    #: means the payload makes no certification claim.
    certified: Optional[bool] = None

    @classmethod
    def seal(cls, value: Any) -> "ResultEnvelope":
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        certified = (
            value.get("certified") if isinstance(value, Mapping) else None
        )
        return cls(
            blob=blob,
            sha256=hashlib.sha256(blob).hexdigest(),
            certified=certified,
        )

    @property
    def intact(self) -> bool:
        return hashlib.sha256(self.blob).hexdigest() == self.sha256

    def open(self) -> Any:
        """Verify the digest and unpickle the payload."""
        if not self.intact:
            raise IntegrityError(
                "result payload failed its integrity check"
            )
        return pickle.loads(self.blob)


@dataclass
class TaskOutcome:
    """Terminal state of one scheduled cell."""

    unit: Unit
    value: Any = None
    elapsed: float = 0.0
    #: Pool workers are numbered; distributed workers carry string ids.
    worker: Optional[Union[int, str]] = None
    attempts: int = 1
    cached: bool = False
    failed: bool = False
    error: Optional[str] = None
    #: Sealed form of ``value`` when the backend produced one (the async
    #: executor always seals; the serial path only when asked).
    envelope: Optional[ResultEnvelope] = None
    #: Per-attempt records (worker, fault/exception, backoff applied) for
    #: every non-first attempt -- the quarantine manifest's evidence.
    history: List[Dict[str, Any]] = field(default_factory=list)


class Executor:
    """The execution seam: submit one cell, receive its terminal outcome.

    ``submit`` never raises for a failing cell -- failures come back as
    ``TaskOutcome(failed=True)`` -- so callers treat every backend
    uniformly.  Implementations may be synchronous (returning the
    outcome directly) or asynchronous (``submit`` defined as a
    coroutine function, as in :class:`AsyncInProcessExecutor`); async-
    aware callers await what they get.
    """

    def submit(self, unit: Unit) -> TaskOutcome:
        raise NotImplementedError

    def run(self, units: List[Tuple[int, Unit]]) -> Dict[int, TaskOutcome]:
        """Bulk execution; the default just drains ``submit`` in order."""
        return {task_id: self.submit(unit) for task_id, unit in units}

    def close(self) -> None:
        """Release backend resources (worker pools, threads)."""


class InProcessExecutor(Executor):
    """Run cells in the calling process (the ``--jobs 1`` path).

    Emits the same ``unit_done`` telemetry as the process pool.  With
    ``seal=True`` every outcome carries a :class:`ResultEnvelope`, which
    :mod:`repro.serve` uses to hand integrity-checked bytes to its
    result store.
    """

    def __init__(self, log: Optional[RunLog] = None, seal: bool = False) -> None:
        self.log = log or RunLog(None)
        self.seal = seal

    def submit(self, unit: Unit) -> TaskOutcome:
        start = time.perf_counter()
        try:
            value = get_experiment(unit.experiment).run(dict(unit.params))
        except Exception:
            error = traceback.format_exc()
            self.log.emit(
                "unit_done",
                experiment=unit.experiment,
                key=unit.key,
                status="failed",
                error=error.splitlines()[-1],
            )
            return TaskOutcome(unit=unit, failed=True, error=error)
        elapsed = time.perf_counter() - start
        envelope = ResultEnvelope.seal(value) if self.seal else None
        self.log.emit(
            "unit_done",
            experiment=unit.experiment,
            key=unit.key,
            status="ok",
            cached=False,
            elapsed=round(elapsed, 4),
            worker=0,
            attempts=1,
        )
        return TaskOutcome(
            unit=unit, value=value, elapsed=elapsed, worker=0,
            envelope=envelope,
        )


class AsyncInProcessExecutor(Executor):
    """Asyncio backend: cells run on worker threads, outcomes sealed.

    ``submit`` is a coroutine: it acquires a concurrency semaphore and
    runs the cell via :func:`asyncio.to_thread`, so an event loop can
    keep serving requests while simulations execute.  The semaphore is
    created lazily on the first running loop and the executor is bound
    to it from then on -- one executor per service lifetime.
    """

    def __init__(
        self,
        max_concurrency: int = 2,
        log: Optional[RunLog] = None,
        seal: bool = True,
    ) -> None:
        self.max_concurrency = max(1, max_concurrency)
        self._inner = InProcessExecutor(log=log, seal=seal)
        self._semaphore: Optional[Any] = None

    async def submit(self, unit: Unit) -> TaskOutcome:  # type: ignore[override]
        import asyncio

        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.max_concurrency)
        async with self._semaphore:
            return await asyncio.to_thread(self._inner.submit, unit)


def _worker_main(
    worker_id: int,
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
    chaos: Optional[ChaosConfig] = None,
) -> None:
    """Worker loop: claim, run, report; exit on the ``None`` sentinel.

    Successful results travel as an *integrity envelope*: the pickled
    payload plus its SHA-256, hashed worker-side over the exact bytes put
    on the queue, so the parent can reject a payload corrupted anywhere
    between ``run`` returning and the queue read (or by the chaos mode
    that simulates exactly that).

    With a :class:`~repro.faults.chaos.ChaosConfig`, the worker misbehaves
    deterministically per ``(cell, attempt)``: hanging (to exercise the
    parent's watchdog), dying without a word (crash recovery), tampering
    with the payload after hashing (envelope verification), or raising on
    every attempt (poison-cell quarantine).
    """
    from repro.runner.registry import ensure_default_experiments
    from repro.sim.kernel import KERNEL_TELEMETRY

    ensure_default_experiments()
    # Forked workers inherit whatever kernel telemetry the parent had
    # already accumulated; reset so the farewell snapshot below is this
    # worker's own contribution and the parent can absorb it as a delta.
    KERNEL_TELEMETRY.reset()
    while True:
        item = task_queue.get()
        if item is None:
            result_queue.put(
                ("bye", worker_id, -1, KERNEL_TELEMETRY.snapshot(), 0.0)
            )
            return
        task_id, experiment_name, params, ident, attempt = item
        result_queue.put(("claim", worker_id, task_id, None, 0.0))
        fault = chaos.fault_for(ident, attempt) if chaos is not None else None
        if fault == "hang":
            time.sleep(chaos.hang_seconds)
        elif fault == "crash":
            os._exit(113)
        start = time.perf_counter()
        try:
            if fault == "poison":
                raise RuntimeError(f"chaos: poisoned cell {ident}")
            value = get_experiment(experiment_name).run(params)
        except BaseException:
            result_queue.put(
                (
                    "err",
                    worker_id,
                    task_id,
                    traceback.format_exc(),
                    time.perf_counter() - start,
                )
            )
        else:
            envelope = ResultEnvelope.seal(value)
            blob = envelope.blob
            if fault == "corrupt-result":
                tampered = bytearray(blob)
                tampered[len(tampered) // 2] ^= 0xFF
                blob = bytes(tampered)
            result_queue.put(
                (
                    "ok",
                    worker_id,
                    task_id,
                    (blob, envelope.sha256),
                    time.perf_counter() - start,
                )
            )


class Scheduler(Executor):
    """Run units across ``jobs`` worker processes (see module docstring).

    The bulk path is :meth:`run`; :meth:`submit` satisfies the
    :class:`Executor` protocol for one-off cells but spins the pool up
    and down per call -- services wanting per-cell submission should use
    :class:`AsyncInProcessExecutor` (or keep a bulk batch per job).
    """

    def __init__(
        self,
        jobs: int,
        max_retries: int = 2,
        backoff: float = 0.05,
        log: Optional[RunLog] = None,
        progress: Optional[ProgressPrinter] = None,
        poll_interval: float = 0.1,
        task_timeout: Optional[float] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.max_retries = max_retries
        self.backoff = backoff
        self.log = log or RunLog(None)
        self.progress = progress
        self.poll_interval = poll_interval
        #: Wall-clock budget per cell attempt; a claim outstanding longer
        #: gets its worker killed and the cell requeued with backoff.
        self.task_timeout = task_timeout
        self.chaos = chaos
        self.retries = 0
        self.worker_crashes = 0
        self.watchdog_kills = 0
        self.corrupt_results = 0
        #: True once a KeyboardInterrupt stopped the run early.
        self.interrupted = False
        self.worker_busy: Dict[int, float] = {}
        # ``fork`` keeps test-registered experiments visible to workers and
        # avoids re-importing the package per process; fall back to the
        # platform default where fork does not exist.
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = multiprocessing.get_context()

    def submit(self, unit: Unit) -> TaskOutcome:
        """One-cell convenience over :meth:`run` (pool per call)."""
        return self.run([(0, unit)])[0]

    # -- internals -----------------------------------------------------------------

    def _spawn_worker(self, worker_id: int, task_queue, result_queue):
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue, self.chaos),
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        process.start()
        return process

    def run(self, units: List[Tuple[int, Unit]]) -> Dict[int, TaskOutcome]:
        """Execute ``(task_id, unit)`` pairs; returns outcomes by task id."""
        if not units:
            return {}
        jobs = min(self.jobs, len(units))
        task_queue = self._ctx.Queue(maxsize=max(2, 2 * jobs))
        result_queue = self._ctx.Queue()
        by_id = {task_id: unit for task_id, unit in units}

        #: (task_id, not_before) cells awaiting dispatch.
        pending: deque = deque((task_id, 0.0) for task_id, _unit in units)
        attempts: Dict[int, int] = {task_id: 0 for task_id, _unit in units}
        #: task_id -> worker currently executing it.
        claimed: Dict[int, int] = {}
        #: task_id -> monotonic claim time (the watchdog's clock).
        claim_times: Dict[int, float] = {}
        #: Cells handed to the queue whose fate is unknown.
        dispatched: set = set()
        outcomes: Dict[int, TaskOutcome] = {}

        self._next_worker_id = jobs
        workers: Dict[int, Any] = {}
        for worker_id in range(jobs):
            workers[worker_id] = self._spawn_worker(
                worker_id, task_queue, result_queue
            )
            self.worker_busy.setdefault(worker_id, 0.0)

        #: task_id -> per-attempt failure records (the quarantine evidence).
        history: Dict[int, List[Dict[str, Any]]] = {
            task_id: [] for task_id, _unit in units
        }

        def schedule_retry(
            task_id: int,
            reason: str,
            error: str,
            worker: Optional[Union[int, str]] = None,
        ) -> None:
            attempts[task_id] += 1
            unit = by_id[task_id]
            retrying = attempts[task_id] <= self.max_retries
            delay = (
                backoff_delay(
                    attempts[task_id],
                    base=self.backoff,
                    ident=unit.ident,
                    seed=unit.seed,
                )
                if retrying else 0.0
            )
            history[task_id].append(
                {
                    "attempt": attempts[task_id],
                    "worker": worker,
                    "status": reason,
                    "error": error.splitlines()[-1] if error else None,
                    "backoff": round(delay, 4),
                }
            )
            if retrying:
                pending.append((task_id, time.monotonic() + delay))
                self.retries += 1
                self.log.emit(
                    "retry",
                    experiment=unit.experiment,
                    key=unit.key,
                    attempt=attempts[task_id],
                    backoff=round(delay, 3),
                    reason=reason,
                )
            else:
                outcomes[task_id] = TaskOutcome(
                    unit=unit,
                    failed=True,
                    error=error,
                    attempts=attempts[task_id],
                    history=list(history[task_id]),
                )
                self.log.emit(
                    "unit_done",
                    experiment=unit.experiment,
                    key=unit.key,
                    status="failed",
                    attempts=attempts[task_id],
                    error=error.splitlines()[-1] if error else None,
                )

        try:
            while len(outcomes) < len(by_id):
                # Feed the bounded queue from the pending deque.
                now = time.monotonic()
                deferred = []
                while pending:
                    task_id, not_before = pending.popleft()
                    if not_before > now:
                        deferred.append((task_id, not_before))
                        continue
                    try:
                        unit = by_id[task_id]
                        task_queue.put_nowait(
                            (
                                task_id,
                                unit.experiment,
                                dict(unit.params),
                                unit.ident,
                                attempts[task_id] + 1,
                            )
                        )
                        dispatched.add(task_id)
                    except queue_module.Full:
                        deferred.append((task_id, not_before))
                        break
                pending.extend(deferred)

                # Drain results.
                try:
                    kind, worker_id, task_id, payload, elapsed = (
                        result_queue.get(timeout=self.poll_interval)
                    )
                except queue_module.Empty:
                    self._watchdog(
                        workers, by_id, claimed, claim_times, dispatched,
                        task_queue, result_queue, schedule_retry,
                    )
                    self._check_workers(
                        workers, claimed, claim_times, dispatched, outcomes,
                        pending, task_queue, result_queue, schedule_retry,
                    )
                    # A worker can die between dequeuing a task and claiming
                    # it; if everything is quiet but cells are unaccounted
                    # for, re-dispatch them (duplicate completions are
                    # ignored, and cells are deterministic anyway).
                    if (
                        not pending
                        and not claimed
                        and task_queue.empty()
                        and len(outcomes) < len(by_id)
                    ):
                        lost = [
                            task_id
                            for task_id in dispatched
                            if task_id not in outcomes
                        ]
                        for task_id in lost:
                            schedule_retry(
                                task_id, "lost-in-flight", "task lost in flight"
                            )
                    continue

                if kind == "bye":
                    # A worker's farewell carries its run-kernel telemetry
                    # snapshot; workers killed mid-cell simply lose theirs
                    # (observability, not correctness).
                    if payload is not None:
                        from repro.sim.kernel import KERNEL_TELEMETRY

                        KERNEL_TELEMETRY.absorb(payload)
                    continue
                if kind == "claim":
                    claimed[task_id] = worker_id
                    claim_times[task_id] = time.monotonic()
                    continue
                claimed.pop(task_id, None)
                claim_times.pop(task_id, None)
                dispatched.discard(task_id)
                self.worker_busy[worker_id] = (
                    self.worker_busy.get(worker_id, 0.0) + elapsed
                )
                if task_id in outcomes:
                    continue  # duplicate completion after a lost-task retry
                unit = by_id[task_id]
                if kind == "ok":
                    envelope = ResultEnvelope(*payload)
                    try:
                        value = envelope.open()
                    except IntegrityError as error:
                        self.corrupt_results += 1
                        self.log.emit(
                            "corrupt_result",
                            experiment=unit.experiment,
                            key=unit.key,
                            worker=worker_id,
                        )
                        schedule_retry(
                            task_id, "corrupt-result", str(error),
                            worker=worker_id,
                        )
                        continue
                    outcomes[task_id] = TaskOutcome(
                        unit=unit,
                        value=value,
                        elapsed=elapsed,
                        worker=worker_id,
                        attempts=attempts[task_id] + 1,
                        envelope=envelope,
                        history=list(history[task_id]),
                    )
                    self.log.emit(
                        "unit_done",
                        experiment=unit.experiment,
                        key=unit.key,
                        status="ok",
                        cached=False,
                        elapsed=round(elapsed, 4),
                        worker=worker_id,
                        attempts=attempts[task_id] + 1,
                    )
                    if self.progress is not None:
                        self.progress.update(
                            done=len(outcomes),
                            retries=self.retries,
                            workers=len(workers),
                        )
                else:  # "err"
                    schedule_retry(
                        task_id, "exception", payload, worker=worker_id
                    )

                self._watchdog(
                    workers, by_id, claimed, claim_times, dispatched,
                    task_queue, result_queue, schedule_retry,
                )
                self._check_workers(
                    workers, claimed, claim_times, dispatched, outcomes,
                    pending, task_queue, result_queue, schedule_retry,
                )
        except KeyboardInterrupt:
            self.interrupted = True
            self.log.emit(
                "interrupted",
                completed=len(outcomes),
                remaining=len(by_id) - len(outcomes),
            )
        finally:
            self._shutdown(
                workers, task_queue, result_queue, force=self.interrupted
            )
        return outcomes

    def _watchdog(
        self,
        workers,
        by_id,
        claimed,
        claim_times,
        dispatched,
        task_queue,
        result_queue,
        schedule_retry,
    ) -> None:
        """Kill workers whose claimed cell exceeded ``task_timeout``.

        The hung cell is requeued (with the usual backoff and retry
        budget), a replacement worker is spawned, and the kill is recorded
        as a ``watchdog_kill`` log event -- so a single wedged cell can
        slow a run down but never wedge it.
        """
        if self.task_timeout is None:
            return
        now = time.monotonic()
        for task_id, since in list(claim_times.items()):
            if now - since <= self.task_timeout:
                continue
            claim_times.pop(task_id, None)
            worker_id = claimed.pop(task_id, None)
            if worker_id is None:
                continue
            dispatched.discard(task_id)
            unit = by_id[task_id]
            self.watchdog_kills += 1
            self.log.emit(
                "watchdog_kill",
                worker=worker_id,
                experiment=unit.experiment,
                key=unit.key,
                timeout=self.task_timeout,
            )
            process = workers.pop(worker_id, None)
            if process is not None:
                process.kill()
                process.join(timeout=2.0)
                replacement_id = self._next_worker_id
                self._next_worker_id += 1
                workers[replacement_id] = self._spawn_worker(
                    replacement_id, task_queue, result_queue
                )
                self.worker_busy.setdefault(replacement_id, 0.0)
            schedule_retry(
                task_id,
                "watchdog-timeout",
                f"cell exceeded the {self.task_timeout}s watchdog timeout",
                worker=worker_id,
            )

    def _check_workers(
        self,
        workers,
        claimed,
        claim_times,
        dispatched,
        outcomes,
        pending,
        task_queue,
        result_queue,
        schedule_retry,
    ) -> None:
        """Detect crashed workers, recover their cells, and respawn."""
        for worker_id, process in list(workers.items()):
            if process.is_alive():
                continue
            # Workers only exit on the shutdown sentinel, which is sent
            # after this loop finishes -- a dead worker here is a crash.
            self.worker_crashes += 1
            self.log.emit(
                "worker_crash",
                worker=worker_id,
                pid=process.pid,
                exitcode=process.exitcode,
            )
            del workers[worker_id]
            for task_id, claimant in list(claimed.items()):
                if claimant == worker_id:
                    del claimed[task_id]
                    claim_times.pop(task_id, None)
                    dispatched.discard(task_id)
                    schedule_retry(
                        task_id,
                        "worker-crash",
                        f"worker {worker_id} died (exit {process.exitcode})",
                        worker=worker_id,
                    )
            replacement_id = self._next_worker_id
            self._next_worker_id += 1
            workers[replacement_id] = self._spawn_worker(
                replacement_id, task_queue, result_queue
            )
            self.worker_busy.setdefault(replacement_id, 0.0)

    def _shutdown(
        self, workers, task_queue, result_queue=None, force: bool = False
    ) -> None:
        """Stop all workers; ``force`` terminates without draining.

        The forced path serves Ctrl-C: workers are interrupted mid-cell,
        so waiting for sentinel pickup would hang on a full queue.  The
        graceful path drains the workers' farewell messages, absorbing
        the run-kernel telemetry snapshots they carry.
        """
        if force:
            for process in workers.values():
                process.terminate()
            for process in workers.values():
                process.join(timeout=2.0)
            for process in workers.values():
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.kill()
                    process.join(timeout=1.0)
            task_queue.close()
            task_queue.cancel_join_thread()
            return
        for _ in workers:
            try:
                task_queue.put_nowait(None)
            except queue_module.Full:  # pragma: no cover - tiny queue race
                pass
        deadline = time.monotonic() + 5.0
        if result_queue is not None:
            from repro.sim.kernel import KERNEL_TELEMETRY

            farewells = 0
            while farewells < len(workers) and time.monotonic() < deadline:
                try:
                    kind, _worker, _task, payload, _elapsed = (
                        result_queue.get(timeout=0.2)
                    )
                except queue_module.Empty:
                    continue
                if kind == "bye":
                    farewells += 1
                    if payload is not None:
                        KERNEL_TELEMETRY.absorb(payload)
        for process in workers.values():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in workers.values():
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        task_queue.close()
        task_queue.cancel_join_thread()


def run_units_serially(
    units: List[Tuple[int, Unit]], log: Optional[RunLog] = None
) -> Dict[int, TaskOutcome]:
    """In-process execution (``--jobs 1``): same semantics, no processes.

    A ``KeyboardInterrupt`` stops the loop between (or inside) cells and
    returns the outcomes gathered so far; ``run_all`` reads the shortfall
    as an interrupted run and reports partially.
    """
    executor = InProcessExecutor(log=log or RunLog(None))
    outcomes: Dict[int, TaskOutcome] = {}
    for task_id, unit in units:
        try:
            outcomes[task_id] = executor.submit(unit)
        except KeyboardInterrupt:
            executor.log.emit(
                "interrupted",
                completed=len(outcomes),
                remaining=len(units) - len(outcomes),
            )
            return outcomes
    return outcomes
