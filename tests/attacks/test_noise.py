"""Tests for the attack-under-noise study."""

import pytest

from repro.attacks import noisy_tlbleed_attack
from repro.security.kinds import TLBKind
from repro.workloads.rsa import generate_key

KEY = generate_key(bits=64, seed=11)


class TestNoiseRobustness:
    def test_no_noise_matches_the_clean_attack(self):
        result = noisy_tlbleed_attack(
            TLBKind.SA, key=KEY, noise_accesses_per_window=0
        )
        assert result.recovered_exactly

    def test_noise_degrades_single_trace_accuracy(self):
        clean = noisy_tlbleed_attack(
            TLBKind.SA, key=KEY, noise_accesses_per_window=0
        )
        light = noisy_tlbleed_attack(
            TLBKind.SA, key=KEY, noise_accesses_per_window=1
        )
        heavy = noisy_tlbleed_attack(
            TLBKind.SA, key=KEY, noise_accesses_per_window=4
        )
        assert clean.accuracy > light.accuracy > heavy.accuracy

    def test_voting_recovers_accuracy_under_light_noise(self):
        single = noisy_tlbleed_attack(
            TLBKind.SA, key=KEY, noise_accesses_per_window=1, traces=1
        )
        voted = noisy_tlbleed_attack(
            TLBKind.SA, key=KEY, noise_accesses_per_window=1, traces=9
        )
        assert voted.accuracy > single.accuracy
        assert voted.accuracy > 0.9

    def test_naive_voting_saturates_under_heavy_noise(self):
        # With a >=1-miss threshold detector, heavy noise pushes the
        # per-window false-positive rate toward 1/2 and voting stops
        # helping -- the reason the real TLBleed classifies traces with
        # machine learning instead of a fixed threshold.
        voted = noisy_tlbleed_attack(
            TLBKind.SA, key=KEY, noise_accesses_per_window=4, traces=9
        )
        assert not voted.recovered_exactly

    def test_rf_remains_safe_regardless_of_noise(self):
        result = noisy_tlbleed_attack(
            TLBKind.RF, key=KEY, noise_accesses_per_window=1, traces=5
        )
        assert not result.recovered_exactly

    def test_validation(self):
        with pytest.raises(ValueError):
            noisy_tlbleed_attack(TLBKind.SA, key=KEY, traces=2)
        with pytest.raises(ValueError):
            noisy_tlbleed_attack(
                TLBKind.SA, key=KEY, noise_accesses_per_window=-1
            )
