"""Declarative TLB-hierarchy specifications.

A :class:`HierarchySpec` is the one description of a multi-level TLB that
every layer consumes: the :func:`repro.security.kinds.make_hierarchy`
factory builds the live :class:`repro.tlb.TLBHierarchy` from it, the
runner's hierarchy-sweep cells carry it in their params (as the plain
JSON dict of :meth:`HierarchySpec.to_dict`), and ``repro serve`` specs
round-trip it over HTTP.  Levels are ordered outermost first (index 0 is
the L1 the CPU probes); each level picks one of the paper's designs and
its own geometry, and an optional :class:`PWCSpec` appends a page-walk
cache behind the last level -- the architectural (latency-bearing)
version of the walker memo that :mod:`repro.mmu.walker` keeps for pure
replay speed.

The spec is deliberately plain data -- strings and ints only -- so cells
stay picklable and cache keys stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from .config import ReplacementKind, TLBConfig

#: The design names a level may pick (mirrors ``repro.security.TLBKind``;
#: kept as strings so this module stays importable without the security
#: layer).
LEVEL_KINDS = ("SA", "SP", "RF")


@dataclass(frozen=True)
class LevelSpec:
    """One TLB level: design kind plus geometry and policy knobs."""

    #: ``"SA"``, ``"SP"`` or ``"RF"``.
    kind: str
    sets: int
    ways: int
    hit_latency: int = 1
    #: log2 of the page size (12 = 4 KiB, the paper's default).
    page_bits: int = 12
    #: Replacement policy value (see :class:`repro.tlb.ReplacementKind`).
    policy: str = ReplacementKind.LRU.value
    #: SP only: ways reserved for the victim partition.  ``None`` keeps
    #: the paper's convention of an even split (``ways // 2``).
    victim_ways: Optional[int] = None
    #: Whether this level's secure-region registers are programmed when
    #: the hierarchy's ``set_secure_region`` is called.  Only meaningful
    #: for RF levels; disabling it models an RF array whose Sec-bit
    #: machinery is left unconfigured.
    sec_bit: bool = True

    def __post_init__(self) -> None:
        if self.kind not in LEVEL_KINDS:
            raise ValueError(
                f"unknown level kind {self.kind!r}"
                f" (expected one of {', '.join(LEVEL_KINDS)})"
            )
        if self.sets <= 0 or self.ways <= 0:
            raise ValueError("sets and ways must be positive")
        if self.victim_ways is not None:
            if self.kind != "SP":
                raise ValueError(
                    "victim_ways is only meaningful for SP levels"
                )
            if not 0 < self.victim_ways < self.ways:
                raise ValueError(
                    "victim_ways must leave both partitions at least one"
                    f" way (got {self.victim_ways} of {self.ways})"
                )
        ReplacementKind(self.policy)  # Validate eagerly: fail at spec time.

    @property
    def entries(self) -> int:
        return self.sets * self.ways

    def config(self) -> TLBConfig:
        """The level's :class:`TLBConfig`."""
        return TLBConfig(
            entries=self.entries,
            ways=self.ways,
            page_bits=self.page_bits,
            hit_latency=self.hit_latency,
            replacement=ReplacementKind(self.policy),
        )

    def effective_victim_ways(self) -> Optional[int]:
        """The SP way split actually used (``None`` for non-SP levels)."""
        if self.kind != "SP":
            return None
        if self.victim_ways is not None:
            return self.victim_ways
        return self.ways // 2

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "sets": self.sets,
            "ways": self.ways,
            "hit_latency": self.hit_latency,
            "page_bits": self.page_bits,
            "policy": self.policy,
            "victim_ways": self.victim_ways,
            "sec_bit": self.sec_bit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LevelSpec":
        return cls(
            kind=data["kind"],
            sets=data["sets"],
            ways=data["ways"],
            hit_latency=data.get("hit_latency", 1),
            page_bits=data.get("page_bits", 12),
            policy=data.get("policy", ReplacementKind.LRU.value),
            victim_ways=data.get("victim_ways"),
            sec_bit=data.get("sec_bit", True),
        )

    @classmethod
    def from_config(
        cls,
        kind: str,
        config: TLBConfig,
        victim_ways: Optional[int] = None,
        sec_bit: bool = True,
    ) -> "LevelSpec":
        """Lift an existing :class:`TLBConfig` into a level spec."""
        return cls(
            kind=kind,
            sets=config.sets,
            ways=config.ways,
            hit_latency=config.hit_latency,
            page_bits=config.page_bits,
            policy=config.replacement.value,
            victim_ways=victim_ways,
            sec_bit=sec_bit,
        )


@dataclass(frozen=True)
class PWCSpec:
    """An optional page-walk cache behind the last TLB level.

    Unlike the walker's replay memo (which charges full walk cycles, per
    the paper's footnote 3), the PWC is architectural: a hit returns in
    ``hit_latency`` cycles instead of the walk's.  Hierarchies with a PWC
    therefore model hardware the paper's timing analysis excludes, which
    is exactly what the sweep's PWC on/off axis measures.
    """

    entries: int = 16
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("PWC needs at least one entry")
        if self.hit_latency < 0:
            raise ValueError("PWC hit latency cannot be negative")

    def to_dict(self) -> Dict[str, Any]:
        return {"entries": self.entries, "hit_latency": self.hit_latency}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PWCSpec":
        return cls(
            entries=data.get("entries", 16),
            hit_latency=data.get("hit_latency", 2),
        )


@dataclass(frozen=True)
class HierarchySpec:
    """An N-level TLB hierarchy, outermost level first, plus optional PWC."""

    levels: Tuple[LevelSpec, ...]
    pwc: Optional[PWCSpec] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a hierarchy needs at least one level")

    def label(self) -> str:
        """A compact human label, e.g. ``"SP+SA" `` or ``"RF+SA+pwc"``."""
        if self.name:
            return self.name
        parts = [level.kind for level in self.levels]
        label = "+".join(parts)
        return f"{label}+pwc" if self.pwc else label

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "levels": [level.to_dict() for level in self.levels],
        }
        if self.pwc is not None:
            data["pwc"] = self.pwc.to_dict()
        if self.name:
            data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HierarchySpec":
        pwc = data.get("pwc")
        return cls(
            levels=tuple(
                LevelSpec.from_dict(level) for level in data["levels"]
            ),
            pwc=PWCSpec.from_dict(pwc) if pwc is not None else None,
            name=data.get("name", ""),
        )

    @classmethod
    def two_level(
        cls,
        l1_kind: str,
        l2_kind: str,
        l1_config: TLBConfig,
        l2_config: TLBConfig,
        pwc: Optional[PWCSpec] = None,
    ) -> "HierarchySpec":
        """The classic L1-backed-by-L2 shape the ablation study uses."""
        return cls(
            levels=(
                LevelSpec.from_config(l1_kind, l1_config),
                LevelSpec.from_config(l2_kind, l2_config),
            ),
            pwc=pwc,
        )
