"""The Random-Fill (RF) TLB (Section 4.2).

The RF TLB de-correlates what the CPU requested from what the TLB caches.
Hits behave exactly like the standard SA TLB.  On a miss the design first
*probes* the replacement victim ``R`` that a normal fill would displace and
then decides (Figure 3):

* ``Sec_R = 0`` and ``Sec_D = 0`` -- a normal miss: walk and fill ``D``.
* ``Sec_R = 1`` and ``Sec_D = 0`` -- the fill would displace a secure
  entry.  Instead, a random *non-secure* page ``D'`` -- same high address
  bits as ``D``, set-index bits randomized over the secure region's sets
  (footnote 6) -- is filled, and ``D``'s translation is returned to the CPU
  through the one-entry buffer without filling.  An attacker can therefore
  never deterministically evict a secure translation.
* ``Sec_D = 1`` -- the request itself is secure.  A random page ``D'``
  drawn uniformly from the secure region ``[sbase, sbase + ssize)`` is
  filled instead, and ``D`` is again returned through the buffer.  The
  attacker observes TLB state changes caused by the *random* page, not the
  secret one.

``Sec_D`` is set when the requesting process is the protected victim and
the page lies inside the secure region held in the ``sbase``/``ssize``
registers (managed by a trusted OS; Section 4.2.2).  The walker is assumed
to be able to translate any ``D'`` the Random Fill Engine produces
(footnote 5: the OS pre-generates those page-table entries).

The extra ``D'`` walk happens off the critical path of the CPU's response
(the Random Fill Logic withholds the random fill's result from the
processor, Figure 4), so the latency returned for a miss is the ordinary
walk latency of ``D``.
"""

from __future__ import annotations

import random
from typing import Optional

from .base import AccessResult, BaseTLB, Translator
from .config import TLBConfig
from .entry import TLBEntry
from .replacement import LRUPolicy


class RandomFillEngine:
    """The RFE of Figure 4a: draws the random page addresses for fills."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0x5EC0)

    def secure_page(self, sbase: int, ssize: int) -> int:
        """A page drawn uniformly from the secure region."""
        if ssize <= 0:
            raise ValueError("secure region is empty")
        return sbase + self._rng.randrange(ssize)

    def randomized_set_page(
        self, vpn: int, sbase: int, ssize: int, nsets: int
    ) -> int:
        """``vpn`` with its set-index bits re-drawn over the secure region.

        Footnote 6: the randomized index spans ``min(ssize, nsets)`` sets
        starting at the region's own starting index, so the non-secure
        random fill lands in the same sets the secure region occupies.
        """
        if ssize <= 0:
            raise ValueError("secure region is empty")
        span = min(ssize, nsets)
        base_index = sbase % nsets
        new_index = (base_index + self._rng.randrange(span)) % nsets
        return (vpn // nsets) * nsets + new_index


class RandomFillTLB(BaseTLB):
    """SA TLB extended with the Sec bit, region registers, RFE and buffer."""

    #: The batched fast path must clean :attr:`buffer` per request, exactly
    #: like :meth:`translate` / :meth:`translate_fast` do.
    _NOFILL_BUFFER = True

    def __init__(
        self,
        config: TLBConfig,
        victim_asid: int = 1,
        sbase: int = 0,
        ssize: int = 0,
        rng: Optional[random.Random] = None,
        name: str = "rf-tlb",
    ) -> None:
        super().__init__(config, name)
        self.victim_asid = victim_asid
        self.sbase = sbase
        self.ssize = ssize
        self.engine = RandomFillEngine(rng)
        #: The one-entry no-fill buffer (Figure 4b).  Holds the translation
        #: most recently returned to the CPU without filling; cleared on the
        #: next request, mirroring the hardware's clean-up.
        self.buffer: Optional[TLBEntry] = None

    # -- the trusted-OS-managed registers ---------------------------------------

    def set_secure_region(
        self, sbase: int, ssize: int, victim_asid: Optional[int] = None
    ) -> None:
        """Program the ``sbase``/``ssize`` (and victim process) registers."""
        if ssize < 0:
            raise ValueError("ssize cannot be negative")
        self.sbase = sbase
        self.ssize = ssize
        if victim_asid is not None:
            self.victim_asid = victim_asid
        # Reprogramming the region changes the Sec_D predicate out from
        # under the run kernel's proofs: conservatively break any active
        # hit-run (see BaseTLB.translate_runs).
        self._mutations += 1

    def is_secure(self, vpn: int, asid: int) -> bool:
        """The ``Sec_D`` predicate for a request."""
        return (
            asid == self.victim_asid
            and self.ssize > 0
            and self.sbase <= vpn < self.sbase + self.ssize
        )

    # -- access handling ----------------------------------------------------------

    def _oracle_universe(self, asid: int):
        # With no secure region programmed for this ASID, Sec_D is
        # identically false and -- cold-starting from an empty TLB, so no
        # Sec-bit entry can ever become resident -- Sec_R too: every miss
        # takes Figure 3's plain-SA branch and the whole TLB is the fill
        # universe.  A programmed region vetoes engagement outright (the
        # random-fill paths are not a function of the trace); programming
        # one later bumps the mutation epoch, failing the resume check.
        if self.ssize > 0 and asid == self.victim_asid:
            return None
        return self._nsets, self._sets

    def translate(self, vpn: int, asid: int, translator: Translator) -> AccessResult:
        self.buffer = None  # The buffer is cleaned after each return.
        return super().translate(vpn, asid, translator)

    def translate_fast(self, vpn: int, asid: int, translator: Translator) -> int:
        self.buffer = None  # Same clean-up as the reference path.
        return super().translate_fast(vpn, asid, translator)

    def _handle_miss(
        self, vpn: int, asid: int, translator: Translator
    ) -> AccessResult:
        walk = translator.walk(vpn, asid)
        miss_cycles = self.config.hit_latency + walk.cycles
        sec_d = self.is_secure(vpn, asid)
        replacement_victim = self._policy.select(self._set_for(vpn, walk.level))
        sec_r = replacement_victim.valid and replacement_victim.sec

        if not sec_d and not sec_r:
            evicted = self._fill_entry(
                replacement_victim, vpn, walk.ppn, asid, level=walk.level
            )
            return AccessResult(
                hit=False,
                ppn=walk.ppn,
                cycles=miss_cycles,
                evicted=evicted,
                filled=True,
            )

        if sec_d:
            # Random fill from inside the secure region.
            random_vpn = self.engine.secure_page(self.sbase, self.ssize)
        else:
            # Sec_R = 1, Sec_D = 0: protect R by filling a random page over
            # the secure region's sets instead of D.
            random_vpn = self.engine.randomized_set_page(
                vpn, self.sbase, self.ssize, self.config.sets
            )
        self._random_fill(random_vpn, asid, translator)

        # D's translation goes back through the buffer, never into the TLB.
        # A no-fill is replacement-visible state the run kernel must hear
        # about even when this miss runs *outside* translate_runs (an
        # evented quantum interleaved with run-kernel ones): the requested
        # page was touched yet left non-resident, which breaks the
        # threshold proof's "touched => resident" invariant.
        self._mutations += 1
        self.stats.no_fills += 1
        buffered = TLBEntry()
        buffered.fill(vpn, walk.ppn, asid, now=self._clock, sec=sec_d)
        self.buffer = buffered
        return AccessResult(
            hit=False,
            ppn=walk.ppn,
            cycles=miss_cycles,
            evicted=None,
            filled=False,
        )

    def _run_miss_fast(
        self, vpn: int, asid: int, translator: Translator, wcache=None
    ) -> int:
        # Design-specific run-safety predicate: with no Sec-bit entry
        # resident (Sec_R can't be 1) and a non-secure request (Sec_D =
        # 0), Figure 3 degenerates to the plain SA fill, which the
        # allocation-free twin handles.  Any secure involvement takes the
        # reference _handle_miss -- random fills, the no-fill buffer and
        # both walks of the Sec paths stay implemented exactly once.
        if self._sec_resident or self.is_secure(vpn, asid):
            result = self._handle_miss(vpn, asid, translator)
            if not result.filled:
                return (result.cycles << 2) | 2
            evicted = result.evicted
            if evicted is not None:
                self._evicted_vpn = evicted.vpn
                self._evicted_asid = evicted.asid
                self._evicted_level = evicted.level
                return (result.cycles << 2) | 3
            return result.cycles << 2
        if wcache is not None:
            packed_walk = wcache.get(vpn, -1)
            if packed_walk >= 0:
                translator.walks += 1
                level = packed_walk & 3
                cycles = (packed_walk >> 2) & 0x3FFFF
                ppn = packed_walk >> 20
            else:
                walk = translator.walk(vpn, asid)
                level = walk.level
                cycles = walk.cycles
                ppn = walk.ppn
                if cycles < 1 << 18:
                    wcache[vpn] = (ppn << 20) | (cycles << 2) | level
        else:
            walk = translator.walk(vpn, asid)
            level = walk.level
            cycles = walk.cycles
            ppn = walk.ppn
        if level:
            index = (vpn >> (9 * level)) % self._nsets
        else:
            index = vpn % self._nsets
        # Victim choice and fill: _victim_fast's queue pop and _fill_fast,
        # inlined (once per architectural miss; the frames matter).
        # Narrow sets scan directly -- intervening hits stale a tiny
        # queue faster than its pops repay the rebuild sort.
        candidates = self._sets[index]
        victim = None
        if type(self._policy) is LRUPolicy:
            if len(candidates) <= 8:
                oldest = None
                for entry in candidates:
                    if not entry.valid:
                        victim = entry
                        break
                    lu = entry.last_used
                    if oldest is None or lu < oldest:
                        oldest = lu
                        victim = entry
            else:
                set_key = (index << 2) | level
                queue = self._victim_queues.get(set_key)
                if queue is not None and queue[0] == self._inval_epoch:
                    k = queue[1]
                    n = len(queue)
                    while k < n:
                        entry = queue[k]
                        if entry.valid and entry.last_used == queue[k + 1]:
                            queue[1] = k + 2
                            victim = entry
                            break
                        k += 2
                if victim is None:
                    victim = self._rebuild_victim_queue(candidates, set_key)
        else:
            victim = self._policy.select(candidates)
        tlb_index = self._index
        action = 0
        if victim.valid:
            self.stats.evictions += 1
            self._mutations += 1
            old_level = victim.level
            tlb_index.pop(
                (victim.vpn >> (9 * old_level), victim.asid, old_level), None
            )
            if old_level:
                self._super_entries -= 1
            if victim.sec:
                self._sec_resident -= 1
            self._evicted_vpn = victim.vpn
            self._evicted_asid = victim.asid
            self._evicted_level = old_level
            action = 3
        if level:
            mask = (1 << (9 * level)) - 1
            victim.vpn = vpn & ~mask
            victim.ppn = ppn & ~mask
            self._super_entries += 1
            tlb_index[(vpn >> (9 * level), asid, level)] = victim
        else:
            victim.vpn = vpn
            victim.ppn = ppn
            tlb_index[(vpn, asid, 0)] = victim
        victim.asid = asid
        victim.valid = True
        victim.level = level
        victim.sec = False
        now = self._clock
        victim.last_used = now
        victim.filled_at = now
        self.stats.fills += 1
        return ((self._hit_latency + cycles) << 2) | action

    def _random_fill(self, vpn: int, asid: int, translator: Translator) -> None:
        """Install the RFE-chosen page ``D'``, evicting its set's LRU ``R'``."""
        existing = self._find(vpn, asid)
        if existing is not None:
            # D' already cached: the fill degenerates to an LRU refresh.
            existing.touch(self._clock)
            return
        walk = translator.walk(vpn, asid)
        victim = self._policy.select(self._set_for(vpn))
        self._fill_entry(
            victim, vpn, walk.ppn, asid, sec=self.is_secure(vpn, asid)
        )
        self.stats.random_fills += 1
