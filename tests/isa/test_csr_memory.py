"""Direct unit tests for the CSR file and physical memory."""

import pytest

from repro.isa.csr import CSR_ADDRESSES, CSRError, CSRFile, READ_ONLY_CSRS
from repro.isa.memory import Memory, MisalignedAccess


class TestCSRFile:
    def test_defaults(self):
        csr = CSRFile()
        assert csr.read("process_id") == 1
        assert csr.read("sbase") == 0
        assert csr.read("ssize") == 0

    def test_write_and_read_back(self):
        csr = CSRFile()
        csr.write("process_id", 2)
        assert csr.read("process_id") == 2

    def test_counters_require_binding(self):
        csr = CSRFile()
        with pytest.raises(CSRError):
            csr.read("cycle")
        csr.bind_counter("cycle", lambda: 42)
        assert csr.read("cycle") == 42

    def test_counters_are_read_only(self):
        csr = CSRFile()
        for name in READ_ONLY_CSRS:
            with pytest.raises(CSRError):
                csr.write(name, 1)

    def test_bind_counter_rejects_writable_csrs(self):
        with pytest.raises(CSRError):
            CSRFile().bind_counter("sbase", lambda: 0)

    def test_unknown_names_rejected(self):
        csr = CSRFile()
        with pytest.raises(CSRError):
            csr.read("nonexistent")
        with pytest.raises(CSRError):
            csr.write("nonexistent", 1)
        with pytest.raises(CSRError):
            csr.on_write("nonexistent", lambda value: None)

    def test_negative_values_rejected(self):
        with pytest.raises(CSRError):
            CSRFile().write("ssize", -1)

    def test_write_hooks_fire(self):
        csr = CSRFile()
        seen = []
        csr.on_write("sbase", seen.append)
        csr.write("sbase", 7)
        csr.write("sbase", 9)
        assert seen == [7, 9]

    def test_addresses_table_covers_all_csrs(self):
        assert set(CSR_ADDRESSES) >= READ_ONLY_CSRS
        assert len(set(CSR_ADDRESSES.values())) == len(CSR_ADDRESSES)


class TestMemory:
    def test_unwritten_memory_reads_zero(self):
        assert Memory().load(0x1000) == 0

    def test_store_load_roundtrip(self):
        memory = Memory()
        memory.store(0x1000, 0xDEADBEEF)
        assert memory.load(0x1000) == 0xDEADBEEF

    def test_values_wrap_to_64_bits(self):
        memory = Memory()
        memory.store(0, (1 << 64) + 5)
        assert memory.load(0) == 5
        memory.store(8, -1)
        assert memory.load(8) == (1 << 64) - 1

    def test_misaligned_access_rejected(self):
        memory = Memory()
        with pytest.raises(MisalignedAccess):
            memory.load(0x1001)
        with pytest.raises(MisalignedAccess):
            memory.store(4, 1)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Memory().load(-8)

    def test_len_counts_written_words(self):
        memory = Memory()
        memory.store(0, 1)
        memory.store(8, 2)
        memory.store(0, 3)  # overwrite
        assert len(memory) == 2


class TestTLBStats:
    def test_snapshot_is_independent(self):
        from repro.tlb import TLBStats

        stats = TLBStats()
        stats.record_access(hit=False, asid=1)
        snap = stats.snapshot()
        stats.record_access(hit=True, asid=1)
        assert snap.accesses == 1 and stats.accesses == 2
        assert snap.misses_by_asid == {1: 1}

    def test_rates(self):
        from repro.tlb import TLBStats

        stats = TLBStats()
        assert stats.hit_rate == 0.0 and stats.miss_rate == 0.0
        stats.record_access(hit=True, asid=1)
        stats.record_access(hit=False, asid=2)
        assert stats.hit_rate == 0.5
        assert stats.miss_rate == 0.5

    def test_mpki(self):
        from repro.tlb import TLBStats

        stats = TLBStats()
        for _ in range(5):
            stats.record_access(hit=False, asid=1)
        assert stats.mpki(instructions=1000) == 5.0
        with pytest.raises(ValueError):
            stats.mpki(instructions=0)

    def test_reset(self):
        from repro.tlb import TLBStats

        stats = TLBStats()
        stats.record_access(hit=False, asid=1)
        stats.fills += 1
        stats.reset()
        assert stats.accesses == 0 and stats.fills == 0
        assert stats.misses_by_asid == {}
