"""Channel capacity of a TLB timing channel (Section 5.2, Equation 1).

The victim's behaviour ``B`` is binary: its secret-dependent translation
either maps to the TLB block the attacker tests or it does not, and the
paper gives the attacker the optimal scenario where both cases are equally
likely.  The attacker's observation ``O`` is also binary: a slow (miss) or
fast (hit) final access.  With

* ``p1`` -- probability of observing a miss when the victim's access maps,
* ``p2`` -- probability of observing a miss when it does not map,

the leaked information is the mutual information ``I(B; O)`` of Equation 1.
A TLB defends an attack type iff its channel capacity is zero -- the
observation distribution is identical under both behaviours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _plogp_term(joint: float, marginal_b: float, marginal_o: float) -> float:
    """One ``p(b,o) * log2(p(b,o) / (p(b) p(o)))`` term, with 0 log 0 = 0.

    A marginal can round to exactly 0 while the joint keeps a stray ulp
    (e.g. ``p1 = 1.0, p2 = 1.0 - 2**-53`` makes ``p_hit`` underflow to 0
    with a joint of ~5.6e-17); since ``p(b,o) <= p(o)`` holds exactly,
    such a term is vanishing and counts as 0 rather than dividing by 0.
    """
    if joint <= 0.0 or marginal_b * marginal_o <= 0.0:
        return 0.0
    return joint * math.log2(joint / (marginal_b * marginal_o))


def channel_capacity(p1: float, p2: float) -> float:
    """Mutual information ``I(B; O)`` in bits (Equation 1).

    ``p1`` and ``p2`` are the miss probabilities of Table 3; the victim's
    two behaviours are taken as equiprobable.  The result lies in [0, 1]:
    0 when ``p1 == p2`` (no leak) and 1 when the observation determines the
    behaviour (``p1, p2`` in {0, 1} and different).
    """
    for name, value in (("p1", p1), ("p2", p2)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be a probability, got {value}")
    p_miss = (p1 + p2) / 2.0
    p_hit = 1.0 - p_miss
    total = 0.0
    # B = mapped (probability 1/2).
    total += _plogp_term(p1 / 2.0, 0.5, p_miss)
    total += _plogp_term((1.0 - p1) / 2.0, 0.5, p_hit)
    # B = not mapped (probability 1/2).
    total += _plogp_term(p2 / 2.0, 0.5, p_miss)
    total += _plogp_term((1.0 - p2) / 2.0, 0.5, p_hit)
    # Clamp tiny negative rounding artifacts.
    return max(total, 0.0)


@dataclass(frozen=True)
class ChannelEstimate:
    """Empirical p1/p2/capacity estimated from trial counts (Table 4)."""

    #: Misses observed over the "mapped" trials (Table 4's n_{M,M}).
    misses_mapped: int
    #: Misses observed over the "not mapped" trials (Table 4's n_{N,M}).
    misses_unmapped: int
    #: Trials run per behaviour (the paper uses 500 each).
    trials_per_behaviour: int

    def __post_init__(self) -> None:
        if self.trials_per_behaviour <= 0:
            raise ValueError("need at least one trial per behaviour")
        for name in ("misses_mapped", "misses_unmapped"):
            count = getattr(self, name)
            if not 0 <= count <= self.trials_per_behaviour:
                raise ValueError(
                    f"{name}={count} outside [0, {self.trials_per_behaviour}]"
                )

    @property
    def p1(self) -> float:
        return self.misses_mapped / self.trials_per_behaviour

    @property
    def p2(self) -> float:
        return self.misses_unmapped / self.trials_per_behaviour

    @property
    def capacity(self) -> float:
        return channel_capacity(self.p1, self.p2)

    def defends(self, threshold: float = None) -> bool:
        """True if the measured capacity is ~0 (the paper's "about 0").

        The default threshold is sample-size aware: the plug-in mutual-
        information estimator is biased upward by O(1/N), so small trial
        counts get a proportional allowance on top of the paper's ~0.05
        "about 0" band.  Vulnerable rows measure C* >= 0.8, so the margin
        is wide either way.
        """
        if threshold is None:
            threshold = 0.05 + 4.0 / self.trials_per_behaviour
        return self.capacity <= threshold
