"""Unit tests for the shared retry-pacing helper.

Every executor backend (the multiprocessing pool and the work-stealing
lease protocol) computes its retry schedule through
:func:`repro.runner.backoff.backoff_delay`; these tests pin the contract
both rely on: exponential growth, a hard cap, and jitter that is a pure
function of ``(seed, ident, attempt)`` so every host agrees exactly.
"""

import pytest

from repro.runner.backoff import JITTER_FRACTION, backoff_delay


class TestBackoffDelay:
    def test_grows_exponentially_before_the_cap(self):
        base, cap = 0.1, 1000.0
        raws = [
            backoff_delay(attempt, base=base, cap=cap, ident="c", seed=1)
            for attempt in range(1, 6)
        ]
        for attempt, delay in enumerate(raws, start=1):
            raw = base * 2 ** (attempt - 1)
            # Jitter only ever adds, and never more than the fraction.
            assert raw <= delay < raw * (1.0 + JITTER_FRACTION)

    def test_cap_bounds_the_raw_delay(self):
        delay = backoff_delay(50, base=1.0, cap=2.0, ident="c", seed=1)
        assert 2.0 <= delay < 2.0 * (1.0 + JITTER_FRACTION)

    def test_deterministic_across_calls(self):
        args = dict(base=0.05, cap=5.0, ident="table2/SA/x", seed=2019)
        assert backoff_delay(3, **args) == backoff_delay(3, **args)

    def test_jitter_fans_distinct_cells_out(self):
        # Two cells failing together must not thunder back as one herd:
        # their jitters differ because their idents do.
        delays = {
            backoff_delay(1, base=1.0, cap=5.0, ident=f"cell-{i}", seed=7)
            for i in range(8)
        }
        assert len(delays) > 1

    def test_seed_changes_the_jitter_not_the_raw_delay(self):
        one = backoff_delay(2, base=1.0, cap=50.0, ident="c", seed=1)
        two = backoff_delay(2, base=1.0, cap=50.0, ident="c", seed=2)
        assert one != two
        for delay in (one, two):
            assert 2.0 <= delay < 2.0 * (1.0 + JITTER_FRACTION)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(0)

    def test_negative_base_or_cap_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(1, base=-0.1)
        with pytest.raises(ValueError):
            backoff_delay(1, cap=-1.0)

    def test_zero_base_means_no_wait(self):
        assert backoff_delay(4, base=0.0, cap=5.0, ident="c", seed=3) == 0.0
