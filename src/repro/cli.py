"""Command-line interface to every experiment in the reproduction.

``python -m repro <command>`` regenerates the paper's tables and figures:

=============  =============================================================
``table2``     the 24 vulnerabilities, derived from the three-step model
``table4``     the security evaluation of the SA/SP/RF designs
``table7``     the Appendix B extension (and its measured evaluation)
``fig7``       the performance grid (IPC / MPKI series)
``table5``     the area model vs the paper's synthesis results
``mitigations``the Section 2.3 mitigation ladder (10/14/18/14/24)
``hierarchy``  the two-level TLB security study
``hierarchy-sweep`` the declarative cross-design matrix (L1 x L2 x PWC)
``largepages`` the large-page software mitigation
``sweeps``     the SP-partition / RF-region / replacement-policy sweeps
``attack``     the TLBleed-style RSA key recovery demo
``covert``     the covert-channel demo
``trace``      a toy scenario with the JSONL event tracer attached
``run-all``    every experiment, sharded across workers with caching
``serve``      the async HTTP experiment service over the runner
``analyze``    static leakage checker (guest) + invariant linter (host)
``bench``      fast-path vs reference regression bench (BENCH_fastpath.json)
=============  =============================================================

Full-fidelity runs (the paper's 500-trial protocol, the complete Figure 7
grid) are available through ``--trials`` / ``--full``; defaults are sized
for interactive use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.model import (
        candidate_patterns,
        count_survivors_by_rule,
        derive_vulnerabilities,
        enumerate_triples,
        format_table,
        table2_vulnerabilities,
    )

    if args.verbose:
        for rule, count in count_survivors_by_rule(enumerate_triples()).items():
            print(f"{rule:32} -> {count:4}")
        print(f"candidates: {len(candidate_patterns())}")
    derived = derive_vulnerabilities()
    print(format_table(derived))
    derived_set = set(derived)
    expected_set = set(table2_vulnerabilities())
    match = derived_set == expected_set
    print(f"\nexact match with the paper's Table 2: {match}")
    for pretty in sorted(v.pretty() for v in expected_set - derived_set):
        print(f"  missing (in paper, not derived):   {pretty}")
    for pretty in sorted(v.pretty() for v in derived_set - expected_set):
        print(f"  unexpected (derived, not in paper): {pretty}")
    return 0 if match else 1


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.security import (
        EvaluationConfig,
        SecurityEvaluator,
        TLBKind,
        defended_counts,
        format_table4,
    )

    evaluator = SecurityEvaluator(EvaluationConfig(trials=args.trials))
    kinds = [TLBKind[name] for name in args.designs]
    table = evaluator.evaluate_table4(kinds=kinds)
    print(format_table4(table))
    counts = defended_counts(table)
    expected = {TLBKind.SA: 10, TLBKind.SP: 14, TLBKind.RF: 24}
    ok = all(counts[kind] == expected[kind] for kind in kinds)
    print(f"\nheadline counts match the paper: {ok}")
    return 0 if ok else 1


def _cmd_table7(args: argparse.Namespace) -> int:
    from repro.model.extended import (
        invalidation_only_vulnerabilities,
        strategy_label,
    )
    from repro.security import EvaluationConfig, SecurityEvaluator, TLBKind

    rows = invalidation_only_vulnerabilities()
    print(f"extended-model vulnerabilities: {len(rows)} (paper's Table 7: 50)")
    for vulnerability in sorted(
        rows, key=lambda v: (strategy_label(v), v.pattern.pretty())
    ):
        print(f"  {strategy_label(vulnerability):48} {vulnerability.pretty()}")
    if args.evaluate:
        evaluator = SecurityEvaluator(EvaluationConfig(trials=args.trials))
        print("\nmeasured defence counts under the hypothetical targeted-"
              "invalidation ISA:")
        for kind in (TLBKind.SA, TLBKind.SP, TLBKind.RF):
            results = evaluator.evaluate_extended(kind)
            defended = sum(1 for result in results if result.defended)
            print(f"  {kind.value:3}: {defended}/{len(results)}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.perf import (
        PerfSettings,
        figure7,
        format_figure7,
        headline_ratios,
    )
    from repro.security import TLBKind

    settings = PerfSettings(
        spec_instructions=args.spec_instructions, key_bits=args.key_bits
    )
    runs = (50, 100, 150) if args.full else (args.rsa_runs,)
    cells = figure7(
        kinds=tuple(TLBKind[name] for name in args.designs),
        rsa_runs=runs,
        settings=settings,
        config_labels=args.configs,
    )
    print(format_figure7(cells))
    print("\nheadline ratios:")
    for name, value in sorted(headline_ratios(cells).items()):
        print(f"  {name:30} {value:.3f}")
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    from repro.perf import AreaModel

    model = AreaModel()
    print(model.table5())
    worst_luts, worst_registers = model.max_relative_error()
    print(
        f"\nfit quality: worst LUT error {worst_luts:.1%}, "
        f"worst register error {worst_registers:.1%}"
    )
    return 0


def _cmd_mitigations(args: argparse.Namespace) -> int:
    from repro.ablations import (
        evaluate_all_mitigations,
        format_mitigation_ladder,
    )

    ladder = evaluate_all_mitigations(trials=args.trials)
    print(format_mitigation_ladder(ladder))
    ok = all(result.matches_paper for result in ladder)
    return 0 if ok else 1


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.ablations import evaluate_hierarchies, format_hierarchy_results

    results = evaluate_hierarchies(trials=args.trials)
    print(format_hierarchy_results(results))
    return 0


def _cmd_hierarchy_sweep(args: argparse.Namespace) -> int:
    from repro.ablations import (
        SweepDesignResult,
        evaluate_sweep_cell,
        format_hierarchy_sweep,
        refill_leakage,
        sweep_perf_point,
        sweep_rows,
        sweep_specs,
    )

    rows = sweep_rows()
    results = []
    for spec in sweep_specs():
        estimates = {
            vulnerability: evaluate_sweep_cell(
                spec, vulnerability, trials=args.trials
            )
            for _, vulnerability in rows
        }
        results.append(
            SweepDesignResult(
                label=spec.label(),
                spec=spec.to_dict(),
                estimates=estimates,
                perf=sweep_perf_point(spec, rsa_runs=args.rsa_runs),
            )
        )
    leakage = None if args.no_leakage else refill_leakage()
    print(format_hierarchy_sweep(results, leakage))
    return 0


def _cmd_largepages(args: argparse.Namespace) -> int:
    from repro.ablations import (
        evaluate_large_pages,
        format_large_page_comparison,
    )

    result = evaluate_large_pages(trials=args.trials)
    print(format_large_page_comparison(result, 10, 13))
    return 0


def _cmd_sweeps(args: argparse.Namespace) -> int:
    from repro.ablations import (
        format_partition_sweep,
        format_region_sweep,
        sweep_replacement_policy,
        sweep_rf_region,
        sweep_sp_partition,
    )

    print("== SP TLB partition split ==")
    print(format_partition_sweep(sweep_sp_partition()))
    print("\n== RF TLB secure-region size ==")
    print(format_region_sweep(sweep_rf_region(trials=args.trials)))
    print("\n== replacement policy vs TLBleed ==")
    for point in sweep_replacement_policy():
        print(
            f"  {point.policy.value:8} accuracy {point.accuracy:.1%}"
            f"{'  (full recovery)' if point.recovered_exactly else ''}"
        )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks import tlbleed_attack
    from repro.security import TLBKind
    from repro.workloads.rsa import generate_key

    key = generate_key(bits=args.key_bits, seed=args.seed)
    for name in args.designs:
        result = tlbleed_attack(TLBKind[name], key=key, seed=args.seed)
        print(f"== {name} TLB ==")
        print(f"true d    : {result.true_bits}")
        print(f"recovered : {result.recovered_bits}")
        print(
            f"accuracy  : {result.accuracy:.1%}"
            f"{'  (FULL KEY RECOVERED)' if result.recovered_exactly else ''}\n"
        )
    return 0


def _cmd_covert(args: argparse.Namespace) -> int:
    from repro.attacks import random_message, transmit
    from repro.security import TLBKind

    message = random_message(args.bits, seed=args.seed)
    for name in args.designs:
        result = transmit(message, TLBKind[name], seed=args.seed)
        print(
            f"{name:3}: BER {result.bit_error_rate:6.1%}  "
            f"capacity {result.empirical_capacity():.3f} b/symbol  "
            f"rate {result.bits_per_kilocycle:.2f} b/kcycle"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.security import TLBKind
    from repro.sim import run_scenario

    report = run_scenario(
        args.scenario,
        target=args.out,
        kind=TLBKind[args.design],
        seed=args.seed,
    )
    destination = args.out if args.out is not None else "stdout"
    print(
        f"{report.events} events -> {destination}", file=sys.stderr
    )
    print(f"{report.outcome}", file=sys.stderr)
    stats = report.stats
    print(
        f"accesses {stats.accesses} ({stats.hit_rate:.0%} hits)"
        f" · walks {stats.walks} · fills {stats.fills}"
        f" · evictions {stats.evictions} · flushes {stats.flushes}"
        f" · switches {stats.context_switches}",
        file=sys.stderr,
    )
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.runner import run_all

    options = {}
    if args.no_fastpath:
        options["fig7_fastpath"] = False
    if args.kernel != "run":
        options["kernel"] = args.kernel
    report = run_all(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        filters=args.filter,
        results_dir=args.results_dir,
        cache_dir=args.cache_dir,
        log_path=args.log,
        options=options,
        progress=not args.quiet,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        executor=args.executor,
        workers=args.workers,
    )
    print(
        f"{report.completed}/{report.units_total} cells ok"
        f" · {report.cells_per_second:.1f} cells/s"
        f" · cache {report.cache_hits} hits / {report.cache_misses} misses"
        f" ({report.cache_hit_rate:.0%})"
        + (f" / {report.cache_corrupt} corrupt" if report.cache_corrupt else "")
        + f" · retries {report.retries}"
        f" · worker crashes {report.worker_crashes}"
    )
    if report.executor == "work-stealing":
        print(
            f"work-stealing: {report.cells_stolen} cells stolen"
            f" · {report.leases_reclaimed} leases reclaimed"
            f" · {report.duplicate_completions} duplicate completions"
            f" · {report.fallback_cells} fallback cells"
            f" · {report.quarantined} quarantined"
            + (
                f" · {report.torn_journals} torn journals"
                if report.torn_journals else ""
            )
        )
    kernel_total = report.kernel_run_hits + report.kernel_fallback_accesses
    if kernel_total:
        share = report.kernel_run_hits / kernel_total
        print(
            f"run kernel: {report.kernel_run_hits:,} run hits /"
            f" {report.kernel_fallback_accesses:,} probed"
            f" ({share:.0%} run share)"
            f" · {report.kernel_runs:,} runs"
            f" · backend {report.kernel_backend}"
        )
    if report.artifacts:
        print(f"artifacts: {', '.join(report.artifacts)}")
    if report.failed:
        print(f"FAILED: {', '.join(report.failed)}")
    if report.interrupted:
        print(
            f"interrupted: {report.completed}/{report.units_total} cells"
            " done; rerun with the same cache to resume"
        )
        return 130
    return 0 if report.ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.runner.distributed import worker_loop

    completed = worker_loop(
        args.cache_dir,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        idle_exit=(None if args.idle_exit <= 0 else args.idle_exit),
        quiet=args.quiet,
    )
    # A worker that found no board (or no work) is not an error: workers
    # are launched speculatively on any host that mounts the cache.
    return 0 if completed >= 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeApp

    app = ServeApp(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        max_concurrency=args.max_concurrency,
        dispatchers=args.dispatchers,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        drain_timeout=args.drain_timeout,
        quiet=args.quiet,
    )
    return app.run()


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    import tempfile
    from pathlib import Path

    from repro.faults import run_campaigns

    def run(workdir: Path) -> int:
        reports = run_campaigns(
            args.campaign, workdir, seed=args.seed, design=args.design,
            workers=args.workers,
        )
        if args.json:
            payload = [report.to_dict() for report in reports]
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print("\n\n".join(report.to_text() for report in reports))
        return 0 if all(report.ok for report in reports) else 1

    if args.workdir is not None:
        return run(Path(args.workdir))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return run(Path(tmp))


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf.bench import (
        CounterDivergence,
        bench,
        format_report,
        with_history,
    )

    try:
        report = bench(
            quick=args.quick,
            events=args.events,
            skip_cells=args.skip_cells,
        )
    except CounterDivergence as divergence:
        print(f"COUNTER DIVERGENCE: {divergence}", file=sys.stderr)
        return 2
    if args.out:
        # Carry the previous artifact's headline history forward so the
        # trend survives the overwrite.
        previous = None
        try:
            with open(args.out, encoding="utf-8") as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            previous = None
        report = with_history(report, previous)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    # The speedup floor only gates full-size runs: --quick is the CI
    # differential smoke, whose shared machines make timing meaningless
    # (counter divergence still exits 2 above).
    if not args.quick and not report["headline"]["meets_floor"]:
        return 1
    return 0


def _add_design_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--designs",
        nargs="+",
        choices=["SA", "SP", "RF"],
        default=["SA", "SP", "RF"],
        help="TLB designs to run (default: all three)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Secure TLBs' (ISCA 2019)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table2 = subparsers.add_parser("table2", help="derive the 24 vulnerabilities")
    table2.add_argument("--verbose", action="store_true")
    table2.set_defaults(func=_cmd_table2)

    table4 = subparsers.add_parser("table4", help="security evaluation")
    table4.add_argument("--trials", type=int, default=100)
    _add_design_argument(table4)
    table4.set_defaults(func=_cmd_table4)

    table7 = subparsers.add_parser("table7", help="Appendix B extension")
    table7.add_argument("--evaluate", action="store_true")
    table7.add_argument("--trials", type=int, default=60)
    table7.set_defaults(func=_cmd_table7)

    fig7 = subparsers.add_parser("fig7", help="performance evaluation")
    fig7.add_argument("--rsa-runs", type=int, default=10)
    fig7.add_argument("--spec-instructions", type=int, default=80_000)
    fig7.add_argument("--key-bits", type=int, default=64)
    fig7.add_argument("--configs", nargs="+", default=None)
    fig7.add_argument("--full", action="store_true",
                      help="the paper's 50/100/150 decryption series")
    _add_design_argument(fig7)
    fig7.set_defaults(func=_cmd_fig7)

    table5 = subparsers.add_parser("table5", help="area model")
    table5.set_defaults(func=_cmd_table5)

    mitigations = subparsers.add_parser(
        "mitigations", help="Section 2.3 mitigation ladder"
    )
    mitigations.add_argument("--trials", type=int, default=60)
    mitigations.set_defaults(func=_cmd_mitigations)

    hierarchy = subparsers.add_parser(
        "hierarchy", help="two-level TLB hierarchy security study"
    )
    hierarchy.add_argument("--trials", type=int, default=40)
    hierarchy.set_defaults(func=_cmd_hierarchy)

    hierarchy_sweep = subparsers.add_parser(
        "hierarchy-sweep",
        help="declarative cross-design sweep: L1 x L2 x page-walk cache",
        description=(
            "Evaluate every declarative hierarchy design (L1 in SA/SP/RF,"
            " L2 in SA/SP/RF/none, page-walk cache on/off) against one"
            " representative Table 2 row per attack strategy, plus an RSA"
            " performance point per design and the refill-leakage"
            " cross-check on the inter-level refill event stream."
        ),
    )
    hierarchy_sweep.add_argument("--trials", type=int, default=25)
    hierarchy_sweep.add_argument("--rsa-runs", type=int, default=10)
    hierarchy_sweep.add_argument(
        "--no-leakage", action="store_true",
        help="skip the refill-leakage cross-check footer",
    )
    hierarchy_sweep.set_defaults(func=_cmd_hierarchy_sweep)

    largepages = subparsers.add_parser(
        "largepages", help="large-page software mitigation"
    )
    largepages.add_argument("--trials", type=int, default=40)
    largepages.set_defaults(func=_cmd_largepages)

    sweeps = subparsers.add_parser("sweeps", help="design-space sweeps")
    sweeps.add_argument("--trials", type=int, default=80)
    sweeps.set_defaults(func=_cmd_sweeps)

    attack = subparsers.add_parser("attack", help="TLBleed key recovery")
    attack.add_argument("--key-bits", type=int, default=64)
    attack.add_argument("--seed", type=int, default=2019)
    _add_design_argument(attack)
    attack.set_defaults(func=_cmd_attack)

    covert = subparsers.add_parser("covert", help="covert channel")
    covert.add_argument("--bits", type=int, default=200)
    covert.add_argument("--seed", type=int, default=1)
    _add_design_argument(covert)
    covert.set_defaults(func=_cmd_covert)

    trace = subparsers.add_parser(
        "trace",
        help="run a toy scenario with the event tracer attached",
        description=(
            "Run a small-parameter scenario through the repro.sim core with"
            " a JSONL event tracer subscribed to the memory-system bus;"
            " every TLB access/walk/fill/evict/flush/context-switch becomes"
            " one JSON record."
        ),
    )
    from repro.sim.trace import SCENARIOS

    trace.add_argument("scenario", choices=sorted(SCENARIOS))
    trace.add_argument(
        "--design", choices=["SA", "SP", "RF"], default="SA",
        help="TLB design under trace (default: SA)",
    )
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="JSONL output path (default: stdout)",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_cmd_trace)

    run_all = subparsers.add_parser(
        "run-all",
        help="run every experiment via the parallel runner",
        description=(
            "Shard every registered experiment into cells, run them across"
            " worker processes with result caching, and merge the"
            " full-fidelity results/ artifacts (byte-identical to the"
            " serial scripts/run_full_evaluation.py)."
        ),
    )
    run_all.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: CPU count)",
    )
    run_all.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not update the result cache",
    )
    run_all.add_argument(
        "--filter", action="append", default=None, metavar="GLOB",
        help=(
            "only run units matching this glob against the experiment name"
            " or unit identity (repeatable), e.g. 'table2*' or 'table4/SA/*'"
        ),
    )
    run_all.add_argument(
        "--results-dir", default="results",
        help="artifact output directory (default: results)",
    )
    run_all.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: .repro-cache)",
    )
    run_all.add_argument(
        "--log", default=None, metavar="PATH",
        help="JSONL run log (default: <results-dir>/run_log.jsonl)",
    )
    run_all.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per cell before marking it failed (default: 2)",
    )
    run_all.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "per-cell wall-clock watchdog: kill and requeue any cell"
            " running longer than this (default: off)"
        ),
    )
    run_all.add_argument(
        "--executor", choices=["pool", "work-stealing"], default="pool",
        help=(
            "execution backend: the per-host multiprocessing pool, or the"
            " lease-based multi-host work-stealing executor coordinating"
            " through the shared cache directory (default: pool)"
        ),
    )
    run_all.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help=(
            "local stealing workers to spawn with --executor work-stealing"
            " (default: 2); remote hosts join with"
            " 'python -m repro worker <cache-dir>'"
        ),
    )
    run_all.add_argument(
        "--no-fastpath", action="store_true",
        help=(
            "drive the Figure 7 cells through the reference model instead"
            " of the repro.sim.kernel fast path (results are identical;"
            " this is the differential escape hatch)"
        ),
    )
    run_all.add_argument(
        "--kernel", choices=("access", "run"), default="run",
        help=(
            "batched translation kernel for the fast path: 'run' retires"
            " whole hit-runs against structural proofs, 'access' probes"
            " per position (results are identical; a second differential"
            " escape hatch, orthogonal to --no-fastpath)"
        ),
    )
    run_all.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    run_all.set_defaults(func=_cmd_run_all)

    worker = subparsers.add_parser(
        "worker",
        help="join a work-stealing run as an independent worker",
        description=(
            "Steal cells from the lease board inside a shared cache"
            " directory: claim cells through atomic lease files, renew"
            " heartbeats while computing, publish sealed results, and"
            " reclaim stale leases from crashed peers.  Run this on any"
            " host that mounts the same cache directory as a"
            " 'run-all --executor work-stealing' parent."
        ),
    )
    worker.add_argument(
        "cache_dir",
        help="the shared cache directory holding the lease board",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="stable worker identity (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="how often to re-scan an idle board (default: 0.5)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=30.0, metavar="SECONDS",
        help=(
            "exit after this long with no claimable work; <= 0 waits"
            " forever (default: 30)"
        ),
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress worker log lines"
    )
    worker.set_defaults(func=_cmd_worker)

    serve = subparsers.add_parser(
        "serve",
        help="async HTTP experiment service over the runner",
        description=(
            "Serve the experiment registry over HTTP/JSON: POST /v1/jobs"
            " submits a spec (experiment, design, options, trials,"
            " priority), GET /v1/jobs/{id} streams per-cell progress from"
            " the JSONL telemetry, GET /v1/results/{hash} answers from the"
            " content-addressed result store with its SHA-256 envelope"
            " verified on read.  Identical in-flight submissions dedup to"
            " one simulation; per-client token buckets rate-limit"
            " submissions.  See docs/service.md."
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8321,
        help="bind port; 0 lets the OS pick (default: 8321)",
    )
    serve.add_argument(
        "--state-dir", default=".repro-serve", metavar="DIR",
        help="result store + job telemetry logs (default: .repro-serve)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="cell result cache directory (default: .repro-cache)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not update the cell result cache",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=2, metavar="N",
        help="cells executing at once (default: 2)",
    )
    serve.add_argument(
        "--dispatchers", type=int, default=2, metavar="N",
        help="jobs in flight at once (default: 2)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=0.0, metavar="PER_SECOND",
        help=(
            "per-client sustained submissions/second; 0 disables quotas"
            " (default: 0)"
        ),
    )
    serve.add_argument(
        "--quota-burst", type=float, default=10.0, metavar="TOKENS",
        help="per-client burst allowance (default: 10)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=20.0, metavar="SECONDS",
        help=(
            "on SIGTERM, stop accepting and give in-flight jobs this long"
            " to finish; whatever remains stays journaled and resumes on"
            " the next start (default: 20)"
        ),
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress server log lines"
    )
    serve.set_defaults(func=_cmd_serve)

    bench = subparsers.add_parser(
        "bench",
        help="fast-path vs reference regression bench",
        description=(
            "Replay Figure 7 SPEC traces and the protected RSA trace"
            " through the reference model and both repro.sim.kernel"
            " kernels (per-position 'access' and run-granular 'run'),"
            " verify the counters are identical, and report"
            " accesses/second and speedups (headline floor: 8x geometric"
            " mean for the run kernel).  Exit codes: 2 on counter"
            " divergence, 1 when a full-size run misses the floor."
        ),
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI-smoke sizing (still differentially strict)",
    )
    bench.add_argument(
        "--events", type=int, default=None,
        help="replay length per trace (default: 400000, or 60000 with"
             " --quick)",
    )
    bench.add_argument(
        "--skip-cells", action="store_true",
        help="skip the end-to-end Figure 7 cell tier",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of text",
    )
    bench.add_argument(
        "--out", default="BENCH_fastpath.json", metavar="PATH",
        help="write the JSON report here (default: BENCH_fastpath.json;"
             " empty string disables)",
    )
    bench.set_defaults(func=_cmd_bench)

    chaos = subparsers.add_parser(
        "chaos",
        help="fault-injection campaigns: prove every fault class is caught",
        description=(
            "Inject seeded faults into the simulator (TLB bit flips,"
            " dropped flushes, walk jitter, spurious evictions) and the"
            " runner (hung/crashing/lying workers, torn cache entries,"
            " poison cells), then verify each is caught by a detector or"
            " recovered by the hardening machinery.  The executor campaign"
            " attacks the work-stealing lease protocol itself: SIGKILLed"
            " workers, frozen heartbeats, duplicate and stale leases, torn"
            " journal tails, tampered results, cross-host poison cells --"
            " each must be masked (byte-identical artifacts) or detected"
            " and quarantined.  Exits nonzero on any silent fault."
        ),
    )
    chaos.add_argument(
        "campaign", choices=["sim", "runner", "executor", "all"],
        help="which layer's campaign to run",
    )
    chaos.add_argument("--seed", type=int, default=2019)
    chaos.add_argument(
        "--design",
        choices=[
            "SA", "SP", "RF",
            "SA+SA", "SA+SP", "SA+RF",
            "SP+SA", "SP+SP", "SP+RF",
            "RF+SA", "RF+SP", "RF+RF",
        ],
        default="SA",
        help=(
            "TLB design under the sim campaign: a flat design or an"
            " L1+L2 hierarchy label (default: SA)"
        ),
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="emit the detection matrix as JSON instead of text",
    )
    chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help=(
            "where the runner campaign keeps its scratch results/caches"
            " (default: a temporary directory)"
        ),
    )
    chaos.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="executor-campaign worker topology (default: 2)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    from repro.analysis.cli import add_analyze_parser, add_certify_parser

    add_analyze_parser(subparsers)
    add_certify_parser(subparsers)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
