"""The static hierarchy security certifier (repro.analysis.certify).

Three layers of assurance, mirroring the module's claims:

* unit tests of the lifted abstract machine (per-level fill disciplines,
  noise-site bookkeeping, LRU promotion);
* differential pins: the symbolic benchmark expansion against the real
  generated benchmarks running on the ISA CPU (deterministic designs
  must agree exactly, trial-for-trial), and certificates against the
  *committed* sweep matrix and Table 4 counts;
* certificate/schema contracts (evidence fields, PWC neutrality, the
  refill-channel variant).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.certify import (
    CERTIFICATE_SCHEMA,
    RULE_DETERMINISM,
    RULE_INDISTINGUISHABLE,
    RULE_NOISY_CORE_MASKED,
    RULE_NOISY_CORE_UNMASKED,
    _LevelState,
    analyze_hypothesis,
    certify,
    expand_benchmark,
    format_certificate,
    layout_for_spec,
)
from repro.model.table2 import table2_vulnerabilities
from repro.tlb.spec import HierarchySpec, LevelSpec

RESULTS = Path(__file__).resolve().parents[2] / "results"

VICTIM = 2


def spec_of(*kinds, pwc=False, victim_ways=None):
    from repro.tlb.spec import PWCSpec

    levels = []
    for index, kind in enumerate(kinds):
        levels.append(
            LevelSpec(
                kind=kind,
                sets=4 if index == 0 else 16,
                ways=8,
                victim_ways=victim_ways if kind == "SP" else None,
            )
        )
    return HierarchySpec(
        levels=tuple(levels), pwc=PWCSpec() if pwc else None
    )


class TestLevelState:
    def level(self, kind, **overrides):
        spec = LevelSpec(kind=kind, sets=4, ways=2, **overrides)
        return _LevelState(spec, victim_pid=VICTIM)

    def test_lru_promotion_and_eviction(self):
        level = self.level("SA")
        level.fill(1, 0x10, sec=False)
        level.fill(1, 0x14, sec=False)  # same set (4 sets), now full
        assert level.hit(1, 0x10)  # promote 0x10 to MRU
        level.fill(1, 0x18, sec=False)  # evicts LRU = 0x14
        assert level.resident(1, 0x10)
        assert not level.resident(1, 0x14)

    def test_sp_fills_confined_hits_shared(self):
        level = self.level("SP")  # victim_ways defaults to ways//2 = 1
        level.fill(VICTIM, 0x10, sec=False)
        level.fill(1, 0x14, sec=False)
        # Each partition holds one way: a second victim fill evicts only
        # the victim's own entry, never the attacker's.
        level.fill(VICTIM, 0x18, sec=False)
        assert not level.resident(VICTIM, 0x10)
        assert level.resident(1, 0x14)
        # Hits still search the whole set.
        assert level.hit(1, 0x14)

    def test_replacement_victim_is_partition_lru(self):
        level = self.level("SP")
        level.fill(VICTIM, 0x10, sec=False)
        victim = level.replacement_victim(VICTIM, 0x14)
        assert victim is not None and victim.vpn == 0x10
        # The attacker partition still has a free way in this set.
        assert level.replacement_victim(1, 0x14) is None


class TestMachineNoiseSites:
    def run_quiet(self, spec, vulnerability, mapped=True):
        return analyze_hypothesis(spec, vulnerability, mapped)

    @pytest.fixture(scope="class")
    def ic_row(self):
        return table2_vulnerabilities()[0]  # internal collision, fast

    def test_rf_secure_requests_become_noise_sites(self, ic_row):
        analysis = self.run_quiet(spec_of("RF"), ic_row)
        # The victim's secure accesses never fill; each is a Sec_D site.
        assert analysis.sites
        assert all(not site.redirect or site.level == 0
                   for site in analysis.sites)

    def test_sa_design_is_noise_free(self, ic_row):
        analysis = self.run_quiet(spec_of("SA", "SA"), ic_row)
        assert analysis.sites == ()
        assert analysis.envelope == frozenset({analysis.quiet_slow})


class TestExpansion:
    @pytest.mark.parametrize(
        "vulnerability", table2_vulnerabilities(), ids=lambda v: v.pretty()
    )
    def test_window_is_exactly_step_three(self, vulnerability):
        layout = layout_for_spec(spec_of("SA"))
        for mapped in (True, False):
            ops = expand_benchmark(vulnerability, layout, mapped)
            assert ops, "expansion must not be empty"
            for op in ops:
                assert op.window == (op.step == 2)

    def test_pages_stay_inside_the_layout_region(self):
        spec = spec_of("SA", "SA")
        layout = layout_for_spec(spec)
        for vulnerability in table2_vulnerabilities():
            for mapped in (True, False):
                for op in expand_benchmark(vulnerability, layout, mapped):
                    if op.kind == "access":
                        assert 0 < op.vpn < 0x10000


class TestDynamicPin:
    """The expansion against the real generated benchmarks on the CPU.

    SA and SP are deterministic designs: a single trial of the assembled
    benchmark decides slow/fast exactly, and the lifted machine's quiet
    execution must agree row-for-row and hypothesis-for-hypothesis.
    This is the strongest pin keeping ``expand_benchmark`` aligned with
    ``repro.security.benchgen.generate``.
    """

    @pytest.mark.parametrize("kind", ["SA", "SP"])
    def test_quiet_slowness_matches_the_cpu(self, kind):
        from repro.security.evaluate import (
            EvaluationConfig,
            SecurityEvaluator,
        )
        from repro.security.kinds import TLBKind

        config = EvaluationConfig(trials=1)
        evaluator = SecurityEvaluator(config)
        tlb_kind = TLBKind[kind]
        layout = config.layout_for(tlb_kind)
        spec = HierarchySpec(
            levels=(LevelSpec(kind=kind, sets=4, ways=8),)
        )
        for vulnerability in table2_vulnerabilities():
            result = evaluator.evaluate_vulnerability(
                vulnerability, tlb_kind, trials=1
            )
            dynamic = {
                True: result.estimate.misses_mapped > 0,
                False: result.estimate.misses_unmapped > 0,
            }
            for mapped in (True, False):
                static = analyze_hypothesis(
                    spec, vulnerability, mapped, layout
                )
                assert static.quiet_slow == dynamic[mapped], (
                    f"{kind} {vulnerability.pretty()} mapped={mapped}: "
                    f"static={static.quiet_slow} dynamic={dynamic[mapped]}"
                )


def committed_sweep_matrix():
    """Parse design -> (defended, vulnerable strategy set) from results/."""
    text = (RESULTS / "hierarchy_sweep.txt").read_text()
    matrix = {}
    for line in text.splitlines():
        match = re.match(
            r"^(\S+)\s+(\d)/7\s+[\d.]+\s+[\d.]+\s+\d+\s+\d+\s+(.*)$", line
        )
        if not match:
            continue
        label, defended, strategies = match.groups()
        names = (
            set()
            if strategies.strip() == "-"
            else {name.strip() for name in strategies.split(",")}
        )
        matrix[label] = (int(defended), names)
    return matrix


class TestSweepMatrixRegression:
    """Certificates must reproduce the committed 24-design matrix."""

    @pytest.fixture(scope="class")
    def matrix(self):
        matrix = committed_sweep_matrix()
        assert len(matrix) == 24
        return matrix

    @pytest.fixture(scope="class")
    def certificates(self):
        from repro.ablations.hierarchy import sweep_specs

        return {spec.label(): certify(spec) for spec in sweep_specs()}

    def test_every_design_row_verdict_matches(self, matrix, certificates):
        from repro.ablations.hierarchy import sweep_rows

        rows = sweep_rows()
        for label, (defended, strategies) in matrix.items():
            certificate = certificates[label]
            static_vulnerable = set()
            static_defended = 0
            for _, vulnerability in rows:
                verdict = certificate.verdict_for(vulnerability)
                if verdict.defended:
                    static_defended += 1
                else:
                    static_vulnerable.add(vulnerability.strategy.value)
            assert static_defended == defended, label
            assert static_vulnerable == strategies, label

    def test_certification_is_fast(self, certificates):
        # 24 designs certified without any simulation; the fixtures above
        # already did the work, this documents the O(seconds) claim.
        assert len(certificates) == 24


class TestFlatTable4Regression:
    """Single-level certificates must reproduce the Table 4 counts."""

    @pytest.mark.parametrize(
        "kind,defended", [("SA", 10), ("SP", 14), ("RF", 24)]
    )
    def test_defended_counts(self, kind, defended):
        from repro.analysis.certify_gate import flat_spec
        from repro.security.evaluate import EvaluationConfig
        from repro.security.kinds import TLBKind

        layout = EvaluationConfig().layout_for(TLBKind[kind])
        certificate = certify(flat_spec(kind), layout=layout)
        assert certificate.defended == defended


class TestRules:
    def verdicts(self, spec):
        return {v.vulnerability.pretty(): v for v in certify(spec).verdicts}

    def test_rf_sa_internal_collision_is_unmasked_noise(self):
        verdict = self.verdicts(spec_of("RF", "SA"))[
            "A_inv ~> V_u ~> V_a (fast)"
        ]
        assert not verdict.defended
        assert verdict.rule == RULE_NOISY_CORE_UNMASKED
        assert verdict.evidence["backing"] == ["SA"]

    def test_rf_sp_internal_collision_is_masked(self):
        verdict = self.verdicts(spec_of("RF", "SP"))[
            "A_inv ~> V_u ~> V_a (fast)"
        ]
        assert verdict.defended
        assert verdict.rule == RULE_NOISY_CORE_MASKED

    def test_sa_sa_evict_time_is_deterministic(self):
        verdict = self.verdicts(spec_of("SA", "SA"))[
            "V_u ~> A_d ~> V_u (slow)"
        ]
        assert not verdict.defended
        assert verdict.rule == RULE_DETERMINISM

    def test_rf_rf_is_fully_defended_with_proofs(self):
        certificate = certify(spec_of("RF", "RF"))
        assert certificate.defended == 24
        for verdict in certificate.verdicts:
            assert verdict.rule in (
                RULE_INDISTINGUISHABLE,
                RULE_NOISY_CORE_MASKED,
            )
            assert "mechanism" in verdict.evidence


class TestPWCNeutrality:
    def test_pwc_never_changes_a_verdict(self):
        for kinds in (("SA", "SA"), ("RF", "SA"), ("RF",)):
            plain = certify(spec_of(*kinds))
            with_pwc = certify(spec_of(*kinds, pwc=True))
            for bare, pwc in zip(plain.verdicts, with_pwc.verdicts):
                assert bare.defended == pwc.defended
                assert bare.rule == pwc.rule


class TestCertificateContract:
    @pytest.fixture(scope="class")
    def certificate(self):
        return certify(spec_of("RF", "SA"))

    def test_schema_and_summary_fields(self, certificate):
        payload = certificate.to_dict()
        assert payload["schema"] == CERTIFICATE_SCHEMA
        assert payload["design"] == "RF+SA"
        assert payload["total_rows"] == 24
        assert payload["pwc_neutral"] is True
        assert payload["operating_point"]["trials_per_behaviour"] == 40
        assert payload["defended"] == sum(
            1 for v in payload["verdicts"] if v["defended"]
        )

    def test_every_verdict_carries_evidence(self, certificate):
        for verdict in certificate.to_dict()["verdicts"]:
            evidence = verdict["evidence"]
            assert evidence["triple"]
            assert set(evidence["quiet_walks"]) == {"mapped", "unmapped"}
            assert set(evidence["envelope"]) == {"mapped", "unmapped"}
            assert evidence["mechanism"]

    def test_spec_roundtrips_through_the_payload(self, certificate):
        payload = certificate.to_dict()
        assert HierarchySpec.from_dict(payload["spec"]) == certificate.spec

    def test_refill_channel_on_the_leakage_design(self):
        from repro.ablations.hierarchy import leakage_spec

        certificate = certify(leakage_spec())
        assert certificate.refill_channel

    def test_text_rendering(self, certificate):
        text = format_certificate(certificate)
        assert "static security certificate: RF+SA" in text
        assert "defended: 14/24" in text
        assert RULE_NOISY_CORE_UNMASKED in text
