"""TLB organization parameters.

The paper evaluates L1 D-TLBs in seven organizations (Section 6.2): a single
entry (``1E``, approximating "no TLB"), fully associative and 2/4-way
set-associative at 32 and 128 entries.  :class:`TLBConfig` captures the
organization; the security evaluation additionally uses the 8-way 32-entry
configuration of Section 5.3 (four sets).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ReplacementKind(enum.Enum):
    """Replacement policy selector (the paper's designs use LRU)."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"
    #: Tree pseudo-LRU (what hardware typically implements).
    TREE_PLRU = "tree_plru"


@dataclass(frozen=True)
class TLBConfig:
    """Organization of one TLB.

    Parameters
    ----------
    entries:
        Total number of translation entries.
    ways:
        Associativity.  ``ways == entries`` gives a fully associative TLB
        (one set); ``ways == 1`` a direct-mapped one.
    page_bits:
        log2 of the page size; 12 for the 4 KiB pages used throughout the
        paper.  Stored for address helpers; the simulators operate on
        virtual page numbers directly.
    hit_latency:
        Cycles for a TLB hit (the "fast" timing of the model).
    replacement:
        Which replacement policy each set uses.
    """

    entries: int = 32
    ways: int = 4
    page_bits: int = 12
    hit_latency: int = 1
    replacement: ReplacementKind = ReplacementKind.LRU

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("entries and ways must be positive")
        if self.entries % self.ways:
            raise ValueError(
                f"entries ({self.entries}) must be a multiple of ways "
                f"({self.ways})"
            )
        if self.page_bits <= 0:
            raise ValueError("page_bits must be positive")
        if self.hit_latency < 0:
            raise ValueError("hit_latency cannot be negative")

    @property
    def sets(self) -> int:
        return self.entries // self.ways

    @property
    def fully_associative(self) -> bool:
        return self.sets == 1

    @property
    def page_size(self) -> int:
        return 1 << self.page_bits

    def set_index(self, vpn: int) -> int:
        """The set a virtual page number maps to (low VPN bits)."""
        return vpn % self.sets

    def set_index_for_level(self, vpn: int, level: int) -> int:
        """The set a (super)page maps to: indexed above the superpage's
        untranslated bits, so every page of a superpage shares one set."""
        if level < 0:
            raise ValueError("level cannot be negative")
        return (vpn >> (9 * level)) % self.sets

    def label(self) -> str:
        """Figure 7-style configuration label: ``1E``, ``FA 32``, ``4W 32``."""
        if self.entries == 1:
            return "1E"
        if self.fully_associative:
            return f"FA {self.entries}"
        return f"{self.ways}W {self.entries}"


def fully_associative(entries: int, **kwargs) -> TLBConfig:
    """Convenience constructor for an FA configuration."""
    return TLBConfig(entries=entries, ways=entries, **kwargs)


def single_entry(**kwargs) -> TLBConfig:
    """The ``1E`` configuration approximating a disabled TLB."""
    return TLBConfig(entries=1, ways=1, **kwargs)
