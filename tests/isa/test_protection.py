"""Tests for permission enforcement and the Double Page Fault premise."""

import pytest

from repro.isa import CPU, Memory, ProtectionFault, assemble
from repro.mmu import PageTableWalker, Permission
from repro.tlb import SetAssociativeTLB, TLBConfig

KERNEL_VPN = 0x80


def make_cpu_with_kernel_page():
    """A CPU whose address space maps one kernel-only (non-USER) page."""
    walker = PageTableWalker(auto_map=True)
    table = walker.table_for(1)
    # A kernel page: mapped (translatable) but with no user permissions.
    table.map_page(KERNEL_VPN, 0x9999, Permission.NONE)
    tlb = SetAssociativeTLB(TLBConfig(entries=32, ways=8))
    cpu = CPU(
        tlb=tlb,
        translator=walker,
        memory=Memory(),
        enforce_permissions=True,
    )
    return cpu, tlb, walker


def kernel_access_program():
    return assemble(
        f"""
        li x1, {KERNEL_VPN << 12}
        ldnorm x2, 0(x1)
        halt
        """
    )


class TestProtectionFaults:
    def test_forbidden_load_faults(self):
        cpu, _tlb, _walker = make_cpu_with_kernel_page()
        cpu.load(kernel_access_program())
        with pytest.raises(ProtectionFault) as excinfo:
            cpu.run()
        assert excinfo.value.vpn == KERNEL_VPN
        assert not excinfo.value.write

    def test_forbidden_store_faults(self):
        cpu, _tlb, _walker = make_cpu_with_kernel_page()
        cpu.load(
            assemble(
                f"li x1, {KERNEL_VPN << 12}\nli x2, 7\nsd x2, 0(x1)\nhalt"
            )
        )
        with pytest.raises(ProtectionFault) as excinfo:
            cpu.run()
        assert excinfo.value.write

    def test_permitted_accesses_unaffected(self):
        cpu, _tlb, _walker = make_cpu_with_kernel_page()
        cpu.load(
            assemble("la x1, v\nldnorm x2, 0(x1)\nhalt\n.data\nv: .dword 5")
        )
        cpu.run()
        assert cpu.registers[2] == 5

    def test_enforcement_is_opt_in(self):
        walker = PageTableWalker(auto_map=True)
        walker.table_for(1).map_page(KERNEL_VPN, 0x9999, Permission.NONE)
        cpu = CPU(
            tlb=SetAssociativeTLB(TLBConfig(entries=32, ways=8)),
            translator=walker,
        )
        cpu.load(kernel_access_program())
        cpu.run()  # no fault without enforcement


class TestDoublePageFaultPremise:
    """Hund et al.'s mechanism: the faulting access still fills the TLB."""

    def test_translation_cached_despite_fault(self):
        cpu, tlb, _walker = make_cpu_with_kernel_page()
        cpu.load(kernel_access_program())
        with pytest.raises(ProtectionFault):
            cpu.run()
        assert tlb.resident(KERNEL_VPN, 1)

    def test_second_faulting_access_is_fast(self):
        # The timing signal of the Double Page Fault attack: the first
        # faulting access pays the walk, the second hits the cached entry.
        cpu, tlb, walker = make_cpu_with_kernel_page()
        cpu.load(kernel_access_program())
        before = cpu.cycles
        with pytest.raises(ProtectionFault):
            cpu.run()
        first_fault_cycles = cpu.cycles - before

        cpu.pc = 1  # retry the faulting load only
        before = cpu.cycles
        with pytest.raises(ProtectionFault):
            cpu.step()
        second_fault_cycles = cpu.cycles - before
        assert second_fault_cycles < first_fault_cycles
        assert second_fault_cycles <= 2  # hit latency only

    def test_timing_distinguishes_mapped_kernel_pages(self):
        # Scanning: a kernel VPN that *is* mapped shows the fast-on-retry
        # signature; an unmapped VPN keeps paying the full walk (the walker
        # auto-maps it as user memory here, so compare against the mapped
        # kernel page only for the cached/uncached contrast).
        cpu, tlb, walker = make_cpu_with_kernel_page()
        cpu.load(kernel_access_program())
        with pytest.raises(ProtectionFault):
            cpu.run()
        # Retrying is fast <=> the translation exists: the attacker learns
        # the kernel address-space layout (the paper's KASLR-bypass use).
        assert tlb.resident(KERNEL_VPN, 1)
