"""The ``python -m repro analyze`` command surface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main

PACKAGE_ROOT = str(Path(repro.__file__).parent)


class TestParser:
    @pytest.mark.parametrize(
        "argv",
        [
            ["analyze", "guest"],
            ["analyze", "guest", "--workload", "rsa", "--static-only"],
            ["analyze", "guest", "--design", "RF"],
            ["analyze", "lint"],
            ["analyze", "lint", "--rules"],
            ["analyze", "all", "--static-only"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_mode_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "guest", "--workload", "nonsense"]
            )


class TestGuestMode:
    def test_rsa_is_flagged_and_confirmed(self, capsys):
        assert main(["analyze", "guest", "--workload", "rsa"]) == 0
        out = capsys.readouterr().out
        assert "secret-dependent-access" in out
        assert "verdict: expected (leak expected)" in out

    def test_rsa_ct_is_clean(self, capsys):
        assert main(["analyze", "guest", "--workload", "rsa-ct"]) == 0
        out = capsys.readouterr().out
        assert "verdict: expected (clean expected)" in out

    def test_static_only_skips_the_cross_check(self, capsys):
        assert (
            main(
                [
                    "analyze",
                    "guest",
                    "--workload",
                    "rsa",
                    "--static-only",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "correlated pages" not in out

    def test_json_payload_is_machine_readable(self, capsys):
        assert main(["analyze", "guest", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["workload"]: entry for entry in payload["guest"]}
        assert by_name["rsa"]["ok"] and by_name["rsa"]["expect_leak"]
        assert by_name["rsa-ct"]["ok"] and not by_name["rsa-ct"]["findings"]


class TestLintMode:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["analyze", "lint", PACKAGE_ROOT]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_rule_catalog_lists_every_rule(self, capsys):
        assert main(["analyze", "lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "facade-tlb-construction",
            "facade-walker-construction",
            "deterministic-sim",
            "frozen-event-dataclasses",
            "no-snapshot-mutation",
        ):
            assert name in out

    def test_violations_fail_the_gate(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["analyze", "lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "deterministic-sim" in out

    def test_json_reports_checked_files(self, capsys):
        assert main(["analyze", "lint", PACKAGE_ROOT, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["checked_files"] > 50


class TestAllMode:
    def test_combined_gate_passes_on_the_shipped_tree(self, capsys):
        assert main(["analyze", "all", PACKAGE_ROOT, "--static-only"]) == 0
        out = capsys.readouterr().out
        assert "analyze: OK" in out
        assert "0 lint findings" in out
