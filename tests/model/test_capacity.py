"""Tests for channel capacity (Equation 1), incl. property-based checks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.model.capacity import ChannelEstimate, channel_capacity


probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestKnownValues:
    def test_perfect_channel_is_one_bit(self):
        assert channel_capacity(1.0, 0.0) == pytest.approx(1.0)
        assert channel_capacity(0.0, 1.0) == pytest.approx(1.0)

    def test_equal_probabilities_leak_nothing(self):
        for p in (0.0, 0.25, 0.5, 0.67, 1.0):
            assert channel_capacity(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_paper_sa_tlb_prime_probe(self):
        # Table 4, SA TLB, Prime + Probe simulation: p1*=1, p2*=0.01 -> 0.99.
        assert channel_capacity(1.0, 1 / 500) == pytest.approx(0.99, abs=0.01)

    def test_paper_sp_tlb_evict_time(self):
        # Table 4, SP TLB, Evict + Time simulation: p1*=0, p2*=0.05 -> ~0.03.
        assert channel_capacity(0.0, 26 / 500) == pytest.approx(0.03, abs=0.01)

    def test_half_bit_example(self):
        # Binary symmetric-ish channel: p1=0.75, p2=0.25 with equal priors.
        expected = 1.0 - (-(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25)))
        assert channel_capacity(0.75, 0.25) == pytest.approx(expected)


class TestValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.1, 2.0, -5.0])
    def test_rejects_non_probabilities(self, bad):
        with pytest.raises(ValueError):
            channel_capacity(bad, 0.5)
        with pytest.raises(ValueError):
            channel_capacity(0.5, bad)


class TestProperties:
    @given(probabilities, probabilities)
    def test_capacity_in_unit_interval(self, p1, p2):
        capacity = channel_capacity(p1, p2)
        assert 0.0 <= capacity <= 1.0 + 1e-12

    @given(probabilities, probabilities)
    def test_capacity_is_symmetric(self, p1, p2):
        assert channel_capacity(p1, p2) == pytest.approx(
            channel_capacity(p2, p1), abs=1e-9
        )

    @given(probabilities)
    def test_zero_iff_equal(self, p):
        assert channel_capacity(p, p) == pytest.approx(0.0, abs=1e-12)

    @given(probabilities, probabilities)
    def test_complement_invariance(self, p1, p2):
        # Relabeling hit<->miss leaves the mutual information unchanged.
        assert channel_capacity(p1, p2) == pytest.approx(
            channel_capacity(1.0 - p1, 1.0 - p2), abs=1e-9
        )

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    )
    def test_estimate_matches_direct_computation(self, n_mm, n_nm):
        estimate = ChannelEstimate(n_mm, n_nm, 500)
        assert estimate.capacity == pytest.approx(
            channel_capacity(n_mm / 500, n_nm / 500)
        )


class TestChannelEstimate:
    def test_fields_and_probabilities(self):
        estimate = ChannelEstimate(
            misses_mapped=500, misses_unmapped=0, trials_per_behaviour=500
        )
        assert estimate.p1 == 1.0
        assert estimate.p2 == 0.0
        assert estimate.capacity == pytest.approx(1.0)
        assert not estimate.defends()

    def test_defends_threshold(self):
        leaky = ChannelEstimate(500, 0, 500)
        tight = ChannelEstimate(343, 333, 500)  # RF TLB-style counts
        assert not leaky.defends()
        assert tight.defends()

    def test_rejects_count_above_trials(self):
        with pytest.raises(ValueError):
            ChannelEstimate(501, 0, 500)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            ChannelEstimate(-1, 0, 500)

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            ChannelEstimate(0, 0, 0)
