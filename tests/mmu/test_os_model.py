"""Tests for the toy OS model (processes, mmap, switches, sfence)."""

import pytest

from repro.mmu import PageTableWalker, SwitchPolicy, ToyOS
from repro.tlb import SetAssociativeTLB, TLBConfig


def make_os(policy=SwitchPolicy.KEEP):
    walker = PageTableWalker()
    tlb = SetAssociativeTLB(TLBConfig(entries=8, ways=2))
    return ToyOS(walker, tlb, switch_policy=policy), walker, tlb


class TestProcesses:
    def test_first_process_gets_asid_1(self):
        os, _w, _t = make_os()
        victim = os.create_process("rsa")
        attacker = os.create_process("spy")
        assert victim.asid == 1  # The paper's protected-victim convention.
        assert attacker.asid == 2
        assert os.current is victim

    def test_explicit_asid(self):
        os, _w, _t = make_os()
        process = os.create_process("svc", asid=7)
        assert process.asid == 7
        follow_on = os.create_process("next")
        assert follow_on.asid == 8

    def test_duplicate_asid_rejected(self):
        os, _w, _t = make_os()
        os.create_process("a", asid=3)
        with pytest.raises(ValueError):
            os.create_process("b", asid=3)


class TestMemory:
    def test_mmap_maps_contiguous_pages(self):
        os, walker, _t = make_os()
        process = os.create_process("p")
        base = os.mmap(process, pages=3)
        for index in range(3):
            assert process.page_table.lookup(base + index) is not None
        # The walker can now translate them.
        result = walker.walk(base, asid=process.asid)
        assert result.ppn == process.page_table.lookup(base).ppn

    def test_mmap_distinct_frames(self):
        os, _w, _t = make_os()
        process = os.create_process("p")
        base = os.mmap(process, pages=5)
        frames = {
            process.page_table.lookup(base + index).ppn for index in range(5)
        }
        assert len(frames) == 5

    def test_mmap_at_fixed_address(self):
        os, _w, _t = make_os()
        process = os.create_process("p")
        base = os.mmap(process, pages=2, vpn=0x400)
        assert base == 0x400

    def test_mmap_rejects_zero_pages(self):
        os, _w, _t = make_os()
        process = os.create_process("p")
        with pytest.raises(ValueError):
            os.mmap(process, pages=0)

    def test_munmap_shoots_down_tlb(self):
        os, walker, tlb = make_os()
        process = os.create_process("p")
        base = os.mmap(process, pages=1)
        tlb.translate(base, process.asid, walker)
        assert tlb.resident(base, process.asid)
        os.munmap(process, base)
        assert not tlb.resident(base, process.asid)
        assert process.page_table.lookup(base) is None


class TestContextSwitch:
    def _prime(self, os, walker, tlb):
        victim = os.create_process("victim")
        attacker = os.create_process("attacker")
        base = os.mmap(victim, pages=1)
        tlb.translate(base, victim.asid, walker)
        return victim, attacker, base

    def test_keep_policy_preserves_entries(self):
        os, walker, tlb = make_os(SwitchPolicy.KEEP)
        victim, attacker, base = self._prime(os, walker, tlb)
        os.context_switch(attacker)
        assert tlb.resident(base, victim.asid)

    def test_flush_all_policy(self):
        # The Sanctum/SGX mitigation: everything flushed on a switch.
        os, walker, tlb = make_os(SwitchPolicy.FLUSH_ALL)
        victim, attacker, base = self._prime(os, walker, tlb)
        os.context_switch(attacker)
        assert not tlb.resident(base, victim.asid)

    def test_flush_outgoing_policy(self):
        os, walker, tlb = make_os(SwitchPolicy.FLUSH_OUTGOING)
        victim, attacker, base = self._prime(os, walker, tlb)
        attacker_base = os.mmap(attacker, pages=1)
        tlb.translate(attacker_base, attacker.asid, walker)
        os.context_switch(attacker)  # outgoing = victim
        assert not tlb.resident(base, victim.asid)
        assert tlb.resident(attacker_base, attacker.asid)

    def test_switch_to_self_does_not_flush(self):
        os, walker, tlb = make_os(SwitchPolicy.FLUSH_ALL)
        victim, _attacker, base = self._prime(os, walker, tlb)
        os.context_switch(victim)
        assert tlb.resident(base, victim.asid)

    def test_switch_to_unknown_process_rejected(self):
        os, _w, _t = make_os()
        os.create_process("p")
        from repro.mmu import PageTable, Process

        stranger = Process(pid=99, asid=9, name="x", page_table=PageTable(9))
        with pytest.raises(ValueError):
            os.context_switch(stranger)

    def test_switch_count(self):
        os, walker, tlb = make_os()
        victim, attacker, _base = self._prime(os, walker, tlb)
        os.context_switch(attacker)
        os.context_switch(victim)
        assert os.context_switches == 2


class TestSfence:
    def test_sfence_full_flush(self):
        os, walker, tlb = make_os()
        process = os.create_process("p")
        base = os.mmap(process, pages=2)
        tlb.translate(base, process.asid, walker)
        tlb.translate(base + 1, process.asid, walker)
        os.sfence_vma()
        assert tlb.occupancy() == 0

    def test_sfence_by_asid(self):
        os, walker, tlb = make_os()
        first = os.create_process("a")
        second = os.create_process("b")
        base_a = os.mmap(first, pages=1)
        base_b = os.mmap(second, pages=1)
        tlb.translate(base_a, first.asid, walker)
        tlb.translate(base_b, second.asid, walker)
        os.sfence_vma(asid=first.asid)
        assert not tlb.resident(base_a, first.asid)
        assert tlb.resident(base_b, second.asid)

    def test_sfence_by_page(self):
        os, walker, tlb = make_os()
        process = os.create_process("p")
        base = os.mmap(process, pages=2)
        tlb.translate(base, process.asid, walker)
        tlb.translate(base + 1, process.asid, walker)
        os.sfence_vma(vpn=base, asid=process.asid)
        assert not tlb.resident(base, process.asid)
        assert tlb.resident(base + 1, process.asid)
