"""Tests for the parallel scheduler: retries, crash recovery, telemetry.

The toy experiments below register themselves into the global registry at
import time; under the ``fork`` start method the scheduler's workers
inherit them.  Their ``units`` return nothing unless explicitly enabled
through ``options``, so they are invisible to ``expand_units`` elsewhere.
"""

import json
import os
import signal
import time

from repro.runner import (
    Experiment,
    RunLog,
    Scheduler,
    register,
    run_units_serially,
)


@register("toy-square")
class SquareExperiment(Experiment):
    def units(self, options):
        if "toy_square_values" not in options:
            return []
        return [
            self.unit(str(value), value=value)
            for value in options["toy_square_values"]
        ]

    @staticmethod
    def run(params):
        return params["value"] ** 2


@register("toy-crash-once")
class CrashOnceExperiment(Experiment):
    """SIGKILLs its own worker on the first attempt, succeeds after."""

    def units(self, options):
        if "toy_crash_marker" not in options:
            return []
        return [self.unit("cell", marker=options["toy_crash_marker"])]

    @staticmethod
    def run(params):
        marker = params["marker"]
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("crashing")
            # Give the claim message time to flush before dying so the
            # queues stay healthy for the surviving workers.
            time.sleep(0.3)
            os.kill(os.getpid(), signal.SIGKILL)
        return "survived"


@register("toy-always-fails")
class AlwaysFailsExperiment(Experiment):
    def units(self, options):
        if "toy_fail_count" not in options:
            return []
        return [
            self.unit(str(index)) for index in range(options["toy_fail_count"])
        ]

    @staticmethod
    def run(params):
        raise RuntimeError("intentional test failure")


def read_events(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestScheduler:
    def test_runs_all_units(self):
        experiment = SquareExperiment()
        units = list(
            enumerate(experiment.units({"toy_square_values": range(20)}))
        )
        outcomes = Scheduler(jobs=4).run(units)
        assert sorted(outcomes) == list(range(20))
        for task_id, unit in units:
            assert outcomes[task_id].value == unit.params["value"] ** 2
            assert not outcomes[task_id].failed

    def test_empty_unit_list(self):
        assert Scheduler(jobs=2).run([]) == {}

    def test_worker_crash_is_retried_and_logged(self, tmp_path):
        marker = tmp_path / "crashed.marker"
        log_path = tmp_path / "run.jsonl"
        experiment = CrashOnceExperiment()
        units = list(
            enumerate(experiment.units({"toy_crash_marker": str(marker)}))
        )
        log = RunLog(log_path)
        scheduler = Scheduler(jobs=2, log=log)
        outcomes = scheduler.run(units)
        log.close()

        assert outcomes[0].value == "survived"
        assert not outcomes[0].failed
        assert marker.exists()
        assert scheduler.worker_crashes >= 1
        assert scheduler.retries >= 1

        events = {record["event"] for record in read_events(log_path)}
        assert "worker_crash" in events or "retry" in events
        done = [
            record
            for record in read_events(log_path)
            if record["event"] == "unit_done"
        ]
        assert done and done[-1]["status"] == "ok"

    def test_persistent_failure_marks_cell_failed(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        experiment = AlwaysFailsExperiment()
        units = list(enumerate(experiment.units({"toy_fail_count": 2})))
        log = RunLog(log_path)
        scheduler = Scheduler(jobs=2, max_retries=1, log=log)
        outcomes = scheduler.run(units)
        log.close()

        assert all(outcome.failed for outcome in outcomes.values())
        assert all(
            "intentional test failure" in outcome.error
            for outcome in outcomes.values()
        )
        # Other cells still complete: the run finished despite failures.
        assert len(outcomes) == 2
        statuses = [
            record["status"]
            for record in read_events(log_path)
            if record["event"] == "unit_done"
        ]
        assert statuses.count("failed") == 2

    def test_failure_does_not_block_other_cells(self):
        fails = AlwaysFailsExperiment()
        squares = SquareExperiment()
        units = list(
            enumerate(
                fails.units({"toy_fail_count": 1})
                + squares.units({"toy_square_values": range(6)})
            )
        )
        outcomes = Scheduler(jobs=3, max_retries=0).run(units)
        assert outcomes[0].failed
        assert [outcomes[i].value for i in range(1, 7)] == [
            0, 1, 4, 9, 16, 25,
        ]


class TestSerialExecution:
    def test_matches_parallel_values(self):
        experiment = SquareExperiment()
        units = list(
            enumerate(experiment.units({"toy_square_values": range(10)}))
        )
        serial = run_units_serially(units)
        parallel = Scheduler(jobs=3).run(units)
        assert {k: v.value for k, v in serial.items()} == {
            k: v.value for k, v in parallel.items()
        }

    def test_records_failures(self):
        experiment = AlwaysFailsExperiment()
        units = list(enumerate(experiment.units({"toy_fail_count": 1})))
        outcomes = run_units_serially(units)
        assert outcomes[0].failed
        assert "intentional test failure" in outcomes[0].error
