"""Property tests for mixed 4 KiB / superpage TLB behaviour."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.mmu import PageTable, PageTableWalker
from repro.tlb import SetAssociativeTLB, TLBConfig

SUPER_SPAN = 512  # pages per level-1 megapage


def make_mixed_walker(super_bases, small_pages):
    walker = PageTableWalker(auto_map=False)
    table = PageTable(asid=1)
    for index, base in enumerate(sorted(super_bases)):
        table.map_page(base, (index + 1) * SUPER_SPAN * 4, level=1)
    for index, vpn in enumerate(sorted(small_pages)):
        table.map_page(vpn, 0x900_000 + index)
    walker.register(table)
    return walker


super_base_sets = st.sets(
    st.integers(min_value=0, max_value=30).map(lambda i: i * SUPER_SPAN),
    min_size=1,
    max_size=3,
)
offsets = st.lists(
    st.integers(min_value=0, max_value=SUPER_SPAN - 1), min_size=1, max_size=20
)


class TestMixedPageSizes:
    @given(super_base_sets, offsets)
    @settings(max_examples=50, deadline=None)
    def test_one_entry_serves_a_whole_superpage(self, bases, offsets):
        walker = make_mixed_walker(bases, small_pages=[])
        tlb = SetAssociativeTLB(TLBConfig(entries=32, ways=8))
        base = min(bases)
        for offset in offsets:
            tlb.translate(base + offset, 1, walker)
        # All accesses to one superpage share a single entry.
        assert tlb.occupancy() == 1

    @given(super_base_sets, offsets)
    @settings(max_examples=50, deadline=None)
    def test_translation_is_offset_correct(self, bases, offsets):
        walker = make_mixed_walker(bases, small_pages=[])
        tlb = SetAssociativeTLB(TLBConfig(entries=32, ways=8))
        for base in sorted(bases):
            expected_base = walker.walk(base, 1).ppn
            for offset in offsets:
                result = tlb.translate(base + offset, 1, walker)
                assert result.ppn == expected_base + offset

    @given(offsets)
    @settings(max_examples=50, deadline=None)
    def test_small_and_super_entries_coexist(self, offsets):
        small_pages = [SUPER_SPAN + o for o in offsets]  # second region, 4 KiB
        walker = make_mixed_walker({0}, small_pages)
        tlb = SetAssociativeTLB(TLBConfig(entries=64, ways=8))
        for vpn in small_pages:
            tlb.translate(vpn, 1, walker)
        tlb.translate(5, 1, walker)  # inside the superpage
        assert tlb.translate(5, 1, walker).hit
        for vpn in small_pages:
            assert tlb.resident(vpn, 1)

    def test_superpage_and_small_page_hits_do_not_alias(self):
        # A 4 KiB entry must not answer for a different page of the same
        # superpage-sized region, and vice versa.
        walker = make_mixed_walker(set(), [SUPER_SPAN + 1])
        tlb = SetAssociativeTLB(TLBConfig(entries=32, ways=8))
        tlb.translate(SUPER_SPAN + 1, 1, walker)
        from repro.mmu import PageFault

        with pytest.raises(PageFault):
            tlb.translate(SUPER_SPAN + 2, 1, walker)  # unmapped 4 KiB page
