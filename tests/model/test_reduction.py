"""Unit tests for the symbolic reduction rules of Section 3.3."""


from repro.model.patterns import ThreeStepPattern
from repro.model.reduction import (
    candidate_patterns,
    count_survivors_by_rule,
    eliminated_by,
    enumerate_triples,
    passes_symbolic_rules,
    rule1_no_late_star,
    rule2_has_secret,
    rule3_no_star_before_secret,
    rule4_no_redundant_adjacency,
    rule5_alias_only_first,
    rule6_invalidation_placement,
)
from repro.model.states import (
    A_A,
    A_A_ALIAS,
    A_D,
    A_INV,
    EXTENDED_STATES,
    STAR,
    V_A,
    V_U,
    V_U_INV,
)


def pattern(*steps):
    return ThreeStepPattern(tuple(steps))


class TestEnumeration:
    def test_base_model_enumerates_1000_triples(self):
        assert sum(1 for _ in enumerate_triples()) == 1000

    def test_extended_model_enumerates_4913_triples(self):
        assert sum(1 for _ in enumerate_triples(EXTENDED_STATES)) == 17**3


class TestIndividualRules:
    def test_rule1_rejects_star_in_step2(self):
        assert not rule1_no_late_star(pattern(A_D, STAR, V_U))

    def test_rule1_rejects_star_in_step3(self):
        assert not rule1_no_late_star(pattern(A_D, V_U, STAR))

    def test_rule1_allows_star_in_step1(self):
        assert rule1_no_late_star(pattern(STAR, A_A, V_U))

    def test_rule2_requires_a_secret_step(self):
        assert not rule2_has_secret(pattern(A_D, V_A, A_D))
        assert rule2_has_secret(pattern(A_D, V_U, A_D))

    def test_rule2_accepts_extended_secret_invalidation(self):
        assert rule2_has_secret(pattern(A_A, V_U_INV, A_A))

    def test_rule3_rejects_star_then_secret(self):
        assert not rule3_no_star_before_secret(pattern(STAR, V_U, A_A))

    def test_rule4_rejects_repeats(self):
        assert not rule4_no_redundant_adjacency(pattern(A_D, A_D, V_U))
        assert not rule4_no_redundant_adjacency(pattern(V_U, V_U, A_A))

    def test_rule4_rejects_adjacent_known(self):
        assert not rule4_no_redundant_adjacency(pattern(A_D, V_A, V_U))

    def test_rule4_rejects_adjacent_secrets(self):
        assert not rule4_no_redundant_adjacency(pattern(V_U, V_U_INV, A_A))

    def test_rule4_allows_alternation(self):
        assert rule4_no_redundant_adjacency(pattern(A_D, V_U, A_D))

    def test_rule5_rejects_alias_outside_step1(self):
        assert not rule5_alias_only_first(pattern(V_U, A_A_ALIAS, V_U))
        assert not rule5_alias_only_first(pattern(A_D, V_U, A_A_ALIAS))
        assert rule5_alias_only_first(pattern(A_A_ALIAS, V_U, A_A))

    def test_rule6_rejects_full_flush_after_step1(self):
        assert not rule6_invalidation_placement(pattern(V_U, A_INV, V_U))
        assert rule6_invalidation_placement(pattern(A_INV, V_U, V_A))

    def test_rule6_allows_targeted_invalidation_after_step1(self):
        assert rule6_invalidation_placement(pattern(A_A, V_U_INV, A_A))


class TestPipeline:
    def test_base_candidates_count(self):
        # 1000 triples reduce to 40 symbolic candidates; the paper reports a
        # candidate set of the same order (34) before its manual stage, with
        # the remaining eliminations mechanized in the effectiveness engine.
        assert len(candidate_patterns()) == 40

    def test_candidates_alternate_secret_and_known(self):
        for cand in candidate_patterns():
            kinds = [
                "u" if step.is_secret else ("*" if step.is_star else "k")
                for step in cand.steps
            ]
            assert kinds in (
                ["u", "k", "u"],
                ["k", "u", "k"],
                ["*", "k", "u"],
            )

    def test_cumulative_reduction_counts(self):
        counts = count_survivors_by_rule(enumerate_triples())
        assert counts["initial"] == 1000
        assert counts["rule1_no_late_star"] == 810
        assert counts["rule6_invalidation_placement"] == 40
        # Each rule only ever shrinks the survivor set.
        values = list(counts.values())
        assert values == sorted(values, reverse=True)

    def test_eliminated_by_names_rules(self):
        reasons = eliminated_by(pattern(STAR, V_U, STAR))
        assert "rule1_no_late_star" in reasons
        assert "rule3_no_star_before_secret" in reasons
        assert eliminated_by(pattern(A_D, V_U, A_D)) == []

    def test_passes_symbolic_rules_consistency(self):
        for cand in enumerate_triples():
            assert passes_symbolic_rules(cand) == (not eliminated_by(cand))


class TestTable2Candidates:
    def test_every_table2_pattern_is_a_candidate(self):
        from repro.model.table2 import TABLE2_ROWS

        candidates = set(candidate_patterns())
        for steps, _obs, _macro, _strategy in TABLE2_ROWS:
            assert ThreeStepPattern(steps) in candidates
