"""Set-profiling: recover *which TLB set* the victim's secret page uses.

TLBleed does not know the secret page up front; it first profiles every
TLB set in parallel to find the one whose activity correlates with the
victim's secret-dependent access.  This module reproduces that first
stage: the attacker Prime + Probes **all** sets around one victim access
and reports the set(s) that evicted -- recovering ``u``'s set index, i.e.
the low bits of the secret virtual page number.

Against the standard SA TLB one round suffices.  Against the RF TLB every
round's eviction lands in an RFE-chosen random set, so repeated rounds
vote for a page that is uniform over the secure region rather than ``u``.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mmu import make_walker
from repro.security.kinds import TLBKind, make_tlb
from repro.sim.events import EventBus
from repro.sim.probe import SetProber
from repro.sim.system import MemorySystem
from repro.tlb import RandomFillTLB, TLBConfig

VICTIM_ASID = 1
ATTACKER_ASID = 2
PROBE_BASE = 0x600


@dataclass(frozen=True)
class ProfilingResult:
    """Outcome of a set-profiling run."""

    true_set: int
    #: Per-round winning set indices (the set with the most probe misses).
    rounds: List[Optional[int]]
    kind: TLBKind

    @property
    def recovered_set(self) -> Optional[int]:
        """Majority vote over the rounds."""
        votes = Counter(index for index in self.rounds if index is not None)
        if not votes:
            return None
        return votes.most_common(1)[0][0]

    @property
    def correct(self) -> bool:
        return self.recovered_set == self.true_set

    def vote_distribution(self) -> Dict[int, int]:
        return dict(Counter(i for i in self.rounds if i is not None))


def profile_secret_set(
    kind: TLBKind = TLBKind.SA,
    secret_vpn: int = 0x102,
    region_base: int = 0x100,
    region_pages: int = 8,
    rounds: int = 15,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
    bus: Optional[EventBus] = None,
) -> ProfilingResult:
    """Run ``rounds`` of all-set Prime + Probe around one victim access."""
    if not region_base <= secret_vpn < region_base + region_pages:
        raise ValueError("the secret page must lie inside the region")
    nsets = config.sets
    tlb = make_tlb(
        kind,
        config,
        victim_asid=VICTIM_ASID,
        victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
        rng=random.Random(seed),
    )
    if isinstance(tlb, RandomFillTLB):
        tlb.set_secure_region(region_base, region_pages, victim_asid=VICTIM_ASID)
    memory = MemorySystem(tlb, make_walker(), bus=bus)
    probers = {
        set_index: SetProber.for_set(
            memory, PROBE_BASE, set_index, ATTACKER_ASID, nsets, config.ways
        )
        for set_index in range(nsets)
    }

    winners: List[Optional[int]] = []
    for _round in range(rounds):
        memory.flush_all()
        for prober in probers.values():
            prober.prime()
        memory.translate(secret_vpn, VICTIM_ASID)  # the V_u access
        misses_per_set = {
            set_index: prober.probe().misses
            for set_index, prober in probers.items()
        }
        best = max(misses_per_set.values())
        if best == 0:
            winners.append(None)
        else:
            winners.append(
                max(misses_per_set, key=misses_per_set.get)
            )
    return ProfilingResult(
        true_set=secret_vpn % nsets, rounds=winners, kind=kind
    )
