"""The large-page software mitigation (Section 2.3), quantified.

"Using large pages for the crypto libraries can also be one possible
software defense to TLB timing-based attacks."  When the victim's entire
security-critical region sits inside one 2 MiB superpage, every secret
access resolves through the *same* TLB entry: there is no per-page access
pattern left for a page-granular attack to observe.

This ablation re-runs the Table 4 harness with a walker whose victim
address space backs the secure region with a megapage.  The base-model
rows all lose their signal; the paper's caveat -- "there are other ways to
invalidate a page ... to make invalidation related attacks possible" --
is also checked by re-running the Appendix B rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.model.patterns import Vulnerability
from repro.model.table2 import table2_vulnerabilities
from repro.mmu import PageTableWalker, make_walker
from repro.security.benchgen import BenchmarkLayout
from repro.security.evaluate import (
    EvaluationConfig,
    SecurityEvaluator,
    VulnerabilityResult,
)
from repro.security.kinds import TLBKind

#: Pages per level-1 superpage (Sv39 megapage).
MEGAPAGE_SPAN = 512


def _superpage_walker_factory(layout: BenchmarkLayout):
    """A walker whose victim address space maps the secure region's
    megapage as a single superpage (other pages auto-map as 4 KiB)."""
    base = (layout.sbase // MEGAPAGE_SPAN) * MEGAPAGE_SPAN

    def factory() -> PageTableWalker:
        walker = make_walker()
        table = walker.table_for(layout.victim_pid)
        table.map_page(base, 0x200_000, level=1)
        return walker

    return factory


@dataclass(frozen=True)
class LargePageResult:
    """Outcome of the large-page mitigation evaluation."""

    base_results: List[VulnerabilityResult]
    extended_results: List[VulnerabilityResult]

    @property
    def base_defended(self) -> int:
        return sum(1 for result in self.base_results if result.defended)

    @property
    def extended_defended(self) -> int:
        return sum(1 for result in self.extended_results if result.defended)


def large_page_cells(
    kind: TLBKind = TLBKind.SA,
) -> List[Tuple[str, int, Vulnerability]]:
    """The work-list: ("base"|"extended", row index, row) per cell."""
    from repro.model.extended import invalidation_only_vulnerabilities

    cells = [
        ("base", index, vulnerability)
        for index, vulnerability in enumerate(table2_vulnerabilities())
    ]
    cells.extend(
        ("extended", index, vulnerability)
        for index, vulnerability in enumerate(
            invalidation_only_vulnerabilities()
        )
    )
    return cells


def run_large_page_cell(
    model: str,
    vulnerability_index: int,
    kind: TLBKind = TLBKind.SA,
    trials: int = 40,
) -> VulnerabilityResult:
    """Evaluate one row with the secure region on a megapage (a pure cell)."""
    from repro.model.extended import invalidation_only_vulnerabilities

    if model == "base":
        vulnerability = table2_vulnerabilities()[vulnerability_index]
    elif model == "extended":
        vulnerability = invalidation_only_vulnerabilities()[
            vulnerability_index
        ]
    else:
        raise ValueError(f"unknown model {model!r}")
    layout = BenchmarkLayout()
    config = EvaluationConfig(
        trials=trials, walker_factory=_superpage_walker_factory(layout)
    )
    evaluator = SecurityEvaluator(config)
    return evaluator.evaluate_vulnerability(vulnerability, kind)


def evaluate_large_pages(
    kind: TLBKind = TLBKind.SA, trials: int = 40
) -> LargePageResult:
    """Run the base and extended rows with the secure region on a megapage.

    The benchmark layout is unchanged -- the attacker's ``d`` and filler
    pages live in different megapage frames and auto-map as 4 KiB pages --
    so only the victim's in-region behaviour changes.
    """
    base: List[VulnerabilityResult] = []
    extended: List[VulnerabilityResult] = []
    for model, index, _vulnerability in large_page_cells(kind):
        result = run_large_page_cell(model, index, kind, trials)
        (base if model == "base" else extended).append(result)
    return LargePageResult(base_results=base, extended_results=extended)


def format_large_page_comparison(
    with_large_pages: LargePageResult,
    baseline_base_defended: int,
    baseline_extended_defended: int,
) -> str:
    lines = [
        f"{'configuration':44} {'base rows':>10} {'extended rows':>14}",
        "-" * 72,
        f"{'SA TLB, 4 KiB crypto pages (baseline)':44} "
        f"{baseline_base_defended:>7}/24 "
        f"{baseline_extended_defended:>11}/48",
        f"{'SA TLB, crypto region on one 2 MiB page':44} "
        f"{with_large_pages.base_defended:>7}/24 "
        f"{with_large_pages.extended_defended:>11}/48",
    ]
    return "\n".join(lines)
