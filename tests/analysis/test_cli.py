"""The ``python -m repro analyze`` command surface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main

PACKAGE_ROOT = str(Path(repro.__file__).parent)


class TestParser:
    @pytest.mark.parametrize(
        "argv",
        [
            ["analyze", "guest"],
            ["analyze", "guest", "--workload", "rsa", "--static-only"],
            ["analyze", "guest", "--design", "RF"],
            ["analyze", "lint"],
            ["analyze", "lint", "--rules"],
            ["analyze", "all", "--static-only"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_mode_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "guest", "--workload", "nonsense"]
            )


class TestGuestMode:
    def test_rsa_is_flagged_and_confirmed(self, capsys):
        assert main(["analyze", "guest", "--workload", "rsa"]) == 0
        out = capsys.readouterr().out
        assert "secret-dependent-access" in out
        assert "verdict: expected (leak expected)" in out

    def test_rsa_ct_is_clean(self, capsys):
        assert main(["analyze", "guest", "--workload", "rsa-ct"]) == 0
        out = capsys.readouterr().out
        assert "verdict: expected (clean expected)" in out

    def test_static_only_skips_the_cross_check(self, capsys):
        assert (
            main(
                [
                    "analyze",
                    "guest",
                    "--workload",
                    "rsa",
                    "--static-only",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "correlated pages" not in out

    def test_json_payload_is_machine_readable(self, capsys):
        assert main(["analyze", "guest", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/analyze/v1"
        assert payload["mode"] == "guest"
        assert payload["ok"] and payload["exit_code"] == 0
        by_name = {entry["workload"]: entry for entry in payload["guest"]}
        assert by_name["rsa"]["ok"] and by_name["rsa"]["expect_leak"]
        assert by_name["rsa-ct"]["ok"] and not by_name["rsa-ct"]["findings"]


class TestLintMode:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["analyze", "lint", PACKAGE_ROOT]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_rule_catalog_lists_every_rule(self, capsys):
        assert main(["analyze", "lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "facade-tlb-construction",
            "facade-walker-construction",
            "deterministic-sim",
            "frozen-event-dataclasses",
            "no-snapshot-mutation",
            "certifiable-hierarchy",
        ):
            assert name in out

    def test_violations_exit_with_the_lint_code(self, tmp_path, capsys):
        from repro.analysis.cli import EXIT_LINT_FINDINGS

        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["analyze", "lint", str(bad)]) == EXIT_LINT_FINDINGS
        out = capsys.readouterr().out
        assert "deterministic-sim" in out

    def test_json_reports_checked_files(self, capsys):
        assert main(["analyze", "lint", PACKAGE_ROOT, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/analyze/v1"
        assert payload["mode"] == "lint"
        assert payload["lint"]["findings"] == []
        assert payload["lint"]["checked_files"] > 50


class TestAllMode:
    def test_combined_gate_passes_on_the_shipped_tree(self, capsys):
        assert main(["analyze", "all", PACKAGE_ROOT, "--static-only"]) == 0
        out = capsys.readouterr().out
        assert "analyze: OK" in out
        assert "0 lint findings" in out


class TestExitCodes:
    """The distinct failure codes CI dispatches on (docs/analysis.md)."""

    def test_codes_are_distinct_and_documented(self):
        from repro.analysis.cli import (
            EXIT_BOTH,
            EXIT_CONTRACT_VIOLATION,
            EXIT_LINT_FINDINGS,
        )

        assert (EXIT_CONTRACT_VIOLATION, EXIT_LINT_FINDINGS, EXIT_BOTH) == (
            2, 3, 4,
        )

    def test_all_mode_reports_lint_code_on_lint_only_failure(
        self, tmp_path, capsys
    ):
        from repro.analysis.cli import EXIT_LINT_FINDINGS

        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        code = main(
            ["analyze", "all", str(bad), "--static-only", "--json"]
        )
        assert code == EXIT_LINT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "all"
        assert not payload["ok"]
        assert payload["exit_code"] == EXIT_LINT_FINDINGS
        assert payload["lint"]["findings"]
        assert all(entry["ok"] for entry in payload["guest"])

    def test_all_mode_text_summary_names_the_exit_code(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["analyze", "all", str(bad), "--static-only"]) == 3
        assert "exit 3" in capsys.readouterr().out


class TestCertifyCLI:
    def test_sweep_label_renders_a_certificate(self, capsys):
        assert main(["certify", "RF+SA"]) == 0
        out = capsys.readouterr().out
        assert "static security certificate: RF+SA" in out
        assert "defended: 14/24" in out

    def test_json_certificate_is_schema_stamped(self, capsys):
        assert main(["certify", "RF+SP", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/certificate/v1"
        assert payload["design"] == "RF+SP"
        assert len(payload["verdicts"]) == 24

    def test_multiple_targets_emit_a_list(self, capsys):
        assert main(["certify", "SA+SA", "RF+RF", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["design"] for entry in payload] == ["SA+SA", "RF+RF"]

    def test_spec_file_target(self, tmp_path, capsys):
        from repro.analysis.certify_gate import flat_spec

        path = tmp_path / "design.json"
        path.write_text(json.dumps(flat_spec("RF").to_dict()))
        assert main(["certify", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "RF"
        assert payload["defended"] == 24

    def test_unknown_label_lists_the_catalog(self):
        with pytest.raises(SystemExit, match="known labels"):
            main(["certify", "XX+YY"])

    def test_no_target_is_an_error(self):
        with pytest.raises(SystemExit, match="--all / --gate"):
            main(["certify"])

    def test_gate_refill_leg_exits_zero(self, capsys):
        assert main(["certify", "--gate", "--legs", "refill"]) == 0
        assert "gate PASSED" in capsys.readouterr().out

    def test_gate_json_report(self, capsys):
        assert main(
            ["certify", "--gate", "--legs", "refill", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/certify-gate/v1"
        assert payload["passed"] is True
