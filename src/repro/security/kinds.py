"""TLB design selector shared by the security evaluation and the harness."""

from __future__ import annotations

import enum
import random
from typing import Optional

from repro.tlb import (
    BaseTLB,
    HierarchySpec,
    PageWalkCache,
    RandomFillTLB,
    SetAssociativeTLB,
    StaticPartitionTLB,
    TLBConfig,
    TLBHierarchy,
    TwoLevelTLB,
)


class TLBKind(enum.Enum):
    """The three designs compared throughout the paper."""

    SA = "SA"
    SP = "SP"
    RF = "RF"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def make_tlb(
    kind: TLBKind,
    config: TLBConfig,
    victim_asid: int = 1,
    victim_ways: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> BaseTLB:
    """Instantiate one of the three designs over a common configuration."""
    if kind is TLBKind.SA:
        return SetAssociativeTLB(config)
    if kind is TLBKind.SP:
        return StaticPartitionTLB(
            config, victim_asid=victim_asid, victim_ways=victim_ways
        )
    if kind is TLBKind.RF:
        return RandomFillTLB(config, victim_asid=victim_asid, rng=rng)
    raise ValueError(f"unknown TLB kind {kind}")  # pragma: no cover


def _make_levels(
    spec: HierarchySpec,
    victim_asid: int,
    rng: Optional[random.Random],
) -> list:
    """Build the level TLBs of a spec, outermost first (shared ``rng``)."""
    return [
        make_tlb(
            TLBKind(level.kind),
            level.config(),
            victim_asid=victim_asid,
            victim_ways=level.effective_victim_ways(),
            rng=rng,
        )
        for level in spec.levels
    ]


def make_hierarchy(
    spec: HierarchySpec,
    victim_asid: int = 1,
    rng: Optional[random.Random] = None,
) -> TLBHierarchy:
    """Build a live :class:`repro.tlb.TLBHierarchy` from a declarative spec.

    The one sanctioned constructor for multi-level TLBs (the invariant
    linter keeps direct ``TLBHierarchy`` / ``TwoLevelTLB`` construction
    out of the drive loops).  Levels are instantiated outermost first,
    sharing ``rng`` so RF levels draw from one stream; SP levels default
    to the paper's even way split unless the spec's ``victim_ways``
    overrides it; levels with ``sec_bit`` disabled are excluded from
    ``set_secure_region`` propagation; and a ``pwc`` entry appends a
    :class:`repro.tlb.PageWalkCache` behind the last level.
    """
    levels = _make_levels(spec, victim_asid, rng)
    secure = [
        index for index, level in enumerate(spec.levels) if level.sec_bit
    ]
    return TLBHierarchy(
        levels,
        name=spec.label(),
        pwc=PageWalkCache(spec.pwc) if spec.pwc is not None else None,
        secure_levels=None if len(secure) == len(spec.levels) else secure,
    )


def make_two_level_tlb(
    l1_kind: TLBKind,
    l2_kind: TLBKind,
    l1_config: TLBConfig,
    l2_config: TLBConfig,
    victim_asid: int = 1,
    rng: Optional[random.Random] = None,
) -> TwoLevelTLB:
    """A two-level hierarchy with any L1/L2 design combination.

    A thin wrapper over :func:`make_hierarchy`'s spec machinery, kept for
    the original two-level surface (``.l1`` / ``.l2``).  SP levels default
    to an even way split, matching the single-level convention the
    evaluations use.  Like :func:`make_tlb`, this is a registered
    factory: the invariant linter keeps direct construction out of the
    drive loops.
    """
    spec = HierarchySpec.two_level(
        l1_kind.value, l2_kind.value, l1_config, l2_config
    )
    levels = _make_levels(spec, victim_asid, rng)
    return TwoLevelTLB(levels[0], levels[1])
