"""Tests for the terminal chart renderer."""

import pytest

from repro.perf import PerfSettings, Scenario, bar_chart, figure7_chart, run_cell
from repro.security.kinds import TLBKind


class TestBarChart:
    def test_bars_scale_to_the_peak(self):
        text = bar_chart("t", [("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10

    def test_zero_values_render(self):
        text = bar_chart("t", [("a", 0.0)])
        assert "0.000" in text

    def test_unit_suffix(self):
        text = bar_chart("t", [("a", 1.5)], unit=" MPKI")
        assert "1.500 MPKI" in text


class TestFigure7Chart:
    @pytest.fixture(scope="class")
    def cells(self):
        settings = PerfSettings(spec_instructions=20_000, key_bits=64)
        return [
            run_cell(
                kind,
                "4W 32",
                Scenario(secure=True),
                rsa_runs=3,
                settings=settings,
            )
            for kind in (TLBKind.SA, TLBKind.RF)
        ]

    def test_groups_by_scenario(self, cells):
        text = figure7_chart(cells, "mpki")
        assert "MPKI -- SecRSA" in text
        assert "SA 4W 32" in text and "RF 4W 32" in text

    def test_ipc_metric(self, cells):
        text = figure7_chart(cells, "ipc")
        assert "IPC -- SecRSA" in text

    def test_unknown_metric_rejected(self, cells):
        with pytest.raises(ValueError):
            figure7_chart(cells, "watts")
