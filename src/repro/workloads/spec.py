"""Synthetic SPEC CPU2006 page-trace generators (Section 6.2's workloads).

The paper pressure-tests the TLB designs with four TLB-intensive SPEC 2006
benchmarks run under Linux on the FPGA.  SPEC binaries and inputs are not
redistributable, so each benchmark is substituted by a synthetic generator
calibrated to the *TLB-relevant shape* of its published behaviour:

===============  ===============================================================
povray           medium working set with strong hot-page reuse: moderate MPKI,
                 benefits from larger TLBs
omnetpp          pointer-chasing over a large heap: near-uniform references
                 across hundreds of pages, the most TLB-size-sensitive
xalancbmk        large working set with mixed locality
cactusADM        streaming stencil sweep: compulsory-miss dominated, hence
                 (as the paper observes) largely insensitive to TLB size
===============  ===============================================================

The generators are seeded and deterministic; Figure 7 only needs each
workload's MPKI/IPC *sensitivity* to TLB organization, which these shapes
reproduce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .trace import MemoryEvent


@dataclass(frozen=True)
class SpecProfile:
    """A synthetic page-reference generator."""

    name: str
    #: Total pages the workload cycles through.
    working_set_pages: int
    #: Size of the frequently reused hot set.
    hot_pages: int
    #: Fraction of accesses that hit the hot set.
    hot_fraction: float
    #: Fraction of instructions that are loads/stores.
    memory_ratio: float
    #: First page of the workload's address range.
    base_vpn: int
    #: Streaming mode: sweep the working set sequentially (cactusADM-style
    #: compulsory misses) instead of referencing it uniformly.
    streaming: bool = False
    #: Consecutive accesses spent on a page during a streaming sweep.
    dwell: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.memory_ratio <= 1:
            raise ValueError("memory_ratio must be in (0, 1]")
        if not 0 <= self.hot_fraction <= 1:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.hot_pages > self.working_set_pages:
            raise ValueError("hot set cannot exceed the working set")
        if self.working_set_pages <= 0 or self.dwell <= 0:
            raise ValueError("sizes must be positive")

    def events(self, rng: random.Random) -> Iterator[MemoryEvent]:
        """Infinite (gap, vpn) stream."""
        mean_gap = 1.0 / self.memory_ratio - 1.0
        sweep_position = 0
        dwell_left = self.dwell
        while True:
            gap = _jittered_gap(mean_gap, rng)
            if rng.random() < self.hot_fraction:
                vpn = self.base_vpn + rng.randrange(self.hot_pages)
            elif self.streaming:
                vpn = self.base_vpn + sweep_position
                dwell_left -= 1
                if dwell_left == 0:
                    dwell_left = self.dwell
                    sweep_position = (sweep_position + 1) % self.working_set_pages
            else:
                vpn = self.base_vpn + rng.randrange(self.working_set_pages)
            yield (gap, vpn)


def _jittered_gap(mean_gap: float, rng: random.Random) -> int:
    """An integer gap with the requested mean (geometric-ish jitter)."""
    if mean_gap <= 0:
        return 0
    return min(int(rng.expovariate(1.0 / mean_gap)), 200)


#: The four selected TLB-intensive benchmarks (Section 6.2), with disjoint
#: address ranges so multiprogrammed runs do not share pages.
POVRAY = SpecProfile(
    name="povray",
    working_set_pages=64,
    hot_pages=12,
    hot_fraction=0.90,
    memory_ratio=0.35,
    base_vpn=0x1000,
)
OMNETPP = SpecProfile(
    name="omnetpp",
    working_set_pages=256,
    hot_pages=24,
    hot_fraction=0.80,
    memory_ratio=0.40,
    base_vpn=0x2000,
)
XALANCBMK = SpecProfile(
    name="xalancbmk",
    working_set_pages=160,
    hot_pages=16,
    hot_fraction=0.85,
    memory_ratio=0.40,
    base_vpn=0x3000,
)
CACTUSADM = SpecProfile(
    name="cactusADM",
    working_set_pages=4096,
    hot_pages=4,
    hot_fraction=0.50,
    memory_ratio=0.45,
    base_vpn=0x4000,
    streaming=True,
)

SPEC_BENCHMARKS = (POVRAY, OMNETPP, XALANCBMK, CACTUSADM)


def by_name(name: str) -> SpecProfile:
    for profile in SPEC_BENCHMARKS:
        if profile.name == name:
            return profile
    raise KeyError(
        f"unknown benchmark {name!r}; available: "
        f"{[p.name for p in SPEC_BENCHMARKS]}"
    )
