"""Smoke tests for the example scripts."""

import pathlib
import py_compile
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def example_paths():
    return sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_at_least_six_examples_exist(self):
        assert len(example_paths()) >= 6
        names = {path.name for path in example_paths()}
        assert "quickstart.py" in names

    @pytest.mark.parametrize(
        "path", example_paths(), ids=lambda path: path.name
    )
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "timing channel" in out
        assert "SA" in out and "RF" in out

    def test_enumerate_vulnerabilities_runs(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "enumerate_vulnerabilities.py"),
            run_name="__main__",
        )
        out = capsys.readouterr().out
        assert "exact match with the paper's Table 2: True" in out
