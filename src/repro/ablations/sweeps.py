"""Design-space sweeps around the paper's design choices.

The paper fixes several knobs and flags the alternatives as future work;
these sweeps quantify them:

* **SP partition split** (Section 4.1.2: "assignment of different number
  of ways ... could be further explored") -- victim-ways from 1 to
  ways-1, measuring each side's MPKI;
* **RF secure-region size** (the region is a software knob; Section 5.3
  uses 3 and 31 pages) -- region size against the victim's MPKI overhead
  and the Prime + Probe channel capacity;
* **replacement policy** (the threat model excludes LRU-specific attacks;
  this sweep shows the baseline attack works under LRU/FIFO and degrades
  under random replacement, motivating that exclusion).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.attacks.prime_probe import tlbleed_attack
from repro.model.capacity import ChannelEstimate
from repro.mmu import make_walker
from repro.perf.timing import ScheduledProcess, simulate
from repro.security.evaluate import EvaluationConfig, SecurityEvaluator
from repro.security.kinds import TLBKind, make_tlb
from repro.tlb import ReplacementKind, TLBConfig
from repro.workloads.rsa import RSAWorkload, generate_key
from repro.workloads.spec import OMNETPP, SpecProfile


@dataclass(frozen=True)
class PartitionPoint:
    """One SP split: victim ways vs both sides' measured MPKI."""

    victim_ways: int
    attacker_ways: int
    victim_mpki: float
    attacker_mpki: float


def sp_partition_point(
    victim_ways: int,
    config: TLBConfig = TLBConfig(entries=32, ways=4),
    spec: SpecProfile = OMNETPP,
    instructions: int = 60_000,
    rsa_runs: int = 10,
    seed: int = 0,
) -> PartitionPoint:
    """One SP split measurement (a pure, shardable sweep point)."""
    key = generate_key(bits=64, seed=3)
    tlb = make_tlb(
        TLBKind.SP, config, victim_asid=1, victim_ways=victim_ways
    )
    results = simulate(
        tlb,
        [
            ScheduledProcess(RSAWorkload(key=key, runs=rsa_runs), asid=1),
            ScheduledProcess(spec, asid=2, instructions=instructions),
        ],
        walker=make_walker(),
        seed=seed,
    )
    return PartitionPoint(
        victim_ways=victim_ways,
        attacker_ways=config.ways - victim_ways,
        victim_mpki=results["RSA"].mpki,
        attacker_mpki=results[spec.name].mpki,
    )


def sweep_sp_partition(
    config: TLBConfig = TLBConfig(entries=32, ways=4),
    spec: SpecProfile = OMNETPP,
    instructions: int = 60_000,
    rsa_runs: int = 10,
    seed: int = 0,
) -> List[PartitionPoint]:
    """MPKI of the victim (RSA) and the attacker side (a SPEC workload)
    as the victim's share of the ways grows."""
    return [
        sp_partition_point(
            victim_ways, config, spec, instructions, rsa_runs, seed
        )
        for victim_ways in range(1, config.ways)
    ]


@dataclass(frozen=True)
class RegionPoint:
    """One RF secure-region size: overhead and residual channel."""

    region_pages: int
    victim_mpki: float
    prime_probe_capacity: float


def rf_region_point(
    pages: int,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    rsa_runs: int = 10,
    trials: int = 120,
    seed: int = 0,
) -> RegionPoint:
    """One RF secure-region size measurement (a pure, shardable point)."""
    from repro.model.patterns import Observation, ThreeStepPattern, Vulnerability
    from repro.model.states import A_D, V_U

    key = generate_key(bits=64, seed=3)
    prime_probe = Vulnerability(
        ThreeStepPattern((A_D, V_U, A_D)), Observation.SLOW
    )
    # Performance: the victim's own trace with the region covering its
    # buffers (clipped to the region size).
    workload = RSAWorkload(key=key, runs=rsa_runs)
    tlb = make_tlb(TLBKind.RF, config, victim_asid=1, rng=random.Random(seed))
    tlb.set_secure_region(
        workload.buffers.sbase, min(pages, workload.buffers.ssize)
    )
    results = simulate(
        tlb,
        [ScheduledProcess(workload, asid=1)],
        walker=make_walker(),
        seed=seed,
    )
    # Security: the Prime + Probe estimate with this region size.
    evaluator = SecurityEvaluator(EvaluationConfig(trials=trials))
    result = _evaluate_with_region(evaluator, prime_probe, pages)
    return RegionPoint(
        region_pages=pages,
        victim_mpki=results["RSA"].mpki,
        prime_probe_capacity=result.capacity,
    )


def sweep_rf_region(
    region_sizes=(1, 2, 3, 8, 16, 31),
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    rsa_runs: int = 10,
    trials: int = 120,
    seed: int = 0,
) -> List[RegionPoint]:
    """Secure-region size vs the victim's MPKI and the measured
    Prime + Probe capacity against the monitored set.

    Larger regions spread the random fills thinner (each probe set is hit
    with probability ~1/min(region, sets)), while costing the victim more
    no-fill misses.
    """
    return [
        rf_region_point(pages, config, rsa_runs, trials, seed)
        for pages in region_sizes
    ]


def _evaluate_with_region(
    evaluator: SecurityEvaluator, vulnerability, pages: int
) -> ChannelEstimate:
    """Run one vulnerability's benchmark with an explicit region size."""
    from repro.isa import assemble
    from repro.security.benchgen import generate

    layout = evaluator.config.layout_for(TLBKind.RF)
    rng = random.Random(pages * 7919 + 13)
    misses = {True: 0, False: 0}
    for mapped in (True, False):
        program = assemble(
            generate(vulnerability, layout, mapped=mapped, ssize=pages)
        )
        for _ in range(evaluator.config.trials):
            if evaluator.run_trial(program, TLBKind.RF, rng):
                misses[mapped] += 1
    return ChannelEstimate(
        misses_mapped=misses[True],
        misses_unmapped=misses[False],
        trials_per_behaviour=evaluator.config.trials,
    )


@dataclass(frozen=True)
class PolicyPoint:
    """TLBleed accuracy under one replacement policy."""

    policy: ReplacementKind
    accuracy: float
    recovered_exactly: bool


def replacement_policy_point(
    policy: ReplacementKind, seed: int = 0
) -> PolicyPoint:
    """TLBleed single-trace accuracy under one policy (a pure point)."""
    key = generate_key(bits=64, seed=11)
    config = TLBConfig(entries=32, ways=8, replacement=policy)
    result = tlbleed_attack(TLBKind.SA, key=key, config=config, seed=seed)
    return PolicyPoint(
        policy=policy,
        accuracy=result.accuracy,
        recovered_exactly=result.recovered_exactly,
    )


def sweep_replacement_policy(
    policies=(
        ReplacementKind.LRU,
        ReplacementKind.TREE_PLRU,
        ReplacementKind.FIFO,
        ReplacementKind.RANDOM,
    ),
    seed: int = 0,
) -> List[PolicyPoint]:
    """TLBleed single-trace accuracy against the SA TLB per policy."""
    return [replacement_policy_point(policy, seed) for policy in policies]


@dataclass(frozen=True)
class WalkLatencyPoint:
    """IPC at one page-table-walk cost (the timing model's free knob)."""

    cycles_per_level: int
    ipc: float
    mpki: float


def walk_latency_point(
    cost: int,
    spec: SpecProfile = OMNETPP,
    instructions: int = 60_000,
    seed: int = 0,
) -> WalkLatencyPoint:
    """One walk-cost sensitivity measurement (a pure, shardable point)."""
    from repro.mmu import WalkerConfig

    tlb = make_tlb(TLBKind.SA, TLBConfig(entries=32, ways=4))
    results = simulate(
        tlb,
        [ScheduledProcess(spec, asid=1, instructions=instructions)],
        walker=make_walker(WalkerConfig(cycles_per_level=cost)),
        seed=seed,
    )
    total = results["total"]
    return WalkLatencyPoint(
        cycles_per_level=cost, ipc=total.ipc, mpki=total.mpki
    )


def sweep_walk_latency(
    costs=(2, 5, 10, 20, 40),
    spec: SpecProfile = OMNETPP,
    instructions: int = 60_000,
    seed: int = 0,
) -> List[WalkLatencyPoint]:
    """Sensitivity of the Figure 7 metrics to the walk-cost parameter.

    MPKI is a pure hit/miss count and must be invariant; IPC degrades as
    walks get more expensive.  This bounds how much of the reproduction's
    IPC story depends on the one free constant of the timing model.
    """
    return [
        walk_latency_point(cost, spec, instructions, seed) for cost in costs
    ]


def format_partition_sweep(points: List[PartitionPoint]) -> str:
    lines = [f"{'victim ways':>11} {'attacker ways':>13} "
             f"{'victim MPKI':>12} {'attacker MPKI':>14}", "-" * 55]
    for point in points:
        lines.append(
            f"{point.victim_ways:>11} {point.attacker_ways:>13} "
            f"{point.victim_mpki:>12.3f} {point.attacker_mpki:>14.3f}"
        )
    return "\n".join(lines)


def format_region_sweep(points: List[RegionPoint]) -> str:
    lines = [f"{'region pages':>12} {'victim MPKI':>12} "
             f"{'P+P capacity':>13}", "-" * 40]
    for point in points:
        lines.append(
            f"{point.region_pages:>12} {point.victim_mpki:>12.3f} "
            f"{point.prime_probe_capacity:>13.3f}"
        )
    return "\n".join(lines)
