"""Behavioural tests for the Random-Fill TLB (Section 4.2)."""

import random

import pytest

from repro.tlb import IdentityTranslator, RandomFillTLB, TLBConfig
from repro.tlb.rf import RandomFillEngine

VICTIM = 1
ATTACKER = 2

# The Section 5.3 security configuration: 8-way, 32 entries, 4 sets.
CONFIG = TLBConfig(entries=32, ways=8)


@pytest.fixture
def translator():
    return IdentityTranslator()


def make_tlb(sbase=100, ssize=3, seed=7):
    return RandomFillTLB(
        CONFIG,
        victim_asid=VICTIM,
        sbase=sbase,
        ssize=ssize,
        rng=random.Random(seed),
    )


class TestNonSecureBehaviour:
    def test_plain_misses_behave_like_sa(self, translator):
        tlb = make_tlb()
        result = tlb.translate(vpn=5, asid=ATTACKER, translator=translator)
        assert result.miss and result.filled
        assert tlb.resident(5, ATTACKER)
        assert tlb.translate(5, ATTACKER, translator).hit

    def test_hits_identical_to_sa_for_victim(self, translator):
        tlb = make_tlb()
        tlb.translate(5, VICTIM, translator)  # non-secure page
        assert tlb.translate(5, VICTIM, translator).hit


class TestSecureRequests:
    def test_secure_miss_never_fills_requested_page_unless_randomly_chosen(
        self, translator
    ):
        tlb = make_tlb(sbase=100, ssize=31)
        result = tlb.translate(vpn=100, asid=VICTIM, translator=translator)
        assert result.miss
        assert not result.filled
        # Some secure page was randomly filled instead.
        secure_entries = [e for e in tlb.entries() if e.sec]
        assert len(secure_entries) == 1
        assert 100 <= secure_entries[0].vpn < 131

    def test_secure_response_goes_through_buffer(self, translator):
        tlb = make_tlb()
        result = tlb.translate(vpn=101, asid=VICTIM, translator=translator)
        assert result.ppn == 101  # the CPU still gets D's translation
        assert tlb.buffer is not None and tlb.buffer.vpn == 101
        # The buffer is cleaned on the next request.
        tlb.translate(vpn=7, asid=ATTACKER, translator=translator)
        assert tlb.buffer is None

    def test_random_fill_is_uniform_over_region(self, translator):
        tlb = make_tlb(sbase=100, ssize=3, seed=3)
        filled = set()
        for _ in range(200):
            tlb.translate(vpn=100, asid=VICTIM, translator=translator)
            for entry in tlb.entries():
                filled.add(entry.vpn)
            tlb.flush_all()
        assert filled == {100, 101, 102}

    def test_attacker_addresses_in_region_range_are_not_secure(self, translator):
        # Sec_D requires the victim ASID: the attacker's address space is
        # distinct even if the numeric VPN falls inside [sbase, sbase+ssize).
        tlb = make_tlb()
        result = tlb.translate(vpn=100, asid=ATTACKER, translator=translator)
        assert result.filled
        assert tlb.resident(100, ATTACKER)

    def test_secure_miss_counts_in_stats(self, translator):
        tlb = make_tlb()
        tlb.translate(vpn=100, asid=VICTIM, translator=translator)
        assert tlb.stats.no_fills == 1
        assert tlb.stats.random_fills == 1
        assert tlb.stats.misses == 1


class TestSecureVictimProtection:
    def _drive_attacker_against_secure_entry(self, seed, translator):
        """Install one secure entry, then make the attacker's fill target it.

        Returns (secure entry survived, the attacker's second AccessResult).
        """
        tlb = RandomFillTLB(
            TLBConfig(entries=8, ways=2),  # 4 sets
            victim_asid=VICTIM,
            sbase=0,
            ssize=4,
            rng=random.Random(seed),
        )
        tlb.translate(vpn=0, asid=VICTIM, translator=translator)
        secure = [e for e in tlb.entries() if e.sec]
        assert len(secure) == 1
        target_set = secure[0].vpn % 4
        # First attacker access fills the set's free way; the second finds
        # the secure entry as its LRU victim R and triggers the protection.
        tlb.translate(vpn=100 * 4 + target_set, asid=ATTACKER, translator=translator)
        result = tlb.translate(
            vpn=101 * 4 + target_set, asid=ATTACKER, translator=translator
        )
        survived = any(e.sec for e in tlb.entries())
        return survived, result, tlb

    def test_protected_fill_is_suppressed_and_buffered(self, translator):
        _survived, result, tlb = self._drive_attacker_against_secure_entry(
            seed=11, translator=translator
        )
        # The attacker's request is answered through the buffer, not filled.
        assert result.miss and not result.filled
        assert tlb.stats.no_fills >= 1
        assert tlb.buffer is not None

    def test_eviction_of_secure_entry_is_nondeterministic(self, translator):
        # Section 4.2.1: "an attacker cannot *deterministically* evict the
        # secure address" -- the random fill's own victim R' may still hit
        # it by chance.  Across seeds both outcomes must occur.
        outcomes = {
            self._drive_attacker_against_secure_entry(seed, translator)[0]
            for seed in range(24)
        }
        assert outcomes == {True, False}

    def test_suppressed_request_usually_stays_uncached(self, translator):
        # Unlike the SA TLB, the attacker's own suppressed request is not
        # installed (unless the RFE happens to draw D' == D), so repeating
        # it usually misses again: no deterministic foothold in the set.
        uncached = 0
        for seed in range(24):
            _s, result, tlb = self._drive_attacker_against_secure_entry(
                seed=seed, translator=translator
            )
            if not tlb.resident(result.ppn, ATTACKER):
                uncached += 1
        assert uncached > 12  # D' == D only with probability 1/nsets


class TestRegionRegisters:
    def test_set_secure_region_updates_predicate(self):
        tlb = make_tlb(sbase=0, ssize=0)
        assert not tlb.is_secure(5, VICTIM)
        tlb.set_secure_region(sbase=4, ssize=2, victim_asid=3)
        assert tlb.is_secure(4, 3)
        assert tlb.is_secure(5, 3)
        assert not tlb.is_secure(6, 3)
        assert not tlb.is_secure(4, VICTIM)

    def test_empty_region_disables_protection(self, translator):
        tlb = make_tlb(sbase=100, ssize=0)
        result = tlb.translate(vpn=100, asid=VICTIM, translator=translator)
        assert result.filled  # behaves like a standard SA TLB

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_tlb().set_secure_region(0, -1)


class TestRandomFillEngine:
    def test_secure_page_within_region(self):
        engine = RandomFillEngine(random.Random(1))
        for _ in range(100):
            page = engine.secure_page(sbase=40, ssize=5)
            assert 40 <= page < 45

    def test_randomized_set_page_preserves_high_bits(self):
        engine = RandomFillEngine(random.Random(1))
        for _ in range(100):
            page = engine.randomized_set_page(vpn=0x1234, sbase=8, ssize=3, nsets=4)
            assert page // 4 == 0x1234 // 4
            # Footnote 6: the index spans min(ssize, nsets) sets from the
            # region's starting index (8 % 4 == 0 -> indices 0..2).
            assert page % 4 in {0, 1, 2}

    def test_empty_region_rejected(self):
        engine = RandomFillEngine()
        with pytest.raises(ValueError):
            engine.secure_page(0, 0)
        with pytest.raises(ValueError):
            engine.randomized_set_page(0, 0, 0, 4)
