"""``run_all``: the one-call orchestration entry point.

Expands every registered experiment into cells, resolves what it can from
the result cache, shards the rest across worker processes, stores fresh
results back, reassembles the serial path's artifacts, and returns a
:class:`~repro.runner.progress.RunReport`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .experiments import DEFAULT_OPTIONS
from .progress import ProgressPrinter, RunLog, RunReport
from .registry import all_experiments, ensure_default_experiments, expand_units
from .scheduler import Scheduler, TaskOutcome, run_units_serially
from .results import write_artifacts


def default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def run_all(
    jobs: Optional[int] = None,
    use_cache: bool = True,
    filters: Optional[Iterable[str]] = None,
    results_dir: Union[Path, str] = "results",
    cache_dir: Union[Path, str, None] = None,
    log_path: Union[Path, str, None] = None,
    options: Optional[Mapping[str, Any]] = None,
    progress: bool = True,
    max_retries: int = 2,
    backoff: float = 0.05,
) -> RunReport:
    """Run every (filtered) experiment cell and merge the artifacts.

    ``log_path`` defaults to ``<results_dir>/run_log.jsonl``; pass an
    explicit path to redirect it.  ``options`` overrides entries of
    :data:`~repro.runner.experiments.DEFAULT_OPTIONS` (e.g. smaller trial
    counts for smoke tests).
    """
    started = time.monotonic()
    ensure_default_experiments()
    jobs = jobs if jobs is not None else default_jobs()
    jobs = max(1, jobs)
    merged_options: Dict[str, Any] = dict(DEFAULT_OPTIONS)
    if options:
        merged_options.update(options)
    filters = list(filters) if filters else None

    units = expand_units(merged_options, filters)
    report = RunReport(units_total=len(units), jobs=jobs)

    log = RunLog(
        log_path if log_path is not None
        else Path(results_dir) / "run_log.jsonl"
    )
    printer = ProgressPrinter(total=len(units), enabled=progress)

    cache = (
        ResultCache(cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR)
        if use_cache
        else None
    )
    log.emit(
        "run_start",
        jobs=jobs,
        units=len(units),
        filters=filters,
        cache=bool(cache),
        code_version=cache.code_version if cache else None,
    )

    # Resolve cache hits in-process; only misses are scheduled.
    outcomes: Dict[int, TaskOutcome] = {}
    to_run: List[Any] = []
    for task_id, unit in enumerate(units):
        if cache is not None:
            hit, value = cache.get(unit)
            if hit:
                outcomes[task_id] = TaskOutcome(
                    unit=unit, value=value, cached=True
                )
                log.emit(
                    "unit_done",
                    experiment=unit.experiment,
                    key=unit.key,
                    status="ok",
                    cached=True,
                    elapsed=0.0,
                )
                continue
        to_run.append((task_id, unit))

    printer.cache_hits = len(outcomes)
    printer.base_done = len(outcomes)
    if outcomes:
        printer.note(
            f"{len(outcomes)}/{len(units)} cells from cache,"
            f" {len(to_run)} to run"
        )

    if to_run and jobs > 1:
        scheduler = Scheduler(
            jobs=jobs,
            max_retries=max_retries,
            backoff=backoff,
            log=log,
            progress=printer,
        )
        fresh = scheduler.run(to_run)
        report.retries = scheduler.retries
        report.worker_crashes = scheduler.worker_crashes
        report.worker_busy = dict(scheduler.worker_busy)
    elif to_run:
        fresh = run_units_serially(to_run, log)
        report.worker_busy = {
            0: sum(outcome.elapsed for outcome in fresh.values())
        }
    else:
        fresh = {}

    if cache is not None:
        for outcome in fresh.values():
            if not outcome.failed:
                cache.put(outcome.unit, outcome.value, outcome.elapsed)
    outcomes.update(fresh)

    report.cache_hits = cache.stats.hits if cache else 0
    report.cache_misses = cache.stats.misses if cache else 0
    report.completed = sum(
        1 for outcome in outcomes.values() if not outcome.failed
    )
    report.failed = [
        outcomes[task_id].unit.ident
        for task_id in sorted(outcomes)
        if outcomes[task_id].failed
    ]

    # Group completed values per experiment, in unit enumeration order.
    grouped: Dict[str, List[Any]] = {}
    incomplete: set = set()
    for task_id, unit in enumerate(units):
        outcome = outcomes.get(task_id)
        if outcome is None or outcome.failed:
            incomplete.add(unit.experiment)
            continue
        grouped.setdefault(unit.experiment, []).append(outcome.value)

    assembled: Dict[str, Any] = {}
    for experiment in all_experiments():
        name = experiment.name
        if name in incomplete or name not in grouped:
            continue
        # A filtered run may hold only a subset of an experiment's cells;
        # partial sets cannot be reassembled into a faithful artifact.
        if len(grouped[name]) != len(experiment.units(merged_options)):
            continue
        assembled[name] = experiment.assemble(grouped[name], merged_options)

    report.artifacts = write_artifacts(
        assembled, results_dir, merged_options, log
    )
    report.elapsed = time.monotonic() - started
    log.emit("run_end", **report.summary_fields())
    log.close()
    printer.update(
        done=len(outcomes) - printer.base_done,
        retries=report.retries,
        workers=0,
        force=True,
    )
    if report.artifacts:
        printer.note(f"wrote {len(report.artifacts)} artifacts")
    if report.failed:
        printer.note(f"FAILED cells: {', '.join(report.failed)}")
    return report
