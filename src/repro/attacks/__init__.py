"""End-to-end attack demonstrations on the simulated TLB designs.

* :mod:`repro.attacks.prime_probe` -- a TLBleed-style Prime + Probe attack
  recovering RSA exponent bits from the traced libgcrypt-like victim;
* :mod:`repro.attacks.double_page_fault` -- the internal-collision scan of
  Hund et al., recovering the victim's secret page;
* :mod:`repro.attacks.covert_channel` -- a Prime + Probe covert channel
  with empirical channel-capacity measurement (Equation 1).

All three succeed against the standard SA TLB and are defeated by the
Random-Fill TLB; the partition-based SP TLB stops the cross-process
attacks.
"""

from .covert_channel import (
    CovertChannelResult,
    parallel_transmit,
    random_message,
    transmit,
)
from .double_page_fault import (
    ScanResult,
    probe_candidate,
    scan_secret_page,
)
from .set_profiling import ProfilingResult, profile_secret_set
from .prime_probe import (
    AttackResult,
    PrimeProbeAttacker,
    eddsa_attack,
    itlb_attack,
    multi_trace_attack,
    noisy_tlbleed_attack,
    recover_exponent,
    recover_secret_bits,
    tlbleed_attack,
)

__all__ = [
    "AttackResult",
    "CovertChannelResult",
    "eddsa_attack",
    "PrimeProbeAttacker",
    "ProfilingResult",
    "profile_secret_set",
    "ScanResult",
    "probe_candidate",
    "itlb_attack",
    "multi_trace_attack",
    "noisy_tlbleed_attack",
    "parallel_transmit",
    "random_message",
    "recover_exponent",
    "recover_secret_bits",
    "scan_secret_page",
    "tlbleed_attack",
    "transmit",
]
