"""Benchmark: the Section 2.3 mitigation ladder and the extensions.

Regenerates the paper's defence-count claims for every pre-existing
mitigation (ASIDs 10/24, Sanctum/SGX flush 14/24, fully associative
18/24) next to the paper's designs, plus this reproduction's extension
experiments: the large-page software mitigation and the two-level
hierarchy study.
"""

import pytest

from repro.ablations import (
    evaluate_all_mitigations,
    evaluate_hierarchies,
    evaluate_large_pages,
    format_hierarchy_results,
    format_large_page_comparison,
    format_mitigation_ladder,
)

TRIALS = 30


def test_mitigation_ladder(benchmark):
    ladder = benchmark.pedantic(
        evaluate_all_mitigations, kwargs=dict(trials=TRIALS), rounds=1, iterations=1
    )
    print()
    print(format_mitigation_ladder(ladder))
    assert [result.defended for result in ladder] == [10, 14, 18, 14, 24]


def test_large_page_mitigation(benchmark):
    result = benchmark.pedantic(
        evaluate_large_pages, kwargs=dict(trials=TRIALS), rounds=1, iterations=1
    )
    print()
    print(format_large_page_comparison(result, 10, 13))
    assert result.base_defended == 24
    assert result.extended_defended == 48


def test_hierarchy_study(benchmark):
    results = benchmark.pedantic(
        evaluate_hierarchies, kwargs=dict(trials=TRIALS), rounds=1, iterations=1
    )
    print()
    print(format_hierarchy_results(results))
    defended = [result.defended for result in results]
    assert defended[1] < 24  # RF L1 alone is insufficient
    assert defended[2] == 24  # RF at both levels
