"""Deterministic fault injection and chaos hardening.

The reproduction's conclusions are only as good as the stack that
computes them, so this package attacks that stack on purpose, at both
layers, and requires every attack to be *caught*:

* :mod:`repro.faults.plan` -- the declarative, seeded
  :class:`FaultPlan`/:class:`FaultSpec` taxonomy (what, where, when);
* :mod:`repro.faults.injector` -- arms sim-layer faults (TLB bit flips,
  dropped flushes, walk jitter, spurious evictions) against a live
  :class:`repro.sim.MemorySystem`, silently, the way hardware fails;
* :mod:`repro.faults.detectors` -- the assertion battery (structural
  audit, shadow model, page-table oracle, Sec-bit, walk timing, flush
  efficacy) that must flag each injected fault;
* :mod:`repro.faults.chaos` -- deterministic runner-layer misbehaviour
  (hang / crash / corrupt result / poison cells) for the scheduler's
  watchdog, integrity-envelope and quarantine hardening, plus the
  executor-layer :class:`ExecutorChaosConfig` (SIGKILLs, frozen
  heartbeats, duplicate/stale leases, torn journals, tampered results)
  for the work-stealing lease protocol;
* :mod:`repro.faults.campaign` -- the campaigns behind
  ``python -m repro chaos``, producing the detection matrix that fails
  CI on any silent fault.
"""

from .campaign import (
    PROBE_EXPERIMENT,
    CampaignReport,
    CampaignRow,
    build_campaign_memory,
    drive_workload,
    ensure_probe_experiment,
    run_campaigns,
    run_executor_campaign,
    run_runner_campaign,
    run_sim_campaign,
)
from .chaos import (
    EXECUTOR_FAULT_MODES,
    WORKER_FAULT_MODES,
    ChaosConfig,
    ExecutorChaosConfig,
    default_chaos,
)
from .detectors import (
    Detector,
    DetectorSuite,
    FlushEfficacyDetector,
    SecBitDetector,
    ShadowModelDetector,
    TLBAuditDetector,
    TranslationOracleDetector,
    WalkTimingDetector,
)
from .injector import InjectedFault, SimFaultInjector
from .plan import (
    EXECUTOR_FAULT_KINDS,
    FAULT_KINDS,
    RUNNER_FAULT_KINDS,
    SIM_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    default_executor_plan,
    default_runner_plan,
    default_sim_plan,
)

__all__ = [
    "CampaignReport",
    "CampaignRow",
    "ChaosConfig",
    "Detector",
    "DetectorSuite",
    "EXECUTOR_FAULT_KINDS",
    "EXECUTOR_FAULT_MODES",
    "ExecutorChaosConfig",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FlushEfficacyDetector",
    "InjectedFault",
    "PROBE_EXPERIMENT",
    "RUNNER_FAULT_KINDS",
    "SIM_FAULT_KINDS",
    "SecBitDetector",
    "ShadowModelDetector",
    "SimFaultInjector",
    "TLBAuditDetector",
    "TranslationOracleDetector",
    "WORKER_FAULT_MODES",
    "WalkTimingDetector",
    "build_campaign_memory",
    "default_chaos",
    "default_executor_plan",
    "default_runner_plan",
    "default_sim_plan",
    "drive_workload",
    "ensure_probe_experiment",
    "run_campaigns",
    "run_executor_campaign",
    "run_runner_campaign",
    "run_sim_campaign",
]
