"""Two-pass assembler for the benchmark dialect.

Grammar (one statement per line, ``#`` comments):

* ``label:`` -- a text or data label, depending on the current section;
* ``.text`` / ``.data`` -- section switches (``.text`` is the default);
* ``.org ADDRESS`` -- (data section) move the placement cursor, letting the
  benchmark generator put arrays on chosen pages;
* ``.dword V1[, V2...]`` -- (data section) place 64-bit words;
* ``.zero N`` -- (data section) skip N bytes;
* instructions, e.g. ``ldnorm x2, 0(x1)``, ``csrw process_id, 1``,
  ``beq x3, x4, no_tlb_miss``, ``la x1, tdat2048``, ``sfence.vma`` or
  ``sfence.vma x1, x2``.

The output :class:`Program` carries the instruction list, branch labels,
data symbols, and the initial data image (virtual address -> 64-bit value).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import (
    ALL_MNEMONICS,
    BRANCH_OPS,
    Instruction,
    LOAD_OPS,
    REG_IMM_OPS,
    REG_REG_OPS,
    REGISTER_NAMES,
    STORE_OPS,
    TERMINATORS,
)

#: Default placement of the data section (page 16).
DATA_BASE = 0x10_000
WORD = 8


class AssemblyError(Exception):
    """A syntax or semantic error, annotated with the source line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass
class Program:
    """An assembled program ready for :class:`repro.isa.cpu.CPU`."""

    instructions: List[Instruction] = field(default_factory=list)
    #: Text label -> instruction index.
    labels: Dict[str, int] = field(default_factory=dict)
    #: Data symbol -> virtual byte address.
    symbols: Dict[str, int] = field(default_factory=dict)
    #: Initial data image: virtual byte address -> 64-bit value.
    data: Dict[int, int] = field(default_factory=dict)
    source: str = ""

    def label_target(self, name: str, line: int = 0) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise AssemblyError(f"undefined label {name!r}", line) from None

    def symbol_address(self, name: str, line: int = 0) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise AssemblyError(f"undefined data symbol {name!r}", line) from None


_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")
_LABEL = re.compile(r"^([A-Za-z_]\w*):\s*(.*)$")


def _register(token: str, line: int) -> int:
    try:
        return REGISTER_NAMES[token]
    except KeyError:
        raise AssemblyError(f"unknown register {token!r}", line) from None


def _integer(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {token!r}", line) from None


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


def assemble(text: str, data_base: int = DATA_BASE) -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    program = Program(source=text)
    section = ".text"
    cursor = data_base
    pending_data_labels: List[str] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        label_match = _LABEL.match(line)
        if label_match:
            name = label_match.group(1)
            if section == ".text":
                if name in program.labels:
                    raise AssemblyError(f"duplicate label {name!r}", line_number)
                program.labels[name] = len(program.instructions)
            else:
                pending_data_labels.append(name)
            line = label_match.group(2).strip()
            if not line:
                continue

        if line.startswith("."):
            section, cursor = _directive(
                line, section, cursor, program, pending_data_labels, line_number
            )
            continue

        if section != ".text":
            # Data definitions without a leading dot (label handled above).
            raise AssemblyError(
                f"unexpected statement in data section: {line!r}", line_number
            )

        program.instructions.append(_instruction(line, line_number))

    if pending_data_labels:
        # Labels at the very end of the data section point at the cursor.
        for name in pending_data_labels:
            program.symbols[name] = cursor
    _check_references(program)
    return program


def _directive(
    line: str,
    section: str,
    cursor: int,
    program: Program,
    pending_labels: List[str],
    line_number: int,
) -> Tuple[str, int]:
    parts = line.split(None, 1)
    name = parts[0]
    rest = parts[1] if len(parts) > 1 else ""

    if name in (".text", ".data"):
        return name, cursor

    if section != ".data":
        raise AssemblyError(f"{name} only valid in .data", line_number)

    if name == ".org":
        cursor = _integer(rest.strip(), line_number)
        if cursor % WORD:
            raise AssemblyError(".org must be 8-byte aligned", line_number)
    elif name == ".dword":
        for label in pending_labels:
            program.symbols[label] = cursor
        pending_labels.clear()
        for token in _split_operands(rest):
            program.data[cursor] = _integer(token, line_number) % (1 << 64)
            cursor += WORD
    elif name == ".zero":
        for label in pending_labels:
            program.symbols[label] = cursor
        pending_labels.clear()
        size = _integer(rest.strip(), line_number)
        if size < 0 or size % WORD:
            raise AssemblyError(".zero needs a non-negative multiple of 8", line_number)
        cursor += size
    else:
        raise AssemblyError(f"unknown directive {name}", line_number)
    return section, cursor


def _instruction(line: str, line_number: int) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(rest)

    if mnemonic not in ALL_MNEMONICS:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_number)

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"{mnemonic} expects {count} operands, got {len(operands)}",
                line_number,
            )

    if mnemonic in REG_REG_OPS:
        need(3)
        return Instruction(
            mnemonic,
            rd=_register(operands[0], line_number),
            rs1=_register(operands[1], line_number),
            rs2=_register(operands[2], line_number),
            line=line_number,
        )

    if mnemonic in REG_IMM_OPS:
        need(3)
        return Instruction(
            mnemonic,
            rd=_register(operands[0], line_number),
            rs1=_register(operands[1], line_number),
            imm=_integer(operands[2], line_number),
            line=line_number,
        )

    if mnemonic in LOAD_OPS or mnemonic in STORE_OPS:
        need(2)
        reg = _register(operands[0], line_number)
        match = _MEM_OPERAND.match(operands[1])
        if not match:
            raise AssemblyError(
                f"memory operand must look like 0(x1), got {operands[1]!r}",
                line_number,
            )
        offset = _integer(match.group(1), line_number)
        base = _register(match.group(2), line_number)
        if mnemonic in LOAD_OPS:
            return Instruction(
                mnemonic, rd=reg, rs1=base, imm=offset, line=line_number
            )
        return Instruction(
            mnemonic, rs2=reg, rs1=base, imm=offset, line=line_number
        )

    if mnemonic in BRANCH_OPS:
        need(3)
        return Instruction(
            mnemonic,
            rs1=_register(operands[0], line_number),
            rs2=_register(operands[1], line_number),
            symbol=operands[2],
            line=line_number,
        )

    if mnemonic == "li":
        need(2)
        return Instruction(
            mnemonic,
            rd=_register(operands[0], line_number),
            imm=_integer(operands[1], line_number),
            line=line_number,
        )

    if mnemonic == "mv":
        need(2)
        return Instruction(
            mnemonic,
            rd=_register(operands[0], line_number),
            rs1=_register(operands[1], line_number),
            line=line_number,
        )

    if mnemonic == "la":
        need(2)
        return Instruction(
            mnemonic,
            rd=_register(operands[0], line_number),
            symbol=operands[1],
            line=line_number,
        )

    if mnemonic == "j":
        need(1)
        return Instruction(mnemonic, symbol=operands[0], line=line_number)

    if mnemonic == "csrw":
        need(2)
        return Instruction(
            mnemonic,
            csr=operands[0],
            rs1=_register_or_none(operands[1]),
            imm=None if _register_or_none(operands[1]) is not None
            else _integer(operands[1], line_number),
            line=line_number,
        )

    if mnemonic == "csrwi":
        need(2)
        return Instruction(
            mnemonic,
            csr=operands[0],
            imm=_integer(operands[1], line_number),
            line=line_number,
        )

    if mnemonic == "csrr":
        need(2)
        return Instruction(
            mnemonic,
            rd=_register(operands[0], line_number),
            csr=operands[1],
            line=line_number,
        )

    if mnemonic == "sfence.vma":
        if len(operands) > 2:
            raise AssemblyError("sfence.vma takes at most 2 operands", line_number)
        rs1 = _register(operands[0], line_number) if len(operands) >= 1 else None
        rs2 = _register(operands[1], line_number) if len(operands) == 2 else None
        return Instruction(mnemonic, rs1=rs1, rs2=rs2, line=line_number)

    if mnemonic in TERMINATORS or mnemonic == "nop":
        need(0)
        return Instruction(mnemonic, line=line_number)

    raise AssemblyError(f"unhandled mnemonic {mnemonic!r}", line_number)  # pragma: no cover


def _register_or_none(token: str) -> Optional[int]:
    return REGISTER_NAMES.get(token)


def _check_references(program: Program) -> None:
    """Fail fast on dangling branch labels and data symbols."""
    for instruction in program.instructions:
        if instruction.symbol is None:
            continue
        if instruction.mnemonic in BRANCH_OPS or instruction.mnemonic == "j":
            program.label_target(instruction.symbol, instruction.line)
        elif instruction.mnemonic == "la":
            program.symbol_address(instruction.symbol, instruction.line)
