"""Tests for the trace-driven timing model and the scheduler."""


import pytest

from repro.mmu import SwitchPolicy
from repro.perf.timing import PerfResult, ScheduledProcess, simulate
from repro.tlb import SetAssociativeTLB, TLBConfig


class FixedTrace:
    """A workload replaying a fixed (gap, vpn) list."""

    def __init__(self, events, name="fixed"):
        self._events = list(events)
        self.name = name

    def events(self, rng):
        return iter(self._events)


def make_tlb(entries=8, ways=2):
    return SetAssociativeTLB(TLBConfig(entries=entries, ways=ways))


class TestSingleProcess:
    def test_counts_instructions_and_cycles(self):
        # Two events: (gap 4, page 1), (gap 0, page 1): 6 instructions.
        trace = FixedTrace([(4, 1), (0, 1)])
        results = simulate(make_tlb(), [ScheduledProcess(trace, asid=1)])
        total = results["total"]
        assert total.instructions == 6
        assert total.memory_accesses == 2
        assert total.misses == 1
        # gap(4) + miss(31) + gap(0) + hit(1).
        assert total.cycles == 4 + 31 + 0 + 1

    def test_ipc_and_mpki(self):
        trace = FixedTrace([(9, 1)] * 100)
        results = simulate(make_tlb(), [ScheduledProcess(trace, asid=1)])
        total = results["total"]
        assert total.mpki == pytest.approx(1000 * total.misses / 1000)
        assert 0 < total.ipc <= 1.0

    def test_instruction_budget_truncates(self):
        trace = FixedTrace([(0, vpn) for vpn in range(1000)])
        results = simulate(
            make_tlb(), [ScheduledProcess(trace, asid=1, instructions=100)]
        )
        assert results["total"].instructions == 100

    def test_all_hits_give_unit_ipc(self):
        trace = FixedTrace([(0, 1)] * 50)
        tlb = make_tlb()
        results = simulate(tlb, [ScheduledProcess(trace, asid=1)])
        total = results["total"]
        assert total.misses == 1  # only the cold miss
        assert total.ipc == pytest.approx(50 / (49 + 31))


class TestMultiprogramming:
    def test_per_process_results_reported(self):
        a = FixedTrace([(0, 1)] * 10, name="a")
        b = FixedTrace([(0, 100)] * 10, name="b")
        results = simulate(
            make_tlb(),
            [ScheduledProcess(a, asid=1), ScheduledProcess(b, asid=2)],
        )
        assert set(results) == {"a", "b", "total"}
        assert (
            results["total"].instructions
            == results["a"].instructions + results["b"].instructions
        )

    def test_quantum_interleaves_processes(self):
        # With a small quantum, process B's pages evict A's in a shared set.
        a = FixedTrace([(0, 0)] * 40, name="a")
        b = FixedTrace([(0, 4), (0, 8), (0, 12), (0, 16)] * 10, name="b")
        tlb = make_tlb(entries=4, ways=1)  # 4 sets, direct-mapped
        results = simulate(
            tlb,
            [ScheduledProcess(a, asid=1), ScheduledProcess(b, asid=2)],
            quantum=5,
        )
        # A's page is evicted by B's set-0 conflicts every switch.
        assert results["a"].misses > 1

    def test_flush_policy_increases_misses(self):
        a = FixedTrace([(0, 1)] * 60, name="a")
        b = FixedTrace([(0, 100)] * 60, name="b")

        def run(policy):
            tlb = make_tlb()
            return simulate(
                tlb,
                [ScheduledProcess(a, asid=1), ScheduledProcess(b, asid=2)],
                quantum=10,
                switch_policy=policy,
            )["total"].misses

        assert run(SwitchPolicy.FLUSH_ALL) > run(SwitchPolicy.KEEP)

    def test_empty_process_list_rejected(self):
        with pytest.raises(ValueError):
            simulate(make_tlb(), [])

    def test_bad_quantum_rejected(self):
        trace = FixedTrace([(0, 1)])
        with pytest.raises(ValueError):
            simulate(make_tlb(), [ScheduledProcess(trace, asid=1)], quantum=0)


class TestPerfResult:
    def test_absorb_accumulates(self):
        first = PerfResult("a", instructions=10, cycles=20, memory_accesses=3, misses=1)
        second = PerfResult("b", instructions=5, cycles=10, memory_accesses=2, misses=2)
        first.absorb(second)
        assert first.instructions == 15
        assert first.misses == 3

    def test_zero_division_guards(self):
        empty = PerfResult("x")
        assert empty.ipc == 0.0
        assert empty.mpki == 0.0
