"""Tests for TLB configuration and replacement policy plumbing."""

import pytest

from repro.tlb import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementKind,
    TLBConfig,
    TLBEntry,
    fully_associative,
    make_policy,
    single_entry,
)


class TestTLBConfig:
    def test_paper_security_configuration(self):
        # Section 5.3: 8-way, 32-entry -> 4 sets.
        config = TLBConfig(entries=32, ways=8)
        assert config.sets == 4
        assert not config.fully_associative

    def test_fully_associative_has_one_set(self):
        config = fully_associative(32)
        assert config.sets == 1
        assert config.fully_associative
        assert config.set_index(12345) == 0

    def test_single_entry(self):
        config = single_entry()
        assert config.entries == 1
        assert config.label() == "1E"

    def test_labels_match_figure7(self):
        assert TLBConfig(entries=32, ways=4).label() == "4W 32"
        assert TLBConfig(entries=128, ways=2).label() == "2W 128"
        assert fully_associative(128).label() == "FA 128"

    def test_set_index_uses_low_vpn_bits(self):
        config = TLBConfig(entries=32, ways=4)  # 8 sets
        assert config.set_index(0) == 0
        assert config.set_index(7) == 7
        assert config.set_index(8) == 0
        assert config.set_index(0x123) == 0x123 % 8

    def test_page_size(self):
        assert TLBConfig().page_size == 4096

    @pytest.mark.parametrize(
        "entries,ways", [(0, 1), (32, 0), (32, 5), (-4, 2), (2, 4)]
    )
    def test_invalid_geometry_rejected(self, entries, ways):
        with pytest.raises(ValueError):
            TLBConfig(entries=entries, ways=ways)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TLBConfig(hit_latency=-1)


class TestReplacementPolicies:
    def _entries(self, stamps):
        made = []
        for index, (used, filled) in enumerate(stamps):
            entry = TLBEntry()
            entry.fill(vpn=index, ppn=index, asid=0, now=filled)
            entry.last_used = used
            made.append(entry)
        return made

    def test_lru_prefers_least_recent_use(self):
        entries = self._entries([(5, 1), (2, 2), (9, 3)])
        assert LRUPolicy().select(entries) is entries[1]

    def test_fifo_prefers_oldest_fill(self):
        entries = self._entries([(5, 3), (2, 2), (9, 1)])
        assert FIFOPolicy().select(entries) is entries[2]

    def test_invalid_slot_always_preferred(self):
        entries = self._entries([(5, 1), (2, 2)])
        entries.append(TLBEntry())  # invalid
        assert LRUPolicy().select(entries) is entries[2]
        assert FIFOPolicy().select(entries) is entries[2]

    def test_random_policy_is_seeded(self):
        import random

        entries = self._entries([(1, 1), (2, 2), (3, 3), (4, 4)])
        first = RandomPolicy(random.Random(7))
        second = RandomPolicy(random.Random(7))
        picks_a = [first.select(entries).vpn for _ in range(20)]
        picks_b = [second.select(entries).vpn for _ in range(20)]
        assert picks_a == picks_b

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy().select([])

    def test_make_policy_dispatch(self):
        assert isinstance(make_policy(ReplacementKind.LRU), LRUPolicy)
        assert isinstance(make_policy(ReplacementKind.FIFO), FIFOPolicy)
        assert isinstance(make_policy(ReplacementKind.RANDOM), RandomPolicy)


class TestEntry:
    def test_match_requires_valid_vpn_and_asid(self):
        entry = TLBEntry()
        entry.fill(vpn=3, ppn=7, asid=1, now=1)
        assert entry.matches(3, 1)
        assert not entry.matches(3, 2)  # ASID mismatch
        assert not entry.matches(4, 1)  # page mismatch
        entry.invalidate()
        assert not entry.matches(3, 1)

    def test_invalidate_clears_sec(self):
        entry = TLBEntry()
        entry.fill(vpn=3, ppn=7, asid=1, now=1, sec=True)
        assert entry.sec
        entry.invalidate()
        assert not entry.sec

    def test_snapshot_is_independent(self):
        entry = TLBEntry()
        entry.fill(vpn=3, ppn=7, asid=1, now=1)
        copy = entry.snapshot()
        entry.invalidate()
        assert copy.valid and copy.vpn == 3
