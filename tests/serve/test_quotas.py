"""Unit tests for the token-bucket quota arithmetic (injected clock)."""

from repro.serve.quotas import QuotaRegistry, TokenBucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, tokens=3.0, updated=0.0)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)
        assert bucket.admitted == 3
        assert bucket.rejected == 1

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=4.0, tokens=0.0, updated=0.0)
        assert not bucket.try_acquire(0.1)
        # 1 second at 2 tokens/s -> 2 tokens, minus the failed probe's refill.
        assert bucket.try_acquire(1.0)
        assert bucket.try_acquire(1.0)
        assert not bucket.try_acquire(1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, tokens=0.0, updated=0.0)
        bucket.try_acquire(1000.0)
        assert bucket.tokens == 1.0  # capped at 2, one spent

    def test_clock_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, tokens=1.0, updated=100.0)
        assert bucket.try_acquire(50.0)
        assert bucket.tokens == 0.0

    def test_retry_after(self):
        bucket = TokenBucket(rate=0.5, burst=2.0, tokens=0.0, updated=0.0)
        assert bucket.retry_after() == 2.0
        bucket.tokens = 2.0
        assert bucket.retry_after() == 0.0

    def test_retry_after_zero_rate_is_infinite(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, tokens=0.0, updated=0.0)
        assert bucket.retry_after() == float("inf")


class TestQuotaRegistry:
    def test_disabled_admits_everything(self):
        registry = QuotaRegistry(rate=0.0)
        assert not registry.enabled
        for _ in range(100):
            admitted, retry_after = registry.admit("anyone", 0.0)
            assert admitted and retry_after == 0.0
        assert registry.buckets == {}

    def test_per_client_isolation(self):
        registry = QuotaRegistry(rate=0.001, burst=1.0)
        assert registry.admit("a", 0.0) == (True, 0.0)
        admitted, retry_after = registry.admit("a", 0.0)
        assert not admitted
        assert retry_after == 1000.0
        # Client b has a full bucket of its own.
        assert registry.admit("b", 0.0) == (True, 0.0)

    def test_usage_snapshot(self):
        registry = QuotaRegistry(rate=0.001, burst=1.0)
        registry.admit("a", 0.0)
        registry.admit("a", 0.0)
        usage = registry.usage()
        assert usage["a"]["admitted"] == 1
        assert usage["a"]["rejected"] == 1
        assert usage["a"]["tokens_left"] == 0.0
