"""The fast-path regression bench (``python -m repro bench``).

Times the :mod:`repro.sim.kernel` kernels against the reference model
over the workloads that dominate the reproduction's runtime, and refuses
to report any speedup whose counters diverge -- the bench is first a
differential test and only then a stopwatch.  Three tiers:

* **Trace replay** (the headline): each design -- SA, FA (the
  fully-associative organization), SP, RF, plus the miss-heavy omnetpp
  FA cell -- replays a precompiled Figure 7 SPEC trace through
  ``BaseTLB.translate`` (reference), the per-position
  ``BaseTLB.translate_slice`` (the ``access`` kernel) and the
  run-granular ``BaseTLB.translate_runs`` (the ``run`` kernel),
  comparing accesses/second.  The headline speedup is the ``run``
  kernel's; the acceptance floor is a >= 8x geometric mean.
* **Security replay**: the RSA decryption trace (the victim workload
  behind the security evaluation's micro-benchmarks) replayed on each
  design with its protection programmed -- the SP victim partition and
  the RF secure region over the MPI buffers -- so the kernels'
  no-fill-buffer and partition handling is timed, not just exercised.
* **End-to-end cells**: whole Figure 7 cells under ``fastpath=False``,
  ``kernel="access"`` and ``kernel="run"``, asserting ``PerfResult``
  equality three ways.  Wall-clock context only: trace *generation* is
  shared by all paths, so the ratio here is structurally smaller than
  the replay headline.

Timings are best-of-:data:`REPS` with a fresh TLB per repetition.  Trace
compilation, the structural pre-pass (``ensure_structure``) and the run
kernel's reuse-oracle extension are the *compile tier*: paid once per
trace, cached on the :class:`CompiledTrace`, and amortized across every
replay of it.  The bench reports them honestly -- ``compile_seconds``
and ``structure_seconds`` per row, and ``run_cold_seconds`` for the
first ``run`` repetition (which pays the oracle extension the warm
best-of excludes).

``bench()`` returns the report as plain dicts; the CLI renders it as
text or JSON and writes ``BENCH_fastpath.json`` for CI to archive.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.mmu import PageTableWalker, make_walker
from repro.security.kinds import TLBKind, make_tlb
from repro.sim.kernel import STRUCTURE_BACKEND, CompiledTrace, RunState
from repro.tlb.base import BaseTLB
from repro.workloads.rsa import RSAWorkload, generate_key
from repro.workloads.spec import by_name

from .configs import config_by_label
from .harness import RSA_ASID, PerfSettings, run_cell

#: The acceptance floor for the replay headline (geometric mean of the
#: ``run`` kernel's speedups).  The per-access kernel's committed floor
#: was 3.0; the run-granular tier raises it.
SPEEDUP_FLOOR = 8.0

#: Batch size for the batched-kernel replays (one quantum's worth of
#: events is the same order of magnitude).
SLICE_STEP = 8192

#: Repetitions per (case, path); the reported seconds are the best of
#: these.  Every repetition replays on a fresh TLB, so the run kernel's
#: first repetition additionally pays the trace's reuse-oracle
#: extension (reported as ``run_cold_seconds``) which the cached
#: :class:`CompiledTrace` amortizes away for the rest.
REPS = 3

#: The headline grid: one row per design of the paper's evaluation --
#: (row label, TLB kind, organization, Figure 7 SPEC workload).  "FA" is
#: the fully-associative organization of the standard design, listed
#: separately because its lookup economics differ from the set-indexed
#: organizations; "OM" is the miss-heavy omnetpp FA cell (once a
#: context row), promoted to the headline so the geomean prices in a
#: workload where walks, not hit-runs, dominate.
REPLAY_CASES: Tuple[Tuple[str, TLBKind, str, str], ...] = (
    ("SA", TLBKind.SA, "4W 32", "povray"),
    ("FA", TLBKind.SA, "FA 32", "povray"),
    ("SP", TLBKind.SP, "4W 128", "xalancbmk"),
    ("RF", TLBKind.RF, "4W 32", "cactusADM"),
    ("OM", TLBKind.SA, "FA 32", "omnetpp"),
)

#: End-to-end Figure 7 cells (design, organization, scenario label).
CELL_CASES: Tuple[Tuple[TLBKind, str, str], ...] = (
    (TLBKind.SA, "4W 32", "RSA+povray"),
    (TLBKind.RF, "4W 32", "SecRSA+omnetpp"),
)


class CounterDivergence(AssertionError):
    """A kernel's counters differed from the reference -- no speedup is
    reported for a run that did not do the same work."""


def _make_case_tlb(kind: TLBKind, label: str, secure: bool = False) -> BaseTLB:
    config = config_by_label(label)
    victim_ways = max(config.ways // 2, 1) if kind is TLBKind.SP else None
    return make_tlb(
        kind,
        config,
        victim_asid=RSA_ASID if secure else -1,
        victim_ways=victim_ways,
    )


def _replay_reference(
    tlb: BaseTLB, walker: PageTableWalker, trace: CompiledTrace,
    count: int, asid: int,
) -> Tuple[float, int]:
    vpns = trace.vpns
    cycles = 0
    start = time.perf_counter()
    translate = tlb.translate
    for index in range(count):
        cycles += translate(vpns[index], asid, walker).cycles
    return time.perf_counter() - start, cycles


def _replay_access(
    tlb: BaseTLB, walker: PageTableWalker, trace: CompiledTrace,
    count: int, asid: int,
) -> Tuple[float, int]:
    vpns = trace.vpns
    cycles = 0
    start = time.perf_counter()
    translate_slice = tlb.translate_slice
    for begin in range(0, count, SLICE_STEP):
        sliced, _ = translate_slice(
            vpns, begin, min(begin + SLICE_STEP, count), asid, walker
        )
        cycles += sliced
    return time.perf_counter() - start, cycles


def _replay_runs(
    tlb: BaseTLB, walker: PageTableWalker, trace: CompiledTrace,
    count: int, asid: int,
) -> Tuple[float, int, RunState]:
    state = RunState()
    cycles = 0
    start = time.perf_counter()
    translate_runs = tlb.translate_runs
    for begin in range(0, count, SLICE_STEP):
        sliced, _ = translate_runs(
            trace, begin, min(begin + SLICE_STEP, count), asid, walker, state
        )
        cycles += sliced
    return time.perf_counter() - start, cycles, state


def _counters(tlb: BaseTLB) -> Dict[str, int]:
    stats = tlb.stats
    return {
        "accesses": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
    }


def _replay_case(
    label: str,
    kind: TLBKind,
    config_label: str,
    trace: CompiledTrace,
    count: int,
    workload: str,
    asid: int,
    headline: bool,
    secure: bool = False,
    region: Optional[Tuple[int, int]] = None,
) -> Dict[str, Any]:
    """Replay one compiled trace through all three paths and compare.

    Each path runs :data:`REPS` times on a fresh TLB (best-of timing);
    the differential comparison -- full :class:`~repro.tlb.stats.TLBStats`
    equality plus total reported cycles -- uses the final repetition,
    which is deterministic across repetitions by construction.
    """
    def fresh() -> BaseTLB:
        tlb = _make_case_tlb(kind, config_label, secure)
        if region is not None:
            tlb.set_secure_region(*region, victim_asid=asid)
        return tlb

    timings: Dict[str, List[float]] = {"reference": [], "access": [], "run": []}
    outcomes: Dict[str, Tuple[Any, int]] = {}
    run_state: Optional[RunState] = None
    for _ in range(REPS):
        tlb = fresh()
        seconds, cycles = _replay_reference(tlb, make_walker(), trace, count, asid)
        timings["reference"].append(seconds)
        outcomes["reference"] = (tlb.stats, cycles)

        tlb = fresh()
        seconds, cycles = _replay_access(tlb, make_walker(), trace, count, asid)
        timings["access"].append(seconds)
        outcomes["access"] = (tlb.stats, cycles)

        tlb = fresh()
        seconds, cycles, run_state = _replay_runs(
            tlb, make_walker(), trace, count, asid
        )
        timings["run"].append(seconds)
        outcomes["run"] = (tlb.stats, cycles)

    ref_stats, ref_cycles = outcomes["reference"]
    for path in ("access", "run"):
        stats, cycles = outcomes[path]
        if stats != ref_stats or cycles != ref_cycles:
            raise CounterDivergence(
                f"{label} {config_label} {workload}: {path} kernel"
                f" (stats={stats}, cycles={cycles}) != reference"
                f" (stats={ref_stats}, cycles={ref_cycles})"
            )
    ref_counters = {
        "accesses": ref_stats.accesses,
        "hits": ref_stats.hits,
        "misses": ref_stats.misses,
    }
    ref_seconds = min(timings["reference"])
    access_seconds = min(timings["access"])
    run_seconds = min(timings["run"])
    return {
        "design": label,
        "kind": kind.value,
        "config": config_label,
        "workload": workload,
        "accesses": count,
        "hit_rate": ref_counters["hits"] / max(ref_counters["accesses"], 1),
        "reference_aps": count / ref_seconds,
        "access_aps": count / access_seconds,
        "fast_aps": count / run_seconds,
        "access_speedup": ref_seconds / access_seconds,
        "speedup": ref_seconds / run_seconds,
        # The run kernel's first repetition extends the trace's reuse
        # oracle (compile tier); the cached oracle serves the rest.
        "run_cold_seconds": timings["run"][0],
        "run_hits": run_state.run_hits,
        "probed_accesses": run_state.probed,
        "counters": ref_counters,
        "counters_equal": True,
        "headline": headline,
    }


def _spec_replays(events: int) -> List[Dict[str, Any]]:
    rows = []
    for label, kind, config_label, workload in REPLAY_CASES:
        trace = CompiledTrace(by_name(workload).events(random.Random(42)))
        start = time.perf_counter()
        count = min(trace.ensure(events), events)
        compile_seconds = time.perf_counter() - start
        start = time.perf_counter()
        trace.ensure_structure(count)
        structure_seconds = time.perf_counter() - start
        row = _replay_case(
            label,
            kind,
            config_label,
            trace,
            count,
            workload,
            asid=2,
            headline=True,
        )
        row["compile_seconds"] = compile_seconds
        row["structure_seconds"] = structure_seconds
        rows.append(row)
    return rows


def _security_replays(runs: int, key_bits: int) -> List[Dict[str, Any]]:
    """The security micro-benchmark tier: the protected RSA trace."""
    key = generate_key(bits=key_bits, seed=7)
    rsa = RSAWorkload(key=key, runs=runs)
    trace = CompiledTrace(rsa.events(random.Random(7)))
    count = trace.ensure(1 << 62)  # RSA traces are finite: compile fully.
    trace.ensure_structure(count)
    rows = []
    for label, kind, config_label in (
        ("SA", TLBKind.SA, "4W 32"),
        ("SP", TLBKind.SP, "4W 32"),
        ("RF", TLBKind.RF, "4W 32"),
    ):
        rows.append(
            _replay_case(
                label,
                kind,
                config_label,
                trace,
                count,
                f"rsa-{runs}",
                asid=RSA_ASID,
                headline=False,
                secure=True,
                region=rsa.secure_region() if kind is TLBKind.RF else None,
            )
        )
    return rows


def _cell_cases(rsa_runs: int, spec_instructions: int) -> List[Dict[str, Any]]:
    from .harness import scenario_by_label

    variants = (
        ("reference", False, "run"),
        ("access", True, "access"),
        ("run", True, "run"),
    )
    rows = []
    for kind, config_label, scenario_label in CELL_CASES:
        scenario = scenario_by_label(scenario_label)
        timings: Dict[str, float] = {}
        cells: Dict[str, Any] = {}
        for name, fastpath, kernel in variants:
            settings = PerfSettings(
                spec_instructions=spec_instructions,
                fastpath=fastpath,
                kernel=kernel,
            )
            start = time.perf_counter()
            cells[name] = run_cell(
                kind, config_label, scenario, rsa_runs, settings
            )
            timings[name] = time.perf_counter() - start
        for name in ("access", "run"):
            if cells[name].results != cells["reference"].results:
                raise CounterDivergence(
                    f"cell {kind.value} {config_label} {scenario_label}: "
                    f"{name}-kernel results diverge from reference"
                )
        total = cells["run"].total
        rows.append(
            {
                "design": kind.value,
                "config": config_label,
                "scenario": scenario_label,
                "rsa_runs": rsa_runs,
                "instructions": total.instructions,
                "reference_seconds": timings["reference"],
                "access_seconds": timings["access"],
                "fast_seconds": timings["run"],
                "access_speedup": timings["reference"] / timings["access"],
                "speedup": timings["reference"] / timings["run"],
                "results_equal": True,
            }
        )
    return rows


def _geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def bench(
    quick: bool = False,
    events: Optional[int] = None,
    skip_cells: bool = False,
) -> Dict[str, Any]:
    """Run the bench and return the report.

    ``quick`` shrinks every tier to CI-smoke size (the differential
    checks are just as strict; only the timing resolution suffers).
    Raises :class:`CounterDivergence` if any tier's kernel counters
    differ from the reference.
    """
    events = events if events is not None else (60_000 if quick else 400_000)
    replay = _spec_replays(events)
    security = _security_replays(
        runs=2 if quick else 10, key_bits=64 if quick else 128
    )
    cells = (
        []
        if skip_cells
        else _cell_cases(
            rsa_runs=3 if quick else 10,
            spec_instructions=30_000 if quick else 150_000,
        )
    )
    headline_rows = [row for row in replay if row["headline"]]
    headline = _geomean([row["speedup"] for row in headline_rows])
    access_headline = _geomean(
        [row["access_speedup"] for row in headline_rows]
    )
    kernel_rows = replay + security
    return {
        "quick": quick,
        "events": events,
        "structure_backend": STRUCTURE_BACKEND,
        "headline": {
            "geomean_speedup": headline,
            "access_geomean_speedup": access_headline,
            "floor": SPEEDUP_FLOOR,
            "meets_floor": headline >= SPEEDUP_FLOOR,
            "per_design": {
                row["design"]: row["speedup"] for row in headline_rows
            },
        },
        "kernel": {
            "run_hits": sum(row["run_hits"] for row in kernel_rows),
            "probed_accesses": sum(
                row["probed_accesses"] for row in kernel_rows
            ),
        },
        "replay": replay,
        "security": security,
        "cells": cells,
        "counters_verified": True,
    }


def history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """The compact per-run record archived in the artifact's history.

    ``BENCH_fastpath.json`` keeps a ``history`` list so the headline
    trend survives overwrites: each ``--out`` write appends the new
    run's summary to whatever history the previous artifact carried
    (the committed first entry is the 3.69x full-size headline the
    fast-path PR landed with; the run-kernel PR's entry records both
    kernels' geomeans).
    """
    headline = report["headline"]
    return {
        "geomean_speedup": headline["geomean_speedup"],
        "access_geomean_speedup": headline.get("access_geomean_speedup"),
        "per_design": dict(headline["per_design"]),
        "meets_floor": headline["meets_floor"],
        "quick": report["quick"],
        "events": report["events"],
        "structure_backend": report.get("structure_backend"),
        "counters_verified": report["counters_verified"],
    }


def with_history(
    report: Dict[str, Any], previous: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Attach ``previous``'s history plus this run's entry to ``report``."""
    history: List[Dict[str, Any]] = []
    if isinstance(previous, dict):
        carried = previous.get("history", [])
        if isinstance(carried, list):
            history.extend(carried)
    report = dict(report)
    report["history"] = history + [history_entry(report)]
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Render the bench report as the CLI's text output."""
    lines = [
        f"{'tier':9} {'design':6} {'config':8} {'workload':12} "
        f"{'hit%':>6} {'ref acc/s':>11} {'run acc/s':>11} "
        f"{'access':>7} {'run':>7}"
    ]
    lines.append("-" * 84)
    for tier, rows in (("replay", report["replay"]),
                       ("security", report["security"])):
        for row in rows:
            marker = "*" if row.get("headline") else " "
            lines.append(
                f"{tier:9} {row['design']:5}{marker} {row['config']:8} "
                f"{row['workload']:12} {row['hit_rate']:>6.1%} "
                f"{row['reference_aps']:>11,.0f} {row['fast_aps']:>11,.0f} "
                f"{row['access_speedup']:>6.2f}x {row['speedup']:>6.2f}x"
            )
    for row in report["cells"]:
        lines.append(
            f"{'cell':9} {row['design']:6} {row['config']:8} "
            f"{row['scenario']:12} {'':>6} "
            f"{row['reference_seconds']:>10.2f}s {row['fast_seconds']:>10.2f}s "
            f"{row['access_speedup']:>6.2f}x {row['speedup']:>6.2f}x"
        )
    headline = report["headline"]
    kernel = report["kernel"]
    lines.append("")
    lines.append(
        f"headline (geomean over *): {headline['geomean_speedup']:.2f}x"
        f" run kernel / {headline['access_geomean_speedup']:.2f}x access"
        f" (floor {headline['floor']:.1f}x:"
        f" {'met' if headline['meets_floor'] else 'NOT MET'})"
    )
    total = kernel["run_hits"] + kernel["probed_accesses"]
    share = kernel["run_hits"] / total if total else 0.0
    lines.append(
        f"run kernel: {kernel['run_hits']:,} run hits /"
        f" {kernel['probed_accesses']:,} probed ({share:.1%} run share);"
        f" structure backend: {report['structure_backend']}"
    )
    lines.append("counters: all kernels reference-equal")
    return "\n".join(lines)
