"""Tests for Sv39 address helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.mmu import address


class TestConstants:
    def test_sv39_geometry(self):
        assert address.PAGE_SIZE == 4096
        assert address.VA_BITS == 39
        assert address.LEVELS == 3
        assert address.ENTRIES_PER_TABLE == 512
        assert address.MAX_VPN == (1 << 27) - 1


class TestSplitting:
    def test_vpn_and_offset(self):
        addr = 0x1234_5678
        assert address.vpn_of(addr) == addr >> 12
        assert address.page_offset(addr) == addr & 0xFFF

    def test_address_of_roundtrip(self):
        assert address.address_of(0x123, 0x45) == (0x123 << 12) | 0x45

    def test_vpn_levels_known_value(self):
        vpn = (3 << 18) | (5 << 9) | 7
        assert address.vpn_levels(vpn) == (3, 5, 7)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            address.vpn_of(1 << 39)
        with pytest.raises(ValueError):
            address.address_of(address.MAX_VPN + 1)
        with pytest.raises(ValueError):
            address.address_of(0, address.PAGE_SIZE)
        with pytest.raises(ValueError):
            address.vpn_from_levels(512, 0, 0)


class TestProperties:
    @given(st.integers(min_value=0, max_value=address.MAX_VPN))
    def test_levels_roundtrip(self, vpn):
        assert address.vpn_from_levels(*address.vpn_levels(vpn)) == vpn

    @given(
        st.integers(min_value=0, max_value=address.MAX_VPN),
        st.integers(min_value=0, max_value=address.PAGE_SIZE - 1),
    )
    def test_compose_split_roundtrip(self, vpn, offset):
        addr = address.address_of(vpn, offset)
        assert address.vpn_of(addr) == vpn
        assert address.page_offset(addr) == offset
