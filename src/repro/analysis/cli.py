"""The ``python -m repro analyze`` and ``python -m repro certify`` commands.

``analyze`` has three modes, all CI gates:

* ``analyze guest [--workload NAME]`` -- run the static leakage checker
  (and, unless ``--static-only``, the dynamic cross-check) over bundled
  guest workloads.  Exit 0 iff every workload matches its expectation:
  leaky workloads are flagged *and* trace-confirmed, clean ones report
  nothing and show no secret-correlated pages.
* ``analyze lint [PATH...]`` -- run the invariant linter (default:
  ``src/repro``).  Exit 0 iff no findings.
* ``analyze all`` -- both.

Failures use distinct exit codes (documented in ``docs/analysis.md``) so
CI can tell a broken leakage contract from a broken invariant without
parsing output: 2 = contract violation, 3 = lint findings, 4 = both.
``--json`` emits a schema-stamped payload shaped like the certify CLI's
(top-level ``schema``/``ok``/``exit_code``) so verdicts diff structurally.

``certify`` runs the static hierarchy security certifier
(:mod:`repro.analysis.certify`): certificates for named sweep designs or
JSON ``HierarchySpec`` files, and ``--gate`` replays every certificate
against the dynamic oracles, exiting nonzero on any disagreement.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

from repro.isa.assembler import assemble

ANALYZE_SCHEMA = "repro/analyze/v1"

#: Distinct failure exit codes (0 = clean).  1 is left to unexpected
#: errors and 2..4 chosen so CI can dispatch without parsing output.
EXIT_CONTRACT_VIOLATION = 2
EXIT_LINT_FINDINGS = 3
EXIT_BOTH = 4


def _check_guest(
    names: List[str], static_only: bool, design: str
) -> Tuple[List[str], List[dict], int]:
    """Run workloads; return (text blocks, JSON payloads, failure count)."""
    from repro.analysis.dynamic import cross_check
    from repro.analysis.report import format_guest_report, guest_report_to_dict
    from repro.analysis.taint import analyze_program
    from repro.analysis.workloads import GUEST_WORKLOADS
    from repro.security.kinds import TLBKind

    blocks: List[str] = []
    payloads: List[dict] = []
    failures = 0
    for name in names:
        workload = GUEST_WORKLOADS[name]
        program = assemble(workload.source())
        report = analyze_program(program, name=name)
        cross = None
        if not static_only:
            cross = cross_check(workload, report, kind=TLBKind[design])
        ok = _expectation_met(workload, report, cross)
        if not ok:
            failures += 1
        verdict = "expected" if ok else "UNEXPECTED"
        blocks.append(
            format_guest_report(report, cross)
            + f"\nverdict: {verdict} ("
            + ("leak" if workload.expect_leak else "clean")
            + " expected)"
        )
        payload = guest_report_to_dict(report, cross)
        payload["expect_leak"] = workload.expect_leak
        payload["ok"] = ok
        payloads.append(payload)
    return blocks, payloads, failures


def _expectation_met(workload, report, cross) -> bool:
    if workload.expect_leak:
        if report.clean:
            return False
        if cross is not None and not cross.leaks_dynamically:
            return False
        if cross is not None and cross.confirmed_count == 0:
            return False
        return True
    if not report.clean:
        return False
    if cross is not None and cross.leaks_dynamically:
        return False
    return True


def _emit_analyze_json(mode: str, exit_code: int, **payload) -> None:
    envelope = {
        "schema": ANALYZE_SCHEMA,
        "mode": mode,
        "ok": exit_code == 0,
        "exit_code": exit_code,
    }
    envelope.update(payload)
    print(json.dumps(envelope, indent=2))


def _cmd_guest(args: argparse.Namespace) -> int:
    from repro.analysis.workloads import GUEST_WORKLOADS

    names = [args.workload] if args.workload else sorted(GUEST_WORKLOADS)
    blocks, payloads, failures = _check_guest(
        names, static_only=args.static_only, design=args.design
    )
    code = EXIT_CONTRACT_VIOLATION if failures else 0
    if args.json:
        _emit_analyze_json("guest", code, guest=payloads)
    else:
        print("\n\n".join(blocks))
    return code


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import LINT_RULES, iter_python_files, run_lint
    from repro.analysis.report import (
        format_lint_findings,
        lint_findings_to_dict,
    )

    if args.rules:
        for rule in LINT_RULES:
            print(f"{rule.name}: {rule.description}")
        return 0
    paths = args.paths or ["src/repro"]
    findings = run_lint(paths)
    checked = sum(1 for _path in iter_python_files(paths))
    code = EXIT_LINT_FINDINGS if findings else 0
    if args.json:
        payload = lint_findings_to_dict(findings)
        payload["checked_files"] = checked
        _emit_analyze_json("lint", code, lint=payload)
    else:
        print(format_lint_findings(findings, checked_files=checked))
    return code


def _cmd_all(args: argparse.Namespace) -> int:
    from repro.analysis.lint import iter_python_files, run_lint
    from repro.analysis.report import (
        format_lint_findings,
        lint_findings_to_dict,
    )
    from repro.analysis.workloads import GUEST_WORKLOADS

    paths = args.paths or ["src/repro"]
    findings = run_lint(paths)
    checked = sum(1 for _path in iter_python_files(paths))
    names = sorted(GUEST_WORKLOADS)
    blocks, payloads, guest_failures = _check_guest(
        names, static_only=args.static_only, design=args.design
    )
    if findings and guest_failures:
        code = EXIT_BOTH
    elif findings:
        code = EXIT_LINT_FINDINGS
    elif guest_failures:
        code = EXIT_CONTRACT_VIOLATION
    else:
        code = 0
    if args.json:
        lint_payload = lint_findings_to_dict(findings)
        lint_payload["checked_files"] = checked
        _emit_analyze_json("all", code, lint=lint_payload, guest=payloads)
    else:
        print(format_lint_findings(findings, checked_files=checked))
        print()
        print("\n\n".join(blocks))
        print()
        summary = "OK" if code == 0 else "FAILED"
        print(
            f"analyze: {summary} ({len(findings)} lint findings,"
            f" {guest_failures} workload expectation failures,"
            f" exit {code})"
        )
    return code


def add_analyze_parser(subparsers) -> None:
    """Wire ``analyze`` into the top-level repro CLI."""
    analyze = subparsers.add_parser(
        "analyze",
        help="static leakage checker + simulator invariant linter",
        description=(
            "Layer 1 statically checks guest programs for secret-dependent"
            " address flow and cross-validates findings against event-bus"
            " traces; layer 2 lints the simulator sources for architectural"
            " invariants.  Exit codes: 0 clean, 2 contract violation,"
            " 3 lint findings, 4 both (see docs/analysis.md)."
        ),
    )
    modes = analyze.add_subparsers(dest="mode", required=True)

    guest = modes.add_parser(
        "guest", help="leakage-contract check of guest programs"
    )
    from repro.analysis.workloads import GUEST_WORKLOADS

    guest.add_argument(
        "--workload",
        choices=sorted(GUEST_WORKLOADS),
        default=None,
        help="bundled workload to check (default: all)",
    )
    guest.add_argument(
        "--static-only",
        action="store_true",
        help="skip the dynamic event-bus cross-check",
    )
    guest.add_argument(
        "--design",
        choices=["SA", "SP", "RF"],
        default="SA",
        help="TLB design for the dynamic cross-check (default: SA)",
    )
    guest.add_argument("--json", action="store_true")
    guest.set_defaults(func=_cmd_guest)

    lint = modes.add_parser(
        "lint", help="invariant lint of the simulator sources"
    )
    lint.add_argument(
        "paths", nargs="*", help="files/directories (default: src/repro)"
    )
    lint.add_argument(
        "--rules", action="store_true", help="list the rule catalog and exit"
    )
    lint.add_argument("--json", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    both = modes.add_parser("all", help="lint + every bundled workload")
    both.add_argument(
        "paths", nargs="*", help="lint files/directories (default: src/repro)"
    )
    both.add_argument("--static-only", action="store_true")
    both.add_argument(
        "--design", choices=["SA", "SP", "RF"], default="SA"
    )
    both.add_argument("--json", action="store_true")
    both.set_defaults(func=_cmd_all)


# --------------------------------------------------------------------------
# certify
# --------------------------------------------------------------------------


def _load_spec(target: str):
    """Resolve a certify target: sweep design label, JSON file, or '-'."""
    from repro.analysis.certify import coerce_spec

    if target == "-":
        return coerce_spec(json.load(sys.stdin))
    if target.endswith(".json"):
        with open(target) as handle:
            return coerce_spec(json.load(handle))
    from repro.ablations.hierarchy import sweep_specs

    for spec in sweep_specs():
        if spec.label() == target:
            return spec
    labels = ", ".join(spec.label() for spec in sweep_specs())
    raise SystemExit(
        f"certify: unknown design {target!r} (not a sweep label and not a"
        f" .json spec file); known labels: {labels}"
    )


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.analysis.certify import certify, format_certificate
    from repro.analysis.certify_gate import format_report, run_gate

    if args.gate:
        report = run_gate(
            sweep_trials=args.sweep_trials,
            flat_trials=args.flat_trials,
            legs=args.legs,
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(format_report(report))
        return 0 if report.passed else 1

    if args.all:
        from repro.ablations.hierarchy import sweep_specs

        targets = sweep_specs()
    elif args.targets:
        targets = [_load_spec(target) for target in args.targets]
    else:
        raise SystemExit(
            "certify: name at least one design/spec, or use --all / --gate"
        )

    certificates = [certify(spec) for spec in targets]
    if args.json:
        payload = [certificate.to_dict() for certificate in certificates]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        print("\n\n".join(
            format_certificate(certificate) for certificate in certificates
        ))
    return 0


def add_certify_parser(subparsers) -> None:
    """Wire ``certify`` into the top-level repro CLI."""
    certify_parser = subparsers.add_parser(
        "certify",
        help="static hierarchy security certifier (three-step model, lifted)",
        description=(
            "Symbolically executes the three-step benchmark expansion over"
            " an N-level abstract machine and emits a per-design"
            " certificate covering all 24 Table 2 rows plus refill-channel"
            " variants -- no simulation.  --gate replays certificates"
            " against the dynamic oracles (hierarchy sweep rows, flat"
            " Table 4 capacities, TaintObserver refill cross-check) and"
            " exits 1 on any static/dynamic disagreement."
        ),
    )
    certify_parser.add_argument(
        "targets",
        nargs="*",
        metavar="DESIGN|SPEC.json|-",
        help=(
            "sweep design label (e.g. RF+SA, SA+SP+pwc, RF), a JSON"
            " HierarchySpec file, or '-' for a spec on stdin"
        ),
    )
    certify_parser.add_argument(
        "--all", action="store_true",
        help="certify every design of the 24-design sweep grid",
    )
    certify_parser.add_argument(
        "--gate", action="store_true",
        help="run the static/dynamic differential gate instead",
    )
    certify_parser.add_argument(
        "--legs", nargs="+", choices=["sweep", "flat", "refill"],
        default=None, help="gate legs to run (default: all three)",
    )
    certify_parser.add_argument("--sweep-trials", type=int, default=40)
    certify_parser.add_argument("--flat-trials", type=int, default=120)
    certify_parser.add_argument("--json", action="store_true")
    certify_parser.set_defaults(func=_cmd_certify)
