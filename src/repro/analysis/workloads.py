"""Guest programs the leakage checker ships with.

Two assembly renderings of the paper's RSA victim, written in the
benchmark dialect so the static checker and the ISA interpreter see the
*same* program:

* ``rsa`` -- left-to-right square-and-multiply with libgcrypt's buffer
  layout (``rp``/``xp``/``tp`` on their own pages, Figure 5).  The result
  swap dereferences the ``tp`` page only when the current exponent bit is
  1: the secret-dependent page touch TLBleed keys on.  The checker must
  flag it.
* ``rsa-ct`` -- the constant-time repair: every iteration performs the
  multiply *and* the ``tp`` swap traffic unconditionally and selects the
  result with arithmetic masks, so no branch and no address depends on
  the exponent.  The checker must find nothing.

Both declare their contract inline (``#@secret exponent``) and place each
buffer at its own ``.org`` so a page is a buffer, matching the paper's
page-granular channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

#: Pages mirror :class:`repro.workloads.rsa.MPIBuffers` (rp/xp/tp) with the
#: exponent word on its own page above them.
RP_PAGE = 0x500
XP_PAGE = 0x501
TP_PAGE = 0x502
EXPONENT_PAGE = 0x503

#: A 64-bit exponent with an irregular bit pattern (mixed runs of 0s/1s).
DEFAULT_EXPONENT = 0xB5C3_9A17_D24E_6F81

#: Exponent probe set for the dynamic cross-check: same width, different
#: population counts, so secret-dependent page touches change frequency.
PROBE_EXPONENTS: Tuple[int, ...] = (
    DEFAULT_EXPONENT,
    0x8000_0000_0000_0001,
    0xFFFF_FFFF_FFFF_FFFF,
)

_DATA_SECTION = f"""\
    .data
    .org {RP_PAGE << 12:#x}
rp: .dword 0x1111
    .org {XP_PAGE << 12:#x}
xp: .dword 0x2222
    .org {TP_PAGE << 12:#x}
tp: .dword 0x3333
    .org {EXPONENT_PAGE << 12:#x}
exponent: .dword {{exponent:#x}}
"""


def rsa_square_multiply(exponent: int = DEFAULT_EXPONENT) -> str:
    """The leaky victim: bit-conditional multiply and ``tp`` swap."""
    return (
        "#@secret exponent\n"
        + _DATA_SECTION.format(exponent=exponent & ((1 << 64) - 1))
        + """\
    .text
    la s1, rp
    la s2, xp
    la s3, tp
    la t0, exponent
    ld s4, 0(t0)          # the secret exponent
    li s5, 64             # bits to scan, MSB first
loop:
    beq s5, zero, done
    # Square: touches rp then xp every window.
    ld t1, 0(s1)
    ld t2, 0(s2)
    sd t1, 0(s2)
    # Extract the current MSB, then shift the exponent up.
    srli t3, s4, 63
    slli s4, s4, 1
    beq t3, zero, skip    # secret-dependent branch
    # Multiply runs only for 1-bits; the result swap goes through tp.
    ld t1, 0(s2)
    ld t2, 0(s1)
    ld t4, 0(s3)          # the bit-conditional swap touch
    sd t2, 0(s3)
skip:
    addi s5, s5, -1
    j loop
done:
    pass
"""
    )


def rsa_constant_time(exponent: int = DEFAULT_EXPONENT) -> str:
    """The always-swap repair: identical page traffic for every bit."""
    return (
        "#@secret exponent\n"
        + _DATA_SECTION.format(exponent=exponent & ((1 << 64) - 1))
        + """\
    .text
    la s1, rp
    la s2, xp
    la s3, tp
    la t0, exponent
    ld s4, 0(t0)          # the secret exponent
    li s5, 64
loop:
    beq s5, zero, done
    # Square: same rp/xp traffic as the leaky variant.
    ld t1, 0(s1)
    ld t2, 0(s2)
    sd t1, 0(s2)
    # mask = bit ? all-ones : 0, computed branchlessly.
    srli t3, s4, 63
    slli s4, s4, 1
    sub t4, zero, t3
    # Multiply and swap traffic happen every window; the mask selects
    # which value survives, so only *data* depends on the secret.
    ld t1, 0(s2)
    ld t2, 0(s1)
    ld t5, 0(s3)          # always-swap: tp touched unconditionally
    xor t6, t1, t5
    and t6, t6, t4
    xor t5, t5, t6
    sd t5, 0(s3)
    addi s5, s5, -1
    j loop
done:
    pass
"""
    )


@dataclass(frozen=True)
class GuestWorkload:
    """A bundled guest program and its expected static verdict."""

    name: str
    description: str
    build: Callable[[int], str]
    #: True when the checker is *expected* to find a leak.
    expect_leak: bool
    exponents: Tuple[int, ...] = PROBE_EXPONENTS

    def source(self, exponent: int = DEFAULT_EXPONENT) -> str:
        return self.build(exponent)


GUEST_WORKLOADS: Dict[str, GuestWorkload] = {
    workload.name: workload
    for workload in (
        GuestWorkload(
            name="rsa",
            description=(
                "square-and-multiply RSA with the bit-conditional tp swap"
                " (libgcrypt 1.8.2 shape; must be flagged)"
            ),
            build=rsa_square_multiply,
            expect_leak=True,
        ),
        GuestWorkload(
            name="rsa-ct",
            description=(
                "constant-time always-swap RSA (must come back clean)"
            ),
            build=rsa_constant_time,
            expect_leak=False,
        ),
    )
}
