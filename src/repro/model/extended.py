"""Appendix B: the extended model with targeted TLB invalidations.

If an ISA (or an OS interface such as ``mprotect``) lets the attacker or the
victim invalidate the translation of one *specific* address -- and if that
invalidation's latency depends on whether the entry was present -- then the
seven extra states of Table 6 become possible and many additional
vulnerabilities arise (Table 7): the Flush + Time, Flush + Flush,
Flush + Probe and Reload + Time families, plus invalidation-probe variants
of every base strategy.

The derivation pipeline is identical to the base model's; only the state
alphabet grows (the symbolic rules already permit targeted invalidations in
Steps 2 and 3, unlike coarse flushes), and the abstract automaton gives a
targeted invalidation its Appendix B timing semantics: *slow* when the entry
is present (a second cycle is needed to clear it), *fast* when it is not.
"""

from __future__ import annotations

from typing import Dict, List

from .effectiveness import derive_vulnerabilities
from .patterns import Observation, Strategy, Vulnerability
from .states import Actor, EXTENDED_STATES, Operation


def derive_extended_vulnerabilities() -> List[Vulnerability]:
    """All effective vulnerabilities over the seventeen-state alphabet."""
    return derive_vulnerabilities(EXTENDED_STATES)


def invalidation_only_vulnerabilities() -> List[Vulnerability]:
    """The Table 7 rows: vulnerabilities that need targeted invalidation."""
    return [
        vulnerability
        for vulnerability in derive_extended_vulnerabilities()
        if vulnerability.pattern.uses_extended_states()
    ]


def strategy_label(vulnerability: Vulnerability) -> str:
    """Table 7-style strategy label for an extended-model vulnerability.

    Base-model patterns keep their Table 2 strategy name.  Extended patterns
    are grouped by where the targeted invalidation occurs:

    * secret step is an invalidation (``V_u^inv``) -> Flush + Probe family;
    * middle known step is an invalidation -> Flush + Time;
    * Step 1 invalidation with a timed reload of ``u`` -> Reload + Time;
    * Step 3 is a timed invalidation probing a prior access -> the
      "``... Invalidation``" variant of the base strategy, with an
      invalidation-primed Step 1 collapsing into Flush + Flush.
    """
    pattern = vulnerability.pattern
    if not pattern.uses_extended_states():
        return vulnerability.strategy.value

    step1, step2, step3 = pattern.steps

    def targeted(state) -> bool:
        return state.operation is Operation.INVALIDATE_TARGET

    if step2.is_secret and targeted(step2):
        return Strategy.FLUSH_PROBE.value
    if step2.is_known and targeted(step2):
        return Strategy.FLUSH_TIME.value
    if step1.is_secret and targeted(step1):
        return Strategy.RELOAD_TIME.value

    if targeted(step3):
        if targeted(step1):
            return Strategy.FLUSH_FLUSH.value
        base = _base_strategy_shape(vulnerability)
        return f"{base} Invalidation"
    if targeted(step1):
        # A targeted invalidation priming Step 1 behaves like the coarse
        # flush/prime variants of the base strategies.
        return _base_strategy_shape(vulnerability)
    raise ValueError(f"unclassified extended pattern {pattern}")


def _base_strategy_shape(vulnerability: Vulnerability) -> str:
    """Classify by pattern shape and actors, ignoring operation kinds."""
    pattern = vulnerability.pattern
    step1, step2, step3 = pattern.steps
    if step1.is_secret and step3.is_secret:
        if step2.actor is Actor.ATTACKER:
            return Strategy.EVICT_TIME.value
        return Strategy.BERNSTEIN.value
    hit_like = vulnerability.observation is Observation.FAST
    if step3.operation is Operation.ACCESS and hit_like:
        if step3.actor is Actor.VICTIM:
            return Strategy.INTERNAL_COLLISION.value
        return Strategy.FLUSH_RELOAD.value
    first, third = step1.actor, step3.actor
    if first is Actor.ATTACKER and third is Actor.ATTACKER:
        return Strategy.PRIME_PROBE.value
    if first is Actor.VICTIM and third is Actor.ATTACKER:
        return Strategy.EVICT_PROBE.value
    if first is Actor.ATTACKER and third is Actor.VICTIM:
        return Strategy.PRIME_TIME.value
    return Strategy.BERNSTEIN.value


def summarize_by_strategy() -> Dict[str, int]:
    """Row counts of the extended-only vulnerabilities per strategy label."""
    counts: Dict[str, int] = {}
    for vulnerability in invalidation_only_vulnerabilities():
        label = strategy_label(vulnerability)
        counts[label] = counts.get(label, 0) + 1
    return counts
