"""Unit tests for the symbolic TLB-block states (Table 1 / Table 6)."""

import pytest

from repro.model import states
from repro.model.states import (
    Actor,
    AddressClass,
    BASE_STATES,
    EXTENDED_ONLY_STATES,
    EXTENDED_STATES,
    Operation,
    State,
    state_by_name,
)


class TestStateAlphabet:
    def test_base_model_has_ten_states(self):
        assert len(BASE_STATES) == 10

    def test_extended_model_has_seventeen_states(self):
        assert len(EXTENDED_STATES) == 17
        assert len(EXTENDED_ONLY_STATES) == 7

    def test_states_are_unique(self):
        assert len(set(EXTENDED_STATES)) == 17

    def test_exactly_one_star_state(self):
        stars = [s for s in BASE_STATES if s.is_star]
        assert stars == [states.STAR]

    def test_base_states_match_table1(self):
        names = {s.name for s in BASE_STATES}
        assert names == {
            "V_u",
            "A_a",
            "V_a",
            "A_a_alias",
            "V_a_alias",
            "A_inv",
            "V_inv",
            "A_d",
            "V_d",
            "STAR",
        }

    def test_extended_states_match_table6(self):
        names = {s.name for s in EXTENDED_ONLY_STATES}
        assert names == {
            "V_u_inv",
            "A_a_inv",
            "V_a_inv",
            "A_a_alias_inv",
            "V_a_alias_inv",
            "A_d_inv",
            "V_d_inv",
        }


class TestStateProperties:
    def test_only_victim_touches_secret(self):
        secret_states = [s for s in EXTENDED_STATES if s.is_secret]
        assert all(s.actor is Actor.VICTIM for s in secret_states)
        assert {s.name for s in secret_states} == {"V_u", "V_u_inv"}

    def test_secret_states_are_not_known(self):
        for state in EXTENDED_STATES:
            if state.is_secret or state.is_star:
                assert not state.is_known
            else:
                assert state.is_known

    def test_invalidation_classification(self):
        assert states.A_INV.is_invalidation
        assert states.V_U_INV.is_invalidation
        assert not states.V_U.is_invalidation
        assert not states.STAR.is_invalidation

    def test_alias_classification(self):
        assert states.A_A_ALIAS.is_alias
        assert states.V_A_ALIAS_INV.is_alias
        assert not states.A_A.is_alias

    def test_pretty_rendering(self):
        assert states.V_U.pretty() == "V_u"
        assert states.A_A_ALIAS.pretty() == "A_a^alias"
        assert states.A_INV.pretty() == "A_inv"
        assert states.V_U_INV.pretty() == "V_u^inv"
        assert states.STAR.pretty() == "*"


class TestStateValidation:
    def test_attacker_cannot_access_secret(self):
        with pytest.raises(ValueError):
            State(Actor.ATTACKER, Operation.ACCESS, AddressClass.U)

    def test_star_has_no_actor(self):
        with pytest.raises(ValueError):
            State(Actor.VICTIM, Operation.STAR, AddressClass.NONE)

    def test_access_needs_address(self):
        with pytest.raises(ValueError):
            State(Actor.VICTIM, Operation.ACCESS, AddressClass.NONE)

    def test_full_flush_names_no_address(self):
        with pytest.raises(ValueError):
            State(Actor.VICTIM, Operation.INVALIDATE_ALL, AddressClass.A)

    def test_non_star_needs_actor(self):
        with pytest.raises(ValueError):
            State(None, Operation.ACCESS, AddressClass.A)


class TestStateLookup:
    def test_lookup_roundtrip(self):
        for state in EXTENDED_STATES:
            assert state_by_name(state.name) is state

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            state_by_name("B_q")
