"""A toy operating-system model: processes, ASIDs, mappings, switches.

The performance evaluation (Section 6) runs the victim (RSA) alongside SPEC
benchmarks under Linux; this module provides the minimal OS behaviour that
shapes TLB contents:

* process creation with ASID assignment (the paper's convention: ASID 1 is
  the protected victim, everything else is a potential attacker);
* page allocation (``mmap``) backed by a physical frame allocator;
* context switches, with a configurable TLB policy so the software
  mitigations of Section 2.3 can be reproduced as ablations: keep entries
  (standard ASID-tagged Linux behaviour), flush everything (the Sanctum /
  SGX "flush on enclave switch" defence), or flush the outgoing ASID;
* ``sfence.vma``: full, per-ASID, or per-page TLB invalidation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.tlb.base import BaseTLB

from .page_table import PageTable, Permission
from .walker import PageTableWalker


class SwitchPolicy(enum.Enum):
    """What happens to the TLB on a context switch."""

    #: ASID-tagged entries survive switches (today's Linux on RISC-V).
    KEEP = "keep"
    #: Flush everything on every switch (Sanctum's security-monitor flush,
    #: Intel SGX's enclave-exit flush -- defends the 4 EM rows on top of SA).
    FLUSH_ALL = "flush_all"
    #: Flush only the outgoing process's entries.
    FLUSH_OUTGOING = "flush_outgoing"


@dataclass
class Process:
    """One schedulable address space."""

    pid: int
    asid: int
    name: str
    page_table: PageTable
    #: Bump pointer for mmap allocations (in pages).
    _next_vpn: int = 0x100

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}(pid={self.pid}, asid={self.asid})"


class ToyOS:
    """Owns processes and mediates their use of the walker and the TLB."""

    def __init__(
        self,
        walker: PageTableWalker,
        tlb: Optional[BaseTLB] = None,
        switch_policy: SwitchPolicy = SwitchPolicy.KEEP,
    ) -> None:
        self.walker = walker
        self.tlb = tlb
        self.switch_policy = switch_policy
        self._processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._next_asid = 1
        self._next_frame = 0x10000
        self.current: Optional[Process] = None
        self.context_switches = 0

    # -- process management -------------------------------------------------------

    def create_process(self, name: str, asid: Optional[int] = None) -> Process:
        """Create a process; ASIDs default to 1, 2, 3, ... in creation order
        (so the first-created process is the paper's protected victim)."""
        if asid is None:
            asid = self._next_asid
        if any(p.asid == asid for p in self._processes.values()):
            raise ValueError(f"ASID {asid} already in use")
        self._next_asid = max(self._next_asid, asid) + 1
        pid = self._next_pid
        self._next_pid += 1
        table = PageTable(asid)
        self.walker.register(table)
        process = Process(pid=pid, asid=asid, name=name, page_table=table)
        self._processes[pid] = process
        if self.current is None:
            self.current = process
        return process

    def processes(self) -> List[Process]:
        return list(self._processes.values())

    # -- memory management ----------------------------------------------------------

    def allocate_frame(self) -> int:
        frame = self._next_frame
        self._next_frame += 1
        return frame

    def mmap(
        self,
        process: Process,
        pages: int,
        vpn: Optional[int] = None,
        permissions: Permission = Permission.rw(),
    ) -> int:
        """Map ``pages`` contiguous pages; returns the first VPN."""
        if pages <= 0:
            raise ValueError("must map at least one page")
        if vpn is None:
            vpn = process._next_vpn
        process._next_vpn = max(process._next_vpn, vpn + pages)
        for index in range(pages):
            process.page_table.map_page(
                vpn + index, self.allocate_frame(), permissions
            )
        return vpn

    def map_superpage(
        self,
        process: Process,
        vpn: int,
        level: int = 1,
        permissions: Permission = Permission.rw(),
    ) -> int:
        """Map one aligned superpage (level 1 = 2 MiB) for ``process``.

        The Section 2.3 software mitigation: backing a crypto library's
        data with a large page gives its entire region a single TLB entry,
        removing per-page access patterns.  Returns the base VPN.
        """
        span = 1 << (9 * level)
        if vpn % span:
            raise ValueError(f"superpage base {vpn:#x} not {span}-page aligned")
        frame_base = self._next_frame
        # Physical frames for superpages must be aligned too.
        frame_base += (-frame_base) % span
        self._next_frame = frame_base + span
        process.page_table.map_page(
            vpn, frame_base, permissions, level=level
        )
        process._next_vpn = max(process._next_vpn, vpn + span)
        return vpn

    def munmap(self, process: Process, vpn: int, pages: int = 1) -> None:
        """Unmap pages and shoot down their TLB entries (TLB coherence)."""
        for index in range(pages):
            process.page_table.unmap_page(vpn + index)
            if self.tlb is not None:
                self.tlb.invalidate_page(vpn + index, process.asid)

    # -- scheduling -------------------------------------------------------------------

    def context_switch(self, process: Process) -> None:
        """Switch to ``process``, applying the configured TLB policy."""
        if process.pid not in self._processes:
            raise ValueError(f"unknown process {process}")
        outgoing = self.current
        self.current = process
        self.context_switches += 1
        if self.tlb is None or outgoing is process:
            return
        if self.switch_policy is SwitchPolicy.FLUSH_ALL:
            self.tlb.flush_all()
        elif self.switch_policy is SwitchPolicy.FLUSH_OUTGOING and outgoing:
            self.tlb.flush_asid(outgoing.asid)

    # -- TLB maintenance (sfence.vma) ---------------------------------------------------

    def sfence_vma(
        self, vpn: Optional[int] = None, asid: Optional[int] = None
    ) -> None:
        """RISC-V ``sfence.vma``: invalidate TLB translations.

        With no operands, everything is flushed; with an ASID, that address
        space; with both, one page of one address space.  The walker's walk
        memo is fenced with the same granularity: after the fence, the next
        walk re-reads the page table.
        """
        self.walker.invalidate_memo(asid=asid, vpn=vpn)
        if self.tlb is None:
            return
        if vpn is None and asid is None:
            self.tlb.flush_all()
        elif vpn is None:
            self.tlb.flush_asid(asid)
        else:
            self.tlb.invalidate_page(vpn, asid if asid is not None else 0)
