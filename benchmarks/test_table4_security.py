"""Benchmark: regenerate Table 4 (security evaluation of SA/SP/RF).

Runs the 24-vulnerability micro-benchmark harness for each design.  The
paper uses 500 mapped + 500 unmapped trials per cell; the benchmark run
uses a reduced trial count per repetition (the full protocol is a
parameter of :class:`repro.security.EvaluationConfig`), which is plenty to
reproduce every defended/vulnerable verdict: the SA and SP designs are
deterministic and the RF probabilities are estimated within a few percent.
"""

import pytest

from repro.security import (
    EvaluationConfig,
    SecurityEvaluator,
    TLBKind,
    defended_counts,
    format_table4,
)

TRIALS = 40


@pytest.fixture(scope="module")
def evaluator():
    return SecurityEvaluator(EvaluationConfig(trials=TRIALS))


@pytest.mark.parametrize(
    "kind,expected_defended",
    [(TLBKind.SA, 10), (TLBKind.SP, 14), (TLBKind.RF, 24)],
    ids=lambda value: str(value),
)
def test_table4_per_design(benchmark, evaluator, kind, expected_defended):
    results = benchmark.pedantic(
        evaluator.evaluate_kind, args=(kind,), rounds=1, iterations=1
    )
    defended = sum(1 for result in results if result.defended)
    assert defended == expected_defended
    benchmark.extra_info["defended"] = f"{defended}/24"
    print()
    print(format_table4({kind: results}))
