"""Memory-management substrate: Sv39 addresses, page tables, walker, toy OS.

This is the translation machinery beneath the TLBs: a three-level radix
page table per address space, a page-table walker implementing the TLB's
miss path with a per-level cycle cost (RISC-V has no page-walk cache,
footnote 3), and a toy OS that creates processes/ASIDs, maps pages, and
applies context-switch TLB policies (including the Sanctum/SGX-style
flush-on-switch mitigation of Section 2.3 as an ablation).
"""

from .address import (
    ENTRIES_PER_TABLE,
    LEVELS,
    MAX_VPN,
    PAGE_BITS,
    PAGE_SIZE,
    VA_BITS,
    address_of,
    page_offset,
    vpn_from_levels,
    vpn_levels,
    vpn_of,
)
from .os_model import Process, SwitchPolicy, ToyOS
from .page_table import PageFault, PageTable, PageTableEntry, Permission
from .walker import PageTableWalker, WalkerConfig, make_walker

__all__ = [
    "ENTRIES_PER_TABLE",
    "LEVELS",
    "MAX_VPN",
    "PAGE_BITS",
    "PAGE_SIZE",
    "PageFault",
    "PageTable",
    "PageTableEntry",
    "PageTableWalker",
    "Permission",
    "Process",
    "SwitchPolicy",
    "ToyOS",
    "VA_BITS",
    "WalkerConfig",
    "address_of",
    "make_walker",
    "page_offset",
    "vpn_from_levels",
    "vpn_levels",
    "vpn_of",
]
