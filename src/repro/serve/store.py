"""The content-addressed result store behind ``GET /v1/results/{hash}``.

Finished jobs persist their canonical result document here, keyed by the
job's content hash (the same hash that dedups in-flight submissions), so
a million identical queries cost one simulation: the first run writes
the document, every later submission -- today or after a restart -- is
answered from disk byte-for-byte.

Each entry is two files under ``<root>/<aa>/``: ``<hash>.json`` holds
the exact canonical payload bytes, ``<hash>.sha256`` the hex digest of
those bytes.  The digest is the integrity envelope: :meth:`ResultStore.get`
re-hashes the payload on every read and treats a mismatch (torn write,
bit rot, manual tampering) as a miss, counting it as corrupt -- the
service never serves bytes it cannot vouch for.  Writes go through the
runner cache's atomic write-then-rename, so concurrent jobs racing on
one hash each land whole.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.runner.cache import _atomic_write

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = ".repro-serve/results"

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")


def is_content_hash(value: str) -> bool:
    """Is ``value`` shaped like one of our SHA-256 content hashes?"""
    return bool(_HASH_RE.match(value))


@dataclass
class StoreStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries whose payload no longer matched their digest on read.
    corrupt: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


class ResultStore:
    """On-disk result documents by content hash (see module docstring)."""

    def __init__(self, root: Union[Path, str] = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        self.stats = StoreStats()

    def _payload_path(self, content_hash: str) -> Path:
        return self.root / content_hash[:2] / f"{content_hash}.json"

    def _digest_path(self, content_hash: str) -> Path:
        return self.root / content_hash[:2] / f"{content_hash}.sha256"

    def get(self, content_hash: str) -> Optional[Tuple[bytes, str]]:
        """Look a document up; returns ``(payload_bytes, sha256)`` or None.

        The payload is verified against its stored digest on every read;
        a mismatch counts as corrupt and reads as a miss, so the next
        finished job repairs the entry.
        """
        payload_path = self._payload_path(content_hash)
        digest_path = self._digest_path(content_hash)
        try:
            payload = payload_path.read_bytes()
            digest = digest_path.read_text().strip()
        except OSError:
            self.stats.misses += 1
            return None
        if hashlib.sha256(payload).hexdigest() != digest:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload, digest

    def put(self, content_hash: str, payload: bytes) -> str:
        """Store canonical payload bytes; returns their hex digest."""
        digest = hashlib.sha256(payload).hexdigest()
        payload_path = self._payload_path(content_hash)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(payload_path, payload)
        _atomic_write(self._digest_path(content_hash), digest + "\n")
        self.stats.stores += 1
        return digest
