"""Theoretical p1/p2/capacity per TLB design (Section 5.3).

For the SA and SP TLBs the probabilities are deterministic 0/1 values
dictated by the designs' state machines; for the RF TLB the paper reduces
the 14 remaining rows to six combined patterns and derives the (equal)
probabilities of Section 5.3.1, parameterized by the TLB geometry, the
secure-region size (3 or 31 pages) and the number of priming pages.

A design *defends* a row iff the resulting channel capacity is zero.
The headline counts follow: SA defends 10 rows, SP 14, RF all 24.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.model.capacity import channel_capacity
from repro.model.patterns import Strategy, Vulnerability
from repro.model.states import Actor, AddressClass

from .benchgen import region_size_for
from .kinds import TLBKind

#: Rows the standard ASID-tagged SA TLB already defends: the final probe
#: belongs to the other process's address space, so it can never hit.
_SA_DEFENDED = {
    Strategy.FLUSH_RELOAD,
    Strategy.EVICT_PROBE,
    Strategy.PRIME_TIME,
}
#: Rows partitioning additionally defends: cross-partition eviction.
_SP_EXTRA_DEFENDED = {Strategy.EVICT_TIME, Strategy.PRIME_PROBE}


@dataclass(frozen=True)
class TheoreticalModel:
    """Closed-form probabilities for the Section 5.3 configuration."""

    nsets: int = 4
    nways: int = 8
    #: User pages available to prime the whole TLB (Section 5.3).
    prime_num: int = 28

    def probabilities(
        self, kind: TLBKind, vulnerability: Vulnerability
    ) -> Tuple[float, float]:
        """The (p1, p2) of Table 3 for one design and one Table 2 row."""
        if kind is TLBKind.SA:
            return self._sa(vulnerability)
        if kind is TLBKind.SP:
            return self._sp(vulnerability)
        if kind is TLBKind.RF:
            p = self._rf_probability(vulnerability)
            return (p, p)
        raise ValueError(f"unknown kind {kind}")  # pragma: no cover

    def capacity(self, kind: TLBKind, vulnerability: Vulnerability) -> float:
        p1, p2 = self.probabilities(kind, vulnerability)
        return channel_capacity(p1, p2)

    def defends(self, kind: TLBKind, vulnerability: Vulnerability) -> bool:
        return self.capacity(kind, vulnerability) < 1e-9

    def defended_count(self, kind: TLBKind, vulnerabilities) -> int:
        return sum(
            1 for vulnerability in vulnerabilities
            if self.defends(kind, vulnerability)
        )

    # -- the standard SA TLB -------------------------------------------------------

    def _sa(self, vulnerability: Vulnerability) -> Tuple[float, float]:
        strategy = vulnerability.strategy
        if strategy in _SA_DEFENDED:
            # The cross-process probe always misses: p1 = p2 = 1.
            return (1.0, 1.0)
        if strategy is Strategy.INTERNAL_COLLISION:
            # Mapped (u == a): the reload hits; unmapped: it misses.
            return (0.0, 1.0)
        # Evict + Time, Prime + Probe, Bernstein: mapped evicts -> miss.
        return (1.0, 0.0)

    # -- the Static-Partition TLB ----------------------------------------------------

    def _sp(self, vulnerability: Vulnerability) -> Tuple[float, float]:
        strategy = vulnerability.strategy
        if strategy in _SA_DEFENDED:
            return (1.0, 1.0)
        if strategy in _SP_EXTRA_DEFENDED:
            # Cross-partition eviction is impossible: the probe always hits.
            return (0.0, 0.0)
        if strategy is Strategy.INTERNAL_COLLISION:
            return (0.0, 1.0)
        return (1.0, 0.0)  # Bernstein: the victim's own contention remains.

    # -- the Random-Fill TLB ------------------------------------------------------------

    def _rf_probability(self, vulnerability: Vulnerability) -> float:
        """Section 5.3.1's six combined patterns (p1 == p2 for all)."""
        strategy = vulnerability.strategy
        if strategy in _SA_DEFENDED:
            return 1.0  # Unchanged from SA: cross-process probes miss.

        sec_range = region_size_for(vulnerability)
        signature = tuple(
            step.address for step in vulnerability.pattern.steps
        )
        u, a, alias, d = (
            AddressClass.U,
            AddressClass.A,
            AddressClass.A_ALIAS,
            AddressClass.D,
        )

        if signature == (u, d, u):
            # V_u ~> d ~> V_u (slow): the timed reload hits only if the
            # random fill drew u and it survived the eviction sweep.
            return (1.0 / sec_range) * (
                1.0 / (min(self.nsets, sec_range) * self.nways)
            )
        if signature[1:] == (u, a) and signature[0] in (
            d,
            AddressClass.NONE,
        ):
            # d/inv ~> V_u ~> a (fast): the reload hits iff the random fill
            # happened to draw a.
            return 1.0 - 1.0 / sec_range
        if signature == (d, u, d):
            # d ~> V_u ~> d (slow): the probe misses iff the random fill
            # landed in the primed set.
            return 1.0 / sec_range
        if signature == (u, a, u):
            # V_u ~> a ~> V_u (slow): all nways secure fills must land in
            # u's set to evict the (randomly cached) u.
            return (self.nways / sec_range) ** self.nways
        if signature == (alias, u, a):
            return 1.0 - 1.0 / sec_range
        if signature == (a, u, a):
            if vulnerability.pattern.step1.actor is Actor.ATTACKER:
                # A_a ~> V_u ~> A_a: the random fill lands among the
                # nways same-set region pages.
                return self.nways / sec_range
            # V_a ~> V_u ~> V_a: contention against the primed TLB.
            return (sec_range - self.prime_num) / sec_range
        raise ValueError(
            f"no RF closed form for {vulnerability.pretty()}"
        )  # pragma: no cover - the 24 rows are exhaustive
