"""Typed events and the publish/subscribe bus of the simulation core.

Each event is an immutable record of one architecturally visible action at
the :class:`repro.sim.MemorySystem` boundary.  All seven are frozen *and*
slotted: traced runs construct one per action, so the fixed layout keeps
them small and their construction cheap (the ``repro analyze`` linter
enforces both flags).  The event types mirror
the paper's Section 4 flow-chart inputs:

=====================  =====================================================
``AccessEvent``        one translation request (hit or miss)
``WalkEvent``          the page-table walk a miss triggered
``FillEvent``          the requested translation was installed in the TLB
``RefillEvent``        a miss served from a lower TLB level (no walk)
``EvictEvent``         a valid entry was displaced by that fill
``FlushEvent``         a maintenance operation (full / per-ASID / per-page)
``ContextSwitchEvent`` the running address space changed
=====================  =====================================================

Multi-level hierarchies (:class:`repro.tlb.TLBHierarchy`) tag fills and
evictions with their 1-based hierarchy ``level`` (1 = the CPU-facing L1)
and announce inter-level movement with ``RefillEvent`` -- an L1 miss that
the L2 serves emits a level-1 refill and *no* walk event, so observers can
finally tell an inter-level refill from a true page-table walk.

Design-internal actions that are *not* architecturally visible through the
facade -- e.g. the Random-Fill TLB's random fills of Section 4.2 -- are by
construction absent from the stream (that opacity is the defence); they
remain countable via ``tlb.stats``.

The bus dispatches on the event's concrete type.  When nothing is
subscribed, ``EventBus.active`` is False and the :class:`MemorySystem`
skips event construction entirely, keeping the hot translation path free
of observability overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Type


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One translation request and its outcome."""

    vpn: int
    asid: int
    hit: bool
    ppn: int
    cycles: int
    #: Whether the requested translation was installed (the RF TLB returns
    #: secure translations through its no-fill buffer without filling).
    filled: bool


@dataclass(frozen=True, slots=True)
class WalkEvent:
    """The page-table walk performed on a miss.

    ``cached`` marks walks served by a hierarchy's page-walk cache: no
    radix levels were touched, so their cycles are the PWC's hit latency
    rather than a whole number of level accesses.
    """

    vpn: int
    asid: int
    cycles: int
    cached: bool = False


@dataclass(frozen=True, slots=True)
class FillEvent:
    """The requested translation was installed in the TLB.

    ``level`` is the 1-based hierarchy level that filled (always 1 for a
    single-level TLB); ``ppn`` the installed translation.
    """

    vpn: int
    asid: int
    level: int = 1
    ppn: int | None = None


@dataclass(frozen=True, slots=True)
class RefillEvent:
    """A miss at ``level`` was served by a lower TLB level, not a walk.

    Emitted once per level that missed above the hitting one: an L1 miss
    that hits in the L2 emits ``RefillEvent(level=1, hit_level=2)``.  The
    requested translation moved between levels without touching the page
    tables, which is exactly the movement a single-level event stream
    conflated with walks.
    """

    vpn: int
    asid: int
    #: The 1-based level whose miss was served from below.
    level: int
    #: The 1-based level that actually hit.
    hit_level: int


@dataclass(frozen=True, slots=True)
class EvictEvent:
    """A valid entry was displaced by a fill.

    ``page_level`` is the evicted entry's superpage level (0 = 4 KiB);
    ``level`` the 1-based hierarchy level the eviction happened in.
    """

    vpn: int
    asid: int
    page_level: int
    level: int = 1


@dataclass(frozen=True, slots=True)
class FlushEvent:
    """A TLB maintenance operation.

    ``scope`` is ``"all"``, ``"asid"`` or ``"page"``; ``present`` reports,
    for per-page invalidations, whether the entry was resident (the
    Appendix B presence-dependent timing observable).  ``level`` names one
    hierarchy level when a flush is level-targeted; ``None`` means the
    operation reached every level (hierarchies propagate maintenance to
    all levels and the page-walk cache).
    """

    scope: str
    asid: int | None = None
    vpn: int | None = None
    present: bool | None = None
    level: int | None = None


@dataclass(frozen=True, slots=True)
class ContextSwitchEvent:
    """The running address space changed."""

    previous: int
    asid: int
    policy: str
    flushed: bool


Handler = Callable[[object], None]


class EventBus:
    """A minimal typed publish/subscribe bus.

    Subscribe with the typed sugar (``bus.on_access(fn)`` ...) or the
    generic :meth:`subscribe`.  Handlers run synchronously, in subscription
    order, on the emitting thread.
    """

    __slots__ = ("_handlers", "active")

    def __init__(self) -> None:
        self._handlers: Dict[Type, List[Handler]] = {}
        #: True iff at least one handler is subscribed; the MemorySystem
        #: checks this before constructing any event object.
        self.active = False

    def subscribe(self, event_type: Type, handler: Handler) -> Handler:
        self._handlers.setdefault(event_type, []).append(handler)
        self.active = True
        return handler

    def unsubscribe(self, event_type: Type, handler: Handler) -> None:
        handlers = self._handlers.get(event_type, [])
        if handler in handlers:
            handlers.remove(handler)
        self.active = any(self._handlers.values())

    def emit(self, event: object) -> None:
        for handler in self._handlers.get(type(event), ()):
            handler(event)

    # -- typed subscription sugar -------------------------------------------------

    def on_access(self, handler: Handler) -> Handler:
        return self.subscribe(AccessEvent, handler)

    def on_walk(self, handler: Handler) -> Handler:
        return self.subscribe(WalkEvent, handler)

    def on_fill(self, handler: Handler) -> Handler:
        return self.subscribe(FillEvent, handler)

    def on_refill(self, handler: Handler) -> Handler:
        return self.subscribe(RefillEvent, handler)

    def on_evict(self, handler: Handler) -> Handler:
        return self.subscribe(EvictEvent, handler)

    def on_flush(self, handler: Handler) -> Handler:
        return self.subscribe(FlushEvent, handler)

    def on_context_switch(self, handler: Handler) -> Handler:
        return self.subscribe(ContextSwitchEvent, handler)


EVENT_TYPES = (
    AccessEvent,
    WalkEvent,
    FillEvent,
    RefillEvent,
    EvictEvent,
    FlushEvent,
    ContextSwitchEvent,
)

#: JSONL ``event`` field value for each event class.
EVENT_NAMES = {
    AccessEvent: "access",
    WalkEvent: "walk",
    FillEvent: "fill",
    RefillEvent: "refill",
    EvictEvent: "evict",
    FlushEvent: "flush",
    ContextSwitchEvent: "context_switch",
}
