"""Tests for the two-level TLB hierarchy."""

import random

import pytest

from repro.tlb import (
    IdentityTranslator,
    RandomFillTLB,
    SetAssociativeTLB,
    TLBConfig,
    TwoLevelTLB,
)

L1 = TLBConfig(entries=8, ways=2, hit_latency=1)
L2 = TLBConfig(entries=32, ways=4, hit_latency=8)


def make_hierarchy():
    return TwoLevelTLB(SetAssociativeTLB(L1), SetAssociativeTLB(L2))


class TestAccessPath:
    def test_three_latency_classes(self):
        tlb = make_hierarchy()
        translator = IdentityTranslator(cycles=30)
        cold = tlb.translate(5, 1, translator)  # L1 miss, L2 miss, walk
        assert cold.miss and cold.cycles == 1 + 8 + 30
        warm = tlb.translate(5, 1, translator)  # L1 hit
        assert warm.hit and warm.cycles == 1
        # Evict from L1 only: pages 5, 9, 13 share L1 set 1 (4 sets).
        tlb.translate(9, 1, translator)
        tlb.translate(13, 1, translator)
        l2_hit = tlb.translate(5, 1, translator)  # L1 miss, L2 hit
        assert l2_hit.cycles == 1 + 8
        assert tlb.l2.stats.misses == 3  # only the cold walks

    def test_walk_counter_counts_l2_misses(self):
        tlb = make_hierarchy()
        translator = IdentityTranslator()
        tlb.translate(5, 1, translator)
        tlb.translate(5, 1, translator)
        assert tlb.stats.misses == 1  # the hierarchy's walk counter

    def test_inclusive_fill_on_walk(self):
        tlb = make_hierarchy()
        translator = IdentityTranslator()
        tlb.translate(5, 1, translator)
        assert tlb.l1.resident(5, 1)
        assert tlb.l2.resident(5, 1)

    def test_asid_isolation_preserved(self):
        tlb = make_hierarchy()
        translator = IdentityTranslator()
        tlb.translate(5, 1, translator)
        result = tlb.translate(5, 2, translator)
        assert result.miss and result.cycles == 1 + 8 + 30


class TestMaintenance:
    def test_flush_all_clears_both_levels(self):
        tlb = make_hierarchy()
        translator = IdentityTranslator()
        tlb.translate(5, 1, translator)
        tlb.flush_all()
        assert not tlb.resident(5, 1)
        assert tlb.l1.occupancy() == 0 and tlb.l2.occupancy() == 0

    def test_flush_asid(self):
        tlb = make_hierarchy()
        translator = IdentityTranslator()
        tlb.translate(5, 1, translator)
        tlb.translate(6, 2, translator)
        tlb.flush_asid(1)
        assert not tlb.resident(5, 1)
        assert tlb.resident(6, 2)

    def test_invalidate_page_covers_both_levels(self):
        tlb = make_hierarchy()
        translator = IdentityTranslator()
        tlb.translate(5, 1, translator)
        result = tlb.invalidate_page(5, 1)
        assert result.hit
        assert not tlb.resident(5, 1)
        absent = tlb.invalidate_page(5, 1)
        assert not absent.hit

    def test_distinct_levels_required(self):
        l1 = SetAssociativeTLB(L1)
        with pytest.raises(ValueError):
            TwoLevelTLB(l1, l1)


class TestSecureLevels:
    def test_rf_l1_no_fill_still_caches_in_l2(self):
        # The leak mechanism of the hierarchy ablation: the RF L1 refuses
        # to cache the secret, but the L2 on its walk path does.
        l1 = RandomFillTLB(
            L1, victim_asid=1, sbase=0x100, ssize=3, rng=random.Random(1)
        )
        tlb = TwoLevelTLB(l1, SetAssociativeTLB(L2))
        translator = IdentityTranslator()
        result = tlb.translate(0x100, 1, translator)
        assert result.miss and not result.filled  # the L1 no-fill path ran
        assert tlb.l2.resident(0x100, 1)  # ... but the L2 cached the secret

    def test_secure_region_forwarded_to_rf_levels(self):
        l1 = RandomFillTLB(L1, victim_asid=1, rng=random.Random(1))
        l2 = RandomFillTLB(L2, victim_asid=1, rng=random.Random(2))
        tlb = TwoLevelTLB(l1, l2)
        tlb.set_secure_region(0x100, 3, victim_asid=1)
        assert l1.is_secure(0x101, 1)
        assert l2.is_secure(0x101, 1)

    def test_rf_l2_does_not_cache_the_secret(self):
        l1 = RandomFillTLB(
            L1, victim_asid=1, sbase=0x100, ssize=3, rng=random.Random(1)
        )
        l2 = RandomFillTLB(
            L2, victim_asid=1, sbase=0x100, ssize=3, rng=random.Random(2)
        )
        tlb = TwoLevelTLB(l1, l2)
        translator = IdentityTranslator()
        cached_secret = 0
        for _ in range(20):
            tlb.translate(0x100, 1, translator)
            if any(e.vpn == 0x100 for e in tlb.l2.entries()):
                cached_secret += 1
            tlb.flush_all()
        # Only when the RFE randomly draws the requested page itself.
        assert cached_secret < 20
