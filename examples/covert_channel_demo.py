#!/usr/bin/env python3
"""A TLB covert channel, and how the secure designs shut it down.

A sender (the "victim" process) and a receiver (the "attacker") share no
memory, only the TLB.  Per bit the receiver primes a TLB set, the sender
touches a page in that set for 1 (a different-set page for 0), and the
receiver's probe timing reads the bit back out.

Run with:  python examples/covert_channel_demo.py
"""

from repro.attacks import random_message, transmit
from repro.security import TLBKind


def main() -> None:
    message = random_message(240, seed=9)
    print(f"transmitting {len(message)} random bits through the TLB...\n")

    for kind in (TLBKind.SA, TLBKind.SP, TLBKind.RF):
        result = transmit(message, kind)
        print(f"== {kind.value} TLB ==")
        print(f"  sent     : {message[:64]}...")
        print(f"  received : {result.received[:64]}...")
        print(f"  bit error rate      : {result.bit_error_rate:6.1%}")
        print(f"  empirical capacity  : {result.empirical_capacity():6.3f} bits/symbol")
        print(f"  raw throughput      : {result.bits_per_kilocycle:6.2f} bits/kcycle\n")

    print(
        "The standard TLB carries the message verbatim (capacity ~1 bit per\n"
        "symbol, Section 5.2's C = 1 case); the SP TLB removes the\n"
        "cross-process eviction entirely and the RF TLB randomizes it away."
    )


if __name__ == "__main__":
    main()
