#!/usr/bin/env python3
"""The whole defence landscape on one screen.

Reproduces Section 2.3's survey quantitatively -- every pre-existing
mitigation's defence count over the 24 Table 2 rows -- and extends it with
this reproduction's additional studies: the large-page software mitigation
and the two-level-hierarchy analysis showing why the paper's "can be
applied to other levels of TLB" remark matters.

Run with:  python examples/defence_landscape.py
"""

from repro.ablations import (
    evaluate_all_mitigations,
    evaluate_hierarchies,
    evaluate_large_pages,
    format_hierarchy_results,
    format_large_page_comparison,
    format_mitigation_ladder,
)

TRIALS = 30


def main() -> None:
    print("== Section 2.3's mitigation ladder, measured ==")
    ladder = evaluate_all_mitigations(trials=TRIALS)
    print(format_mitigation_ladder(ladder))

    print("\n== the large-page software mitigation ==")
    large_pages = evaluate_large_pages(trials=TRIALS)
    print(format_large_page_comparison(large_pages, 10, 13))
    print(
        "(Caveat: superpage demotion -- e.g. an mprotect splitting the\n"
        " 2 MiB mapping -- silently restores the 4 KiB attack surface.)"
    )

    print("\n== protecting one TLB level is not enough ==")
    print(format_hierarchy_results(evaluate_hierarchies(trials=TRIALS)))
    print(
        "\nThe victim's translations reach the L2 on the walk path even\n"
        "when a Random-Fill L1 refuses to cache them, so the secure design\n"
        "must cover every level -- exactly the paper's Section 4 remark."
    )


if __name__ == "__main__":
    main()
