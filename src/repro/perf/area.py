"""The Table 5 area model (FPGA Slice LUTs / Slice Registers).

FPGA synthesis is replaced by an analytical area model: a linear model over
the structural parameters that actually cost area in the designs --

* per-entry translation storage (registers scale with entries),
* the tag-match network (fully associative organizations compare against
  every entry; set-associative ones against the ways of one set),
* the Static-Partition TLB's extra way-masking (near-zero cost, matching
  the paper's ~0.4%/0.1% deltas),
* the Random-Fill TLB's Random Fill Engine, no-fill buffer, region
  registers and per-entry Sec bits (a fixed block plus a per-entry term,
  matching the paper's ~6-8% deltas),

-- with coefficients least-squares calibrated against the 19 synthesis
results the paper reports (Table 5, embedded below verbatim).  The model's
job is the paper's claim structure: SP costs almost nothing on top of SA,
RF costs a few percent, and both scale like the standard TLB with entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.security.kinds import TLBKind
from repro.tlb import TLBConfig

from .configs import config_by_label

#: Table 5, verbatim: (design, configuration) -> (Slice LUTs, Slice Registers).
PAPER_TABLE5: Dict[Tuple[TLBKind, str], Tuple[int, int]] = {
    (TLBKind.SA, "1E"): (35266, 18359),
    (TLBKind.SA, "FA 32"): (36395, 22199),
    (TLBKind.SA, "2W 32"): (36298, 23513),
    (TLBKind.SA, "4W 32"): (36043, 22765),
    (TLBKind.SA, "FA 128"): (40177, 33815),
    (TLBKind.SA, "2W 128"): (39684, 38630),
    (TLBKind.SA, "4W 128"): (38107, 35694),
    (TLBKind.SP, "FA 32"): (36499, 22251),
    (TLBKind.SP, "2W 32"): (36387, 23523),
    (TLBKind.SP, "4W 32"): (36183, 22798),
    (TLBKind.SP, "FA 128"): (40568, 33824),
    (TLBKind.SP, "2W 128"): (38609, 38521),
    (TLBKind.SP, "4W 128"): (38049, 35659),
    (TLBKind.RF, "FA 32"): (38281, 22697),
    (TLBKind.RF, "2W 32"): (38510, 25643),
    (TLBKind.RF, "4W 32"): (38266, 24018),
    (TLBKind.RF, "FA 128"): (42740, 34252),
    (TLBKind.RF, "2W 128"): (42509, 45823),
    (TLBKind.RF, "4W 128"): (41259, 39538),
}

#: Every design's Block RAM / DSP usage is constant (Section 6.6).
BLOCK_RAMS = 24
DSPS = 15

BASELINE = (TLBKind.SA, "4W 32")


@dataclass(frozen=True)
class AreaEstimate:
    """Predicted area of one configuration."""

    luts: float
    registers: float

    def delta(self, baseline: "AreaEstimate") -> "AreaEstimate":
        return AreaEstimate(
            luts=self.luts - baseline.luts,
            registers=self.registers - baseline.registers,
        )


def _features(kind: TLBKind, config: TLBConfig) -> List[float]:
    """The structural cost drivers of one configuration."""
    entries = float(config.entries)
    comparators = float(
        config.entries if config.fully_associative else config.ways
    )
    is_sp = 1.0 if kind is TLBKind.SP else 0.0
    is_rf = 1.0 if kind is TLBKind.RF else 0.0
    return [
        1.0,  # the Rocket core around the TLB
        entries,  # per-entry storage
        comparators,  # tag-match network width
        is_sp,  # partition masking (fixed)
        is_rf,  # RFE + buffer + region registers (fixed block)
        is_rf * entries,  # per-entry Sec bit and fill routing
    ]


class AreaModel:
    """Least-squares calibration of the feature model against Table 5."""

    def __init__(self) -> None:
        rows = []
        luts = []
        registers = []
        for (kind, label), (lut_count, register_count) in PAPER_TABLE5.items():
            rows.append(_features(kind, config_by_label(label)))
            luts.append(lut_count)
            registers.append(register_count)
        matrix = np.array(rows)
        self._lut_coefficients, *_ = np.linalg.lstsq(
            matrix, np.array(luts, dtype=float), rcond=None
        )
        self._register_coefficients, *_ = np.linalg.lstsq(
            matrix, np.array(registers, dtype=float), rcond=None
        )

    def predict(self, kind: TLBKind, config_label: str) -> AreaEstimate:
        features = np.array(
            _features(kind, config_by_label(config_label))
        )
        return AreaEstimate(
            luts=float(features @ self._lut_coefficients),
            registers=float(features @ self._register_coefficients),
        )

    def baseline(self) -> AreaEstimate:
        return self.predict(*BASELINE)

    def overhead_fraction(self, kind: TLBKind, config_label: str) -> Tuple[float, float]:
        """(LUT, register) overhead of a secure design over the same-shape
        standard TLB -- the paper's headline percentages."""
        secure = self.predict(kind, config_label)
        standard = self.predict(TLBKind.SA, config_label)
        return (
            secure.luts / standard.luts - 1.0,
            secure.registers / standard.registers - 1.0,
        )

    def table5(self) -> str:
        """Render model predictions next to the paper's synthesis numbers."""
        baseline = self.baseline()
        lines = [
            f"{'TLB':4} {'config':8} {'LUTs(model)':>12} {'LUTs(paper)':>12} "
            f"{'dLUT(model)':>12} {'regs(model)':>12} {'regs(paper)':>12}",
            "-" * 80,
        ]
        for (kind, label), (paper_luts, paper_registers) in PAPER_TABLE5.items():
            estimate = self.predict(kind, label)
            delta = estimate.delta(baseline)
            lines.append(
                f"{kind.value:4} {label:8} {estimate.luts:>12.0f} "
                f"{paper_luts:>12} {delta.luts:>12.0f} "
                f"{estimate.registers:>12.0f} {paper_registers:>12}"
            )
        lines.append(
            f"(Block RAMs = {BLOCK_RAMS}, DSPs = {DSPS} for all configurations)"
        )
        return "\n".join(lines)

    def max_relative_error(self) -> Tuple[float, float]:
        """Worst-case |model - paper| / paper over Table 5 (fit quality)."""
        worst_luts = 0.0
        worst_registers = 0.0
        for (kind, label), (paper_luts, paper_registers) in PAPER_TABLE5.items():
            estimate = self.predict(kind, label)
            worst_luts = max(
                worst_luts, abs(estimate.luts - paper_luts) / paper_luts
            )
            worst_registers = max(
                worst_registers,
                abs(estimate.registers - paper_registers) / paper_registers,
            )
        return worst_luts, worst_registers
