"""The hierarchy-sweep experiment: units, execution, assembly, artifact.

A reduced-trials end-to-end pass over the registered experiment -- the
same units/run/assemble contract the parallel runner drives, without the
worker processes.
"""

from __future__ import annotations

import pytest

from repro.runner import get_experiment
from repro.runner.results import write_artifacts

OPTIONS = {"hierarchy_sweep_trials": 2, "hierarchy_sweep_rsa_runs": 2}


@pytest.fixture(scope="module")
def experiment():
    return get_experiment("hierarchy_sweep")


@pytest.fixture(scope="module")
def assembled(experiment):
    units = experiment.units(OPTIONS)
    values = [type(experiment).run(unit.params) for unit in units]
    return experiment.assemble(values, OPTIONS)


class TestUnits:
    def test_cell_count_and_parts(self, experiment):
        units = experiment.units(OPTIONS)
        parts = {}
        for unit in units:
            part = unit.params["part"]
            parts[part] = parts.get(part, 0) + 1
        assert parts == {"security": 24 * 7, "perf": 24, "leakage": 1}

    def test_specs_travel_as_plain_dicts(self, experiment):
        import json

        for unit in experiment.units(OPTIONS):
            json.dumps(unit.params["spec"])

    def test_trials_option_reaches_the_cells(self, experiment):
        units = experiment.units(OPTIONS)
        assert all(
            unit.params["trials"] == 2
            for unit in units
            if unit.params["part"] == "security"
        )


class TestAssembly:
    def test_every_design_gets_a_result(self, assembled):
        designs = assembled["designs"]
        assert len(designs) == 24
        labels = {result.label for result in designs}
        assert "SA+SA" in labels and "RF+RF+pwc" in labels
        for result in designs:
            assert len(result.estimates) == 7
            assert result.perf is not None

    def test_leakage_cell_is_threaded_through(self, assembled):
        leakage = assembled["leakage"]
        assert leakage["design"] == "RF+SA"
        assert leakage["workload"] == "rsa"

    def test_artifact_is_written(self, assembled, tmp_path):
        written = write_artifacts(
            {"hierarchy_sweep": assembled}, tmp_path, OPTIONS
        )
        assert "hierarchy_sweep.txt" in written
        text = (tmp_path / "hierarchy_sweep.txt").read_text()
        assert "hierarchy sweep" in text
        assert "refill-leakage cross-check" in text
