"""The three-step TLB vulnerability model (Sections 3, 5.2, Appendices A/B).

Public surface of the paper's primary modeling contribution:

* :mod:`repro.model.states` -- the TLB-block states (Table 1 / Table 6);
* :mod:`repro.model.patterns` -- three-step patterns, observations, and the
  Table 2 taxonomy (macro types, attack strategies, literature mapping);
* :mod:`repro.model.reduction` -- the symbolic reduction script of
  Section 3.3 (rules 1-6);
* :mod:`repro.model.effectiveness` -- the mechanized effectiveness analysis
  (rule 7 and the fast/slow assignment) that derives exactly Table 2;
* :mod:`repro.model.table2` -- the paper's Table 2, transcribed, as ground
  truth for verification;
* :mod:`repro.model.extended` -- the Appendix B model with targeted
  invalidations (Tables 6/7);
* :mod:`repro.model.soundness` -- Algorithm 1 (beta-step reduction);
* :mod:`repro.model.capacity` -- channel capacity (Equation 1).
"""

from .capacity import ChannelEstimate, channel_capacity
from .estimation import (
    capacity_bounds,
    significantly_leaky,
    two_proportion_z,
    wilson_interval,
)
from .effectiveness import (
    MAPPED_RELATIONS,
    Relation,
    analyze,
    applicable_relations,
    derive_vulnerabilities,
    step3_timings,
)
from .extended import (
    derive_extended_vulnerabilities,
    invalidation_only_vulnerabilities,
    strategy_label,
)
from .patterns import (
    MacroType,
    Observation,
    Strategy,
    ThreeStepPattern,
    Vulnerability,
    format_table,
)
from .report import derivation_report, explain
from .reduction import (
    candidate_patterns,
    count_survivors_by_rule,
    enumerate_triples,
    passes_symbolic_rules,
)
from .soundness import (
    effective_vulnerabilities,
    is_effective,
    reduce_pattern,
)
from .states import (
    BASE_STATES,
    EXTENDED_ONLY_STATES,
    EXTENDED_STATES,
    Actor,
    AddressClass,
    Operation,
    State,
    state_by_name,
)
from .table2 import (
    PAPER_DEFENCE_CLAIMS,
    TABLE2_ROWS,
    table2_expected_classification,
    table2_vulnerabilities,
)

__all__ = [
    "Actor",
    "AddressClass",
    "BASE_STATES",
    "ChannelEstimate",
    "EXTENDED_ONLY_STATES",
    "EXTENDED_STATES",
    "MAPPED_RELATIONS",
    "MacroType",
    "Observation",
    "Operation",
    "PAPER_DEFENCE_CLAIMS",
    "Relation",
    "State",
    "Strategy",
    "TABLE2_ROWS",
    "ThreeStepPattern",
    "Vulnerability",
    "analyze",
    "applicable_relations",
    "candidate_patterns",
    "capacity_bounds",
    "channel_capacity",
    "count_survivors_by_rule",
    "derivation_report",
    "derive_extended_vulnerabilities",
    "derive_vulnerabilities",
    "effective_vulnerabilities",
    "enumerate_triples",
    "explain",
    "format_table",
    "invalidation_only_vulnerabilities",
    "is_effective",
    "passes_symbolic_rules",
    "reduce_pattern",
    "significantly_leaky",
    "state_by_name",
    "step3_timings",
    "strategy_label",
    "two_proportion_z",
    "table2_expected_classification",
    "wilson_interval",
    "table2_vulnerabilities",
]
