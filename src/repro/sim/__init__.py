"""The shared simulation core: one translation path for every experiment.

The paper's Section 4 flow charts describe a single state machine -- a TLB
driven by translate / flush / context-switch events -- yet a reproduction
naturally grows one hand-rolled drive loop per experiment (the CPU, the
trace-driven timing model, each end-to-end attack, the security harness).
:mod:`repro.sim` extracts that state machine once:

* :class:`MemorySystem` -- the facade owning the TLB (or hierarchy), the
  page-table walker, the context-switch policy and cycle accounting.  Every
  drive loop in the repository performs its translations through it.
* :class:`EventBus` -- a typed publish/subscribe bus carrying the seven
  architectural events (``access``, ``fill``, ``refill``, ``evict``,
  ``flush``, ``walk``, ``context_switch``) out of the translation path.
  Hierarchies tag fills/evicts with their level and announce inter-level
  movement as ``refill`` events.
* Observers -- :class:`TraceObserver` dumps the event stream as JSONL
  (``python -m repro trace <scenario>``); :class:`StatsObserver` keeps
  cheap aggregate counters without touching the hot path when detached.
* :class:`SetProber` -- the shared prime / probe-and-classify helper the
  attack modules previously re-implemented individually.
* :mod:`repro.sim.kernel` -- the allocation-free fast-path translation
  kernel (packed-int results, compiled traces) behind
  :meth:`MemorySystem.translate_fast`; differentially verified against
  the reference path (``docs/performance.md``).

See ``docs/architecture.md`` for the observer API and event schema.
"""

from .events import (
    AccessEvent,
    ContextSwitchEvent,
    EventBus,
    EvictEvent,
    FillEvent,
    FlushEvent,
    RefillEvent,
    WalkEvent,
)
from .kernel import (
    KERNEL_TELEMETRY,
    STRUCTURE_BACKEND,
    CompiledTrace,
    KernelTelemetry,
    ReuseOracle,
    RunState,
    pack_result,
    packed_cycles,
    packed_filled,
    packed_hit,
    supports_fastpath,
    supports_runpath,
)
from .observers import (
    JsonlWriter,
    StatsObserver,
    TornRecordError,
    TraceObserver,
    read_jsonl,
)
from .probe import ProbeOutcome, SetProber, pages_for_set
from .system import MemorySystem
from .trace import SCENARIOS, TraceReport, read_trace, run_scenario

__all__ = [
    "KERNEL_TELEMETRY",
    "SCENARIOS",
    "STRUCTURE_BACKEND",
    "TraceReport",
    "AccessEvent",
    "CompiledTrace",
    "ContextSwitchEvent",
    "EventBus",
    "EvictEvent",
    "FillEvent",
    "FlushEvent",
    "JsonlWriter",
    "KernelTelemetry",
    "MemorySystem",
    "ProbeOutcome",
    "RefillEvent",
    "ReuseOracle",
    "RunState",
    "SetProber",
    "StatsObserver",
    "TornRecordError",
    "TraceObserver",
    "WalkEvent",
    "pack_result",
    "packed_cycles",
    "packed_filled",
    "packed_hit",
    "pages_for_set",
    "read_jsonl",
    "read_trace",
    "run_scenario",
    "supports_fastpath",
    "supports_runpath",
]
