"""Three-step patterns, observations, and classified vulnerabilities.

A *pattern* is an ordered triple of TLB-block states, written in the paper as
``Step1 ~> Step2 ~> Step3``.  A *vulnerability* is a pattern together with
the Step-3 timing observation (``fast`` = TLB hit, ``slow`` = TLB miss, or
for the extended model the analogous short/long invalidation timing) that
lets the attacker infer something about the victim's secret page ``u``.

The classification helpers reproduce the taxonomy of Table 2:

* **macro type** -- ``I`` (internal) when Steps 2 and 3 involve only the
  victim, ``E`` (external) otherwise; crossed with ``H`` (hit-based, the
  informative observation is *fast*) and ``M`` (miss-based, *slow*);
* **attack strategy** -- the coarse grouping of rows (TLB Internal
  Collision, TLB Flush + Reload, TLB Evict + Time, TLB Prime + Probe, the
  TLB version of Bernstein's Attack, TLB Evict + Probe, TLB Prime + Time);
* **literature mapping** -- Internal Collision rows correspond to the
  Double Page Fault attack [Hund et al., S&P 2013] and Prime + Probe rows
  to TLBleed [Gras et al., USENIX Sec 2018]; all other rows were new.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Tuple

from .states import Actor, Operation, State


class Observation(enum.Enum):
    """The Step-3 timing the attacker must observe for the attack to work."""

    #: A TLB hit: the final operation completes quickly.
    FAST = "fast"
    #: A TLB miss: the final operation is delayed by a page-table walk.
    SLOW = "slow"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class MacroType(enum.Enum):
    """Table 2's four coarse vulnerability categories."""

    IH = "IH"
    EH = "EH"
    IM = "IM"
    EM = "EM"

    @property
    def is_internal(self) -> bool:
        return self.value[0] == "I"

    @property
    def is_hit_based(self) -> bool:
        return self.value[1] == "H"


class Strategy(enum.Enum):
    """The attack-strategy names used for the Table 2 row groups."""

    INTERNAL_COLLISION = "TLB Internal Collision"
    FLUSH_RELOAD = "TLB Flush + Reload"
    EVICT_TIME = "TLB Evict + Time"
    PRIME_PROBE = "TLB Prime + Probe"
    BERNSTEIN = "TLB version of Bernstein's Attack"
    EVICT_PROBE = "TLB Evict + Probe"
    PRIME_TIME = "TLB Prime + Time"
    # Extended (Appendix B) strategy families.
    RELOAD_TIME = "TLB Reload + Time"
    FLUSH_PROBE = "TLB Flush + Probe"
    FLUSH_TIME = "TLB Flush + Time"
    FLUSH_FLUSH = "TLB Flush + Flush"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ThreeStepPattern:
    """An ordered triple of states: ``steps[0] ~> steps[1] ~> steps[2]``."""

    steps: Tuple[State, State, State]

    def __post_init__(self) -> None:
        if len(self.steps) != 3:
            raise ValueError("a three-step pattern has exactly three steps")

    @classmethod
    def of(cls, step1: State, step2: State, step3: State) -> "ThreeStepPattern":
        return cls((step1, step2, step3))

    @property
    def step1(self) -> State:
        return self.steps[0]

    @property
    def step2(self) -> State:
        return self.steps[1]

    @property
    def step3(self) -> State:
        return self.steps[2]

    def actors(self) -> Tuple[Actor | None, ...]:
        return tuple(step.actor for step in self.steps)

    def uses_extended_states(self) -> bool:
        """True if any step is a targeted invalidation (Appendix B only)."""
        return any(
            step.operation is Operation.INVALIDATE_TARGET for step in self.steps
        )

    def pretty(self) -> str:
        return " ~> ".join(step.pretty() for step in self.steps)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.pretty()


@dataclass(frozen=True)
class Vulnerability:
    """A pattern plus the informative Step-3 observation: one Table 2 row."""

    pattern: ThreeStepPattern
    observation: Observation

    @property
    def macro_type(self) -> MacroType:
        """Classify per Section 3.3: I/E from the Step 2-3 actors, H/M from
        the observation."""
        internal = all(
            step.actor is not Actor.ATTACKER
            for step in (self.pattern.step2, self.pattern.step3)
        )
        hit_based = self.observation is Observation.FAST
        if internal:
            return MacroType.IH if hit_based else MacroType.IM
        return MacroType.EH if hit_based else MacroType.EM

    @property
    def strategy(self) -> Strategy:
        return classify_strategy(self)

    @property
    def known_attack(self) -> str | None:
        """The previously published attack this row maps to, if any."""
        strategy = self.strategy
        if strategy is Strategy.INTERNAL_COLLISION:
            return "Double Page Fault (Hund et al., IEEE S&P 2013)"
        if strategy is Strategy.PRIME_PROBE:
            return "TLBleed (Gras et al., USENIX Security 2018)"
        return None

    def pretty(self) -> str:
        return f"{self.pattern.pretty()} ({self.observation.value})"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.pretty()


def classify_strategy(vulnerability: Vulnerability) -> Strategy:
    """Assign the Table 2 / Table 7 attack-strategy name to a vulnerability.

    The grouping keys off the *shape* of the pattern:

    * hit-based patterns ending in a known in-range access are collision
      style: performed by the victim they are Internal Collision (or, when a
      targeted invalidation is involved, Reload + Time / Flush + Probe),
      performed by the attacker they are Flush + Reload;
    * miss-based patterns of shape ``u ~> known ~> u`` time the victim after
      an eviction: Evict + Time when the attacker evicts, Bernstein when the
      victim itself does (and Flush + Time when the middle step is a
      targeted invalidation);
    * miss-based patterns of shape ``known ~> u ~> known`` group by who
      performed Steps 1 and 3: Prime + Probe (A, A), Evict + Probe (V, A),
      Prime + Time (A, V), Bernstein (V, V); targeted-invalidation probes in
      Step 3 are the Flush + Flush family.
    """
    pattern = vulnerability.pattern
    step1, step2, step3 = pattern.steps

    secret_middle = step2.is_secret
    secret_outer = step1.is_secret and step3.is_secret

    if secret_outer:
        # Shape u ~> known ~> u.
        if step2.operation is Operation.INVALIDATE_TARGET:
            return Strategy.FLUSH_TIME
        if step2.is_secret:  # pragma: no cover - excluded by reduction rules
            raise ValueError(f"degenerate pattern {pattern}")
        if step1.operation is Operation.INVALIDATE_TARGET or (
            step3.operation is Operation.INVALIDATE_TARGET
        ):
            return Strategy.RELOAD_TIME
        if step2.actor is Actor.ATTACKER:
            return Strategy.EVICT_TIME
        return Strategy.BERNSTEIN

    if not secret_middle:
        # Extended-model shapes with the secret operation at an edge,
        # e.g. V_u^inv in Step 2 are handled below; anything else that
        # reaches here with the secret only in Step 1 is Reload + Time.
        if step1.is_secret:
            return Strategy.RELOAD_TIME
        raise ValueError(f"pattern has no secret step: {pattern}")

    # Shape known ~> secret ~> known.
    if step2.operation is Operation.INVALIDATE_TARGET:
        # The victim's secret behaviour is a targeted invalidation.
        return Strategy.FLUSH_PROBE

    if vulnerability.observation is Observation.FAST:
        if step3.operation is Operation.INVALIDATE_TARGET:
            return Strategy.FLUSH_PROBE
        if step3.actor is Actor.VICTIM:
            return Strategy.INTERNAL_COLLISION
        return Strategy.FLUSH_RELOAD

    if step3.operation is Operation.INVALIDATE_TARGET:
        return Strategy.FLUSH_FLUSH

    first = step1.actor
    third = step3.actor
    if first is Actor.ATTACKER and third is Actor.ATTACKER:
        return Strategy.PRIME_PROBE
    if first is Actor.VICTIM and third is Actor.ATTACKER:
        return Strategy.EVICT_PROBE
    if first is Actor.ATTACKER and third is Actor.VICTIM:
        return Strategy.PRIME_TIME
    return Strategy.BERNSTEIN


def format_table(vulnerabilities: Iterable[Vulnerability]) -> str:
    """Render vulnerabilities as a Table 2-style text table."""
    rows = sorted(
        vulnerabilities,
        key=lambda v: (v.strategy.value, v.pattern.pretty()),
    )
    lines = [
        f"{'Attack Strategy':34} {'Step 1':14} {'Step 2':10} "
        f"{'Step 3':18} {'Macro':6} Known attack",
        "-" * 100,
    ]
    for vuln in rows:
        step1, step2, step3 = vuln.pattern.steps
        lines.append(
            f"{vuln.strategy.value:34} {step1.pretty():14} {step2.pretty():10} "
            f"{step3.pretty() + ' (' + vuln.observation.value + ')':18} "
            f"{vuln.macro_type.value:6} {vuln.known_attack or 'new'}"
        )
    return "\n".join(lines)
