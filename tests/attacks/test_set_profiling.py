"""Tests for the set-profiling (first-stage TLBleed) attack."""

import pytest

from repro.attacks import profile_secret_set
from repro.security.kinds import TLBKind


class TestStandardTLB:
    @pytest.mark.parametrize("secret", [0x100, 0x101, 0x102, 0x103])
    def test_every_set_index_recoverable(self, secret):
        result = profile_secret_set(TLBKind.SA, secret_vpn=secret)
        assert result.correct
        assert result.recovered_set == secret % 4

    def test_unanimous_votes_on_sa(self):
        result = profile_secret_set(TLBKind.SA, secret_vpn=0x101, rounds=10)
        assert result.vote_distribution() == {1: 10}


class TestSecureTLBs:
    def test_sp_votes_are_uncorrelated_with_the_secret(self):
        # The victim cannot evict the attacker's partition, so whatever
        # the profiler reads is self-interference, not the secret.
        results = [
            profile_secret_set(TLBKind.SP, secret_vpn=0x100 + offset)
            for offset in range(4)
        ]
        recovered = {result.recovered_set for result in results}
        # The same (secret-independent) answer for every secret position.
        assert len(recovered) == 1

    def test_rf_votes_spread_over_the_sets(self):
        result = profile_secret_set(
            TLBKind.RF, secret_vpn=0x102, rounds=40, seed=3
        )
        votes = result.vote_distribution()
        assert len(votes) >= 3  # randomized fills land everywhere
        # No set dominates the way SA's true set does.
        assert max(votes.values()) < 40 * 0.6

    def test_rf_accuracy_is_chance_over_seeds(self):
        correct = sum(
            profile_secret_set(
                TLBKind.RF, secret_vpn=0x102, rounds=5, seed=seed
            ).correct
            for seed in range(20)
        )
        assert correct <= 12  # chance is ~1/4 with 8 region pages over 4 sets


class TestValidation:
    def test_secret_outside_region_rejected(self):
        with pytest.raises(ValueError):
            profile_secret_set(TLBKind.SA, secret_vpn=0x50)
