"""Forward taint/constant dataflow over the guest CFG.

The analysis runs two lattices side by side over every reachable
instruction, joining at control-flow merges until a fixpoint:

* a **value lattice** per register -- ``0`` at entry (the CPU zeroes the
  register file), a known constant after ``li``/``la`` and arithmetic on
  known operands, ``unknown`` (``None``) otherwise.  Known values let the
  checker name the exact *pages* a flagged access touches.
* a **taint lattice** per register, CSR and store address -- the set of
  contract sources that may flow into the cell, plus one representative
  def-use ``path`` of instruction indices for the report.

Sinks are the paper's three-step observables: a memory operand whose
*address* is tainted (data flow into the page number), a conditional
branch on tainted operands, and -- the TLBleed shape -- a memory access
*control-dependent* on such a branch, where the secret decides whether
the page is touched at all.  Each sink hit becomes a
:class:`LeakageFinding` carrying the taint path and the page set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.assembler import Program
from repro.isa.instructions import (
    BRANCH_OPS,
    Instruction,
    LOAD_OPS,
    REG_IMM_OPS,
    REG_REG_OPS,
    STORE_OPS,
)

from .cfg import ControlFlowGraph
from .contract import LeakageContract

PAGE_BITS = 12
MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class Taint:
    """Which secrets may occupy a cell, and one def-use path that got them
    there (instruction indices, source first, most recent def last)."""

    sources: frozenset = frozenset()
    path: Tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.sources)

    def through(self, pc: int) -> "Taint":
        """Extend the representative path through a defining instruction."""
        if not self.sources:
            return NO_TAINT
        if self.path and self.path[-1] == pc:
            return self
        return Taint(self.sources, self.path + (pc,))


NO_TAINT = Taint()


def join_taint(left: Taint, right: Taint) -> Taint:
    if not left.sources:
        return right
    if not right.sources:
        return left
    sources = left.sources | right.sources
    # Keep the shorter representative path; ties go to the left operand so
    # the fixpoint terminates on stable state.
    path = left.path if len(left.path) <= len(right.path) else right.path
    return Taint(sources, path)


@dataclass(frozen=True)
class AbsState:
    """One program point's abstract state (immutable; joins build new ones)."""

    reg_value: Tuple[Optional[int], ...]
    reg_taint: Tuple[Taint, ...]
    csr_taint: Tuple[Tuple[str, Taint], ...] = ()
    mem_taint: Tuple[Tuple[int, Taint], ...] = ()
    #: Summary taint for stores through statically unknown addresses.
    mem_any: Taint = NO_TAINT

    @classmethod
    def entry(cls, contract: LeakageContract) -> "AbsState":
        values: List[Optional[int]] = [0] * 32
        taints = [NO_TAINT] * 32
        for register in contract.secret_registers():
            values[register] = None
            taints[register] = Taint(frozenset({f"reg:x{register}"}), ())
        return cls(reg_value=tuple(values), reg_taint=tuple(taints))

    def csr(self, name: str) -> Taint:
        for key, taint in self.csr_taint:
            if key == name:
                return taint
        return NO_TAINT

    def memory(self, address: Optional[int]) -> Taint:
        if address is None:
            # Unknown address: any tainted store may alias it.
            taint = self.mem_any
            for _address, stored in self.mem_taint:
                taint = join_taint(taint, stored)
            return taint
        for key, stored in self.mem_taint:
            if key == address:
                return join_taint(stored, self.mem_any)
        return self.mem_any

    def with_reg(self, register, value, taint) -> "AbsState":
        if register in (None, 0):
            return self
        values = list(self.reg_value)
        taints = list(self.reg_taint)
        values[register] = value if value is None else value & MASK64
        taints[register] = taint
        return AbsState(
            reg_value=tuple(values),
            reg_taint=tuple(taints),
            csr_taint=self.csr_taint,
            mem_taint=self.mem_taint,
            mem_any=self.mem_any,
        )

    def with_csr(self, name: str, taint: Taint) -> "AbsState":
        entries = tuple(
            (key, value) for key, value in self.csr_taint if key != name
        )
        if taint:
            entries = entries + ((name, taint),)
        return AbsState(
            reg_value=self.reg_value,
            reg_taint=self.reg_taint,
            csr_taint=entries,
            mem_taint=self.mem_taint,
            mem_any=self.mem_any,
        )

    def with_store(self, address: Optional[int], taint: Taint) -> "AbsState":
        if address is None:
            if not taint:
                return self
            return AbsState(
                reg_value=self.reg_value,
                reg_taint=self.reg_taint,
                csr_taint=self.csr_taint,
                mem_taint=self.mem_taint,
                mem_any=join_taint(self.mem_any, taint),
            )
        entries = tuple(
            (key, value) for key, value in self.mem_taint if key != address
        )
        if taint:
            entries = entries + ((address, taint),)
        return AbsState(
            reg_value=self.reg_value,
            reg_taint=self.reg_taint,
            csr_taint=self.csr_taint,
            mem_taint=entries,
            mem_any=self.mem_any,
        )


def join_states(left: AbsState, right: AbsState) -> AbsState:
    values = tuple(
        a if a == b else None
        for a, b in zip(left.reg_value, right.reg_value)
    )
    taints = tuple(
        join_taint(a, b) for a, b in zip(left.reg_taint, right.reg_taint)
    )
    csr_names = {name for name, _ in left.csr_taint} | {
        name for name, _ in right.csr_taint
    }
    csrs = tuple(
        (name, join_taint(left.csr(name), right.csr(name)))
        for name in sorted(csr_names)
    )
    addresses = {address for address, _ in left.mem_taint} | {
        address for address, _ in right.mem_taint
    }
    memory = tuple(
        (
            address,
            join_taint(
                dict(left.mem_taint).get(address, NO_TAINT),
                dict(right.mem_taint).get(address, NO_TAINT),
            ),
        )
        for address in sorted(addresses)
    )
    return AbsState(
        reg_value=values,
        reg_taint=taints,
        csr_taint=csrs,
        mem_taint=memory,
        mem_any=join_taint(left.mem_any, right.mem_any),
    )


# -- findings ------------------------------------------------------------------


@dataclass(frozen=True)
class LeakageFinding:
    """One secret-to-sink flow the static analysis proved possible."""

    #: ``tainted-address`` | ``secret-branch`` | ``secret-dependent-access``
    kind: str
    pc: int
    mnemonic: str
    line: int
    sources: Tuple[str, ...]
    #: Def-use chain (instruction indices), source load first, sink last.
    path: Tuple[int, ...]
    #: Virtual pages the sink can touch; empty when statically unknown.
    pages: Tuple[int, ...] = ()

    def describe(self) -> str:
        pages = (
            " pages {" + ", ".join(hex(page) for page in self.pages) + "}"
            if self.pages
            else ""
        )
        chain = " -> ".join(str(pc) for pc in self.path)
        return (
            f"{self.kind} at pc {self.pc} ({self.mnemonic}, line {self.line})"
            f" from {', '.join(self.sources)} via [{chain}]{pages}"
        )


@dataclass(frozen=True)
class GuestReport:
    """The static verdict for one guest program."""

    name: str
    contract: LeakageContract
    findings: Tuple[LeakageFinding, ...]
    instructions: int
    reachable: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return counts


# -- the analyzer --------------------------------------------------------------


@dataclass
class TaintAnalysis:
    """Fixpoint taint/constant propagation plus the sink scan."""

    program: Program
    contract: Optional[LeakageContract] = None
    name: str = "guest"
    cfg: ControlFlowGraph = field(init=False)

    def __post_init__(self) -> None:
        if self.contract is None:
            self.contract = LeakageContract.from_program(self.program)
        self.cfg = ControlFlowGraph(self.program)
        self._ranges = self.contract.secret_ranges(self.program)

    # -- transfer function ------------------------------------------------------

    def _address_of(self, state: AbsState, instruction: Instruction) -> Optional[int]:
        base = state.reg_value[instruction.rs1]
        if base is None:
            return None
        return (base + instruction.imm) & MASK64

    def _secret_at(self, address: Optional[int], pc: int) -> Taint:
        if address is None:
            # An unknown address may alias any secret extent.
            sources = frozenset(
                source.label for _lo, _hi, source in self._ranges
            )
            return Taint(sources, (pc,)) if sources else NO_TAINT
        for lo, hi, source in self._ranges:
            if lo <= address < hi:
                return Taint(frozenset({source.label}), (pc,))
        return NO_TAINT

    def transfer(self, pc: int, state: AbsState) -> AbsState:
        instruction = self.program.instructions[pc]
        mnemonic = instruction.mnemonic
        values = state.reg_value
        taints = state.reg_taint

        if mnemonic == "li":
            return state.with_reg(instruction.rd, instruction.imm, NO_TAINT)
        if mnemonic == "la":
            address = self.program.symbol_address(
                instruction.symbol, instruction.line
            )
            return state.with_reg(instruction.rd, address, NO_TAINT)
        if mnemonic == "mv":
            return state.with_reg(
                instruction.rd,
                values[instruction.rs1],
                taints[instruction.rs1].through(pc),
            )
        if mnemonic in REG_REG_OPS:
            rs1, rs2 = instruction.rs1, instruction.rs2
            if mnemonic in ("sub", "xor") and rs1 == rs2:
                # x - x and x ^ x are 0 regardless of taint.
                return state.with_reg(instruction.rd, 0, NO_TAINT)
            value = _alu(mnemonic, values[rs1], values[rs2])
            taint = join_taint(taints[rs1], taints[rs2]).through(pc)
            return state.with_reg(instruction.rd, value, taint)
        if mnemonic in REG_IMM_OPS:
            value = _alu_imm(mnemonic, values[instruction.rs1], instruction.imm)
            taint = taints[instruction.rs1].through(pc)
            return state.with_reg(instruction.rd, value, taint)
        if mnemonic in LOAD_OPS:
            address = self._address_of(state, instruction)
            taint = join_taint(
                self._secret_at(address, pc),
                join_taint(state.memory(address), taints[instruction.rs1]),
            ).through(pc)
            # Loaded data values are statically unknown.
            return state.with_reg(instruction.rd, None, taint)
        if mnemonic in STORE_OPS:
            address = self._address_of(state, instruction)
            return state.with_store(
                address, taints[instruction.rs2].through(pc)
            )
        if mnemonic == "csrr":
            if instruction.csr in self.contract.secret_csrs():
                taint = Taint(frozenset({f"csr:{instruction.csr}"}), (pc,))
            else:
                taint = state.csr(instruction.csr).through(pc)
            return state.with_reg(instruction.rd, None, taint)
        if mnemonic in ("csrw", "csrwi"):
            if instruction.rs1 is not None:
                taint = taints[instruction.rs1].through(pc)
            else:
                taint = NO_TAINT
            return state.with_csr(instruction.csr, taint)
        # Branches, jumps, sfence.vma, nop and terminators do not change
        # the dataflow state.
        return state

    # -- the fixpoint ------------------------------------------------------------

    def solve(self) -> List[Optional[AbsState]]:
        """IN-state per instruction index (``None`` where unreachable)."""
        n = self.cfg.exit
        states: List[Optional[AbsState]] = [None] * (n + 1)
        if n == 0:
            return states
        states[0] = AbsState.entry(self.contract)
        worklist = [0]
        while worklist:
            pc = worklist.pop()
            if pc == self.cfg.exit:
                continue
            out = self.transfer(pc, states[pc])
            for successor in self.cfg.successors[pc]:
                current = states[successor]
                merged = out if current is None else join_states(current, out)
                if merged != current:
                    states[successor] = merged
                    worklist.append(successor)
        return states

    # -- sink scan ---------------------------------------------------------------

    def run(self) -> GuestReport:
        states = self.solve()
        control = self.cfg.control_dependencies()
        findings: List[LeakageFinding] = []
        for pc, instruction in enumerate(self.program.instructions):
            state = states[pc]
            if state is None:
                continue
            if instruction.is_memory_op():
                findings.extend(
                    self._memory_findings(pc, instruction, state, states, control)
                )
            elif instruction.mnemonic in BRANCH_OPS:
                taint = join_taint(
                    state.reg_taint[instruction.rs1],
                    state.reg_taint[instruction.rs2],
                )
                if taint:
                    findings.append(
                        self._finding(
                            "secret-branch", pc, instruction, taint, pages=()
                        )
                    )
        reachable = self.cfg.reachable()
        return GuestReport(
            name=self.name,
            contract=self.contract,
            findings=tuple(findings),
            instructions=len(self.program.instructions),
            reachable=len(reachable),
        )

    def _memory_findings(self, pc, instruction, state, states, control):
        pages = self._pages(state, instruction)
        address_taint = state.reg_taint[instruction.rs1]
        if address_taint:
            yield self._finding(
                "tainted-address", pc, instruction, address_taint, pages
            )
        for branch in sorted(control.get(pc, ())):
            branch_state = states[branch]
            if branch_state is None:
                continue
            condition = self.program.instructions[branch]
            taint = join_taint(
                branch_state.reg_taint[condition.rs1],
                branch_state.reg_taint[condition.rs2],
            )
            if taint:
                # The branch decides whether this page is touched: the
                # TLBleed shape.  Path: source chain, branch, then sink.
                yield self._finding(
                    "secret-dependent-access",
                    pc,
                    instruction,
                    Taint(taint.sources, taint.path + (branch,)),
                    pages,
                )

    def _pages(self, state: AbsState, instruction: Instruction) -> Tuple[int, ...]:
        address = self._address_of(state, instruction)
        if address is None:
            return ()
        return ((address >> PAGE_BITS),)

    def _finding(self, kind, pc, instruction, taint, pages) -> LeakageFinding:
        path = taint.path if taint.path and taint.path[-1] == pc else taint.path + (pc,)
        return LeakageFinding(
            kind=kind,
            pc=pc,
            mnemonic=instruction.mnemonic,
            line=instruction.line,
            sources=tuple(sorted(taint.sources)),
            path=path,
            pages=tuple(sorted(pages)),
        )


def _alu(mnemonic: str, left: Optional[int], right: Optional[int]) -> Optional[int]:
    if left is None or right is None:
        return None
    if mnemonic == "add":
        return left + right
    if mnemonic == "sub":
        return left - right
    if mnemonic == "and":
        return left & right
    if mnemonic == "or":
        return left | right
    return left ^ right  # xor


def _alu_imm(mnemonic: str, left: Optional[int], imm: int) -> Optional[int]:
    if left is None:
        return None
    if mnemonic == "addi":
        return left + imm
    if mnemonic == "andi":
        return left & imm
    if mnemonic == "ori":
        return left | imm
    if mnemonic == "xori":
        return left ^ imm
    if mnemonic == "slli":
        return left << imm
    return left >> imm  # srli


def analyze_program(
    program: Program,
    contract: Optional[LeakageContract] = None,
    name: str = "guest",
) -> GuestReport:
    """Run the leakage checker over one assembled program."""
    return TaintAnalysis(program=program, contract=contract, name=name).run()
