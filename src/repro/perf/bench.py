"""The fast-path regression bench (``python -m repro bench``).

Times the :mod:`repro.sim.kernel` fast path against the reference model
over the workloads that dominate the reproduction's runtime, and refuses
to report any speedup whose counters diverge -- the bench is first a
differential test and only then a stopwatch.  Three tiers:

* **Trace replay** (the headline): each design -- SA, FA (the
  fully-associative organization), SP, RF -- replays a precompiled
  Figure 7 SPEC trace through ``BaseTLB.translate`` and through the
  batched ``BaseTLB.translate_slice``, comparing accesses/second.  The
  acceptance floor is a >= 3x geometric-mean speedup.
* **Security replay**: the RSA decryption trace (the victim workload
  behind the security evaluation's micro-benchmarks) replayed on each
  design with its protection programmed -- the SP victim partition and
  the RF secure region over the MPI buffers -- so the fast path's
  no-fill-buffer handling is timed, not just exercised.
* **End-to-end cells**: whole Figure 7 cells under ``fastpath=True`` vs
  ``fastpath=False``, asserting ``PerfResult`` equality.  Wall-clock
  context only: trace *generation* is shared by both paths, so the
  ratio here is structurally smaller than the replay headline.

``bench()`` returns the report as plain dicts; the CLI renders it as
text or JSON and writes ``BENCH_fastpath.json`` for CI to archive.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.mmu import PageTableWalker, make_walker
from repro.security.kinds import TLBKind, make_tlb
from repro.sim.kernel import CompiledTrace
from repro.tlb.base import BaseTLB
from repro.workloads.rsa import RSAWorkload, generate_key
from repro.workloads.spec import by_name

from .configs import config_by_label
from .harness import RSA_ASID, PerfSettings, Scenario, run_cell

#: The acceptance floor for the replay headline (geometric mean).
SPEEDUP_FLOOR = 3.0

#: Batch size for ``translate_slice`` replay (one quantum's worth of
#: events is the same order of magnitude).
SLICE_STEP = 8192

#: The headline grid: one row per design of the paper's evaluation --
#: (row label, TLB kind, organization, Figure 7 SPEC workload).  "FA" is
#: the fully-associative organization of the standard design, listed
#: separately because its lookup economics differ from the set-indexed
#: organizations.
REPLAY_CASES: Tuple[Tuple[str, TLBKind, str, str], ...] = (
    ("SA", TLBKind.SA, "4W 32", "povray"),
    ("FA", TLBKind.SA, "FA 32", "povray"),
    ("SP", TLBKind.SP, "4W 128", "xalancbmk"),
    ("RF", TLBKind.RF, "4W 32", "cactusADM"),
)

#: Non-headline context rows: miss-dominated replays where the walk and
#: the (shared) LRU victim scan bound the achievable speedup.
CONTEXT_CASES: Tuple[Tuple[str, TLBKind, str, str], ...] = (
    ("SA", TLBKind.SA, "FA 32", "omnetpp"),
)

#: End-to-end Figure 7 cells (design, organization, scenario label).
CELL_CASES: Tuple[Tuple[TLBKind, str, str], ...] = (
    (TLBKind.SA, "4W 32", "RSA+povray"),
    (TLBKind.RF, "4W 32", "SecRSA+omnetpp"),
)


class CounterDivergence(AssertionError):
    """Fast-path counters differed from the reference -- no speedup is
    reported for a run that did not do the same work."""


def _make_case_tlb(kind: TLBKind, label: str, secure: bool = False) -> BaseTLB:
    config = config_by_label(label)
    victim_ways = max(config.ways // 2, 1) if kind is TLBKind.SP else None
    return make_tlb(
        kind,
        config,
        victim_asid=RSA_ASID if secure else -1,
        victim_ways=victim_ways,
    )


def _replay_reference(
    tlb: BaseTLB, walker: PageTableWalker, vpns, count: int, asid: int
) -> float:
    start = time.perf_counter()
    translate = tlb.translate
    for index in range(count):
        translate(vpns[index], asid, walker)
    return time.perf_counter() - start


def _replay_fast(
    tlb: BaseTLB, walker: PageTableWalker, vpns, count: int, asid: int
) -> float:
    start = time.perf_counter()
    for begin in range(0, count, SLICE_STEP):
        tlb.translate_slice(vpns, begin, min(begin + SLICE_STEP, count), asid, walker)
    return time.perf_counter() - start


def _counters(tlb: BaseTLB) -> Dict[str, int]:
    stats = tlb.stats
    return {
        "accesses": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
    }


def _replay_case(
    label: str,
    kind: TLBKind,
    config_label: str,
    vpns,
    count: int,
    workload: str,
    asid: int,
    headline: bool,
    secure: bool = False,
    region: Optional[Tuple[int, int]] = None,
) -> Dict[str, Any]:
    """Replay one compiled trace through both paths and compare."""
    reference = _make_case_tlb(kind, config_label, secure)
    fast = _make_case_tlb(kind, config_label, secure)
    if region is not None:
        for tlb in (reference, fast):
            tlb.set_secure_region(*region, victim_asid=asid)
    ref_seconds = _replay_reference(reference, make_walker(), vpns, count, asid)
    fast_seconds = _replay_fast(fast, make_walker(), vpns, count, asid)
    ref_counters = _counters(reference)
    fast_counters = _counters(fast)
    if reference.stats != fast.stats:
        raise CounterDivergence(
            f"{label} {config_label} {workload}: "
            f"reference {reference.stats} != fast {fast.stats}"
        )
    return {
        "design": label,
        "kind": kind.value,
        "config": config_label,
        "workload": workload,
        "accesses": count,
        "hit_rate": ref_counters["hits"] / max(ref_counters["accesses"], 1),
        "reference_aps": count / ref_seconds,
        "fast_aps": count / fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "counters": ref_counters,
        "counters_equal": ref_counters == fast_counters,
        "headline": headline,
    }


def _spec_replays(events: int) -> List[Dict[str, Any]]:
    rows = []
    for headline, cases in ((True, REPLAY_CASES), (False, CONTEXT_CASES)):
        for label, kind, config_label, workload in cases:
            trace = CompiledTrace(by_name(workload).events(random.Random(42)))
            count = trace.ensure(events)
            rows.append(
                _replay_case(
                    label,
                    kind,
                    config_label,
                    trace.vpns,
                    min(count, events),
                    workload,
                    asid=2,
                    headline=headline,
                )
            )
    return rows


def _security_replays(runs: int, key_bits: int) -> List[Dict[str, Any]]:
    """The security micro-benchmark tier: the protected RSA trace."""
    key = generate_key(bits=key_bits, seed=7)
    rsa = RSAWorkload(key=key, runs=runs)
    trace = CompiledTrace(rsa.events(random.Random(7)))
    count = trace.ensure(1 << 62)  # RSA traces are finite: compile fully.
    rows = []
    for label, kind, config_label in (
        ("SA", TLBKind.SA, "4W 32"),
        ("SP", TLBKind.SP, "4W 32"),
        ("RF", TLBKind.RF, "4W 32"),
    ):
        rows.append(
            _replay_case(
                label,
                kind,
                config_label,
                trace.vpns,
                count,
                f"rsa-{runs}",
                asid=RSA_ASID,
                headline=False,
                secure=True,
                region=rsa.secure_region() if kind is TLBKind.RF else None,
            )
        )
    return rows


def _cell_cases(rsa_runs: int, spec_instructions: int) -> List[Dict[str, Any]]:
    from .harness import scenario_by_label

    rows = []
    for kind, config_label, scenario_label in CELL_CASES:
        scenario = scenario_by_label(scenario_label)
        timings = {}
        cells = {}
        for fastpath in (False, True):
            settings = PerfSettings(
                spec_instructions=spec_instructions, fastpath=fastpath
            )
            start = time.perf_counter()
            cells[fastpath] = run_cell(
                kind, config_label, scenario, rsa_runs, settings
            )
            timings[fastpath] = time.perf_counter() - start
        if cells[True].results != cells[False].results:
            raise CounterDivergence(
                f"cell {kind.value} {config_label} {scenario_label}: "
                f"fastpath results diverge from reference"
            )
        total = cells[True].total
        rows.append(
            {
                "design": kind.value,
                "config": config_label,
                "scenario": scenario_label,
                "rsa_runs": rsa_runs,
                "instructions": total.instructions,
                "reference_seconds": timings[False],
                "fast_seconds": timings[True],
                "speedup": timings[False] / timings[True],
                "results_equal": True,
            }
        )
    return rows


def _geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def bench(
    quick: bool = False,
    events: Optional[int] = None,
    skip_cells: bool = False,
) -> Dict[str, Any]:
    """Run the bench and return the report.

    ``quick`` shrinks every tier to CI-smoke size (the differential
    checks are just as strict; only the timing resolution suffers).
    Raises :class:`CounterDivergence` if any tier's fast-path counters
    differ from the reference.
    """
    events = events if events is not None else (60_000 if quick else 400_000)
    replay = _spec_replays(events)
    security = _security_replays(
        runs=2 if quick else 10, key_bits=64 if quick else 128
    )
    cells = (
        []
        if skip_cells
        else _cell_cases(
            rsa_runs=3 if quick else 10,
            spec_instructions=30_000 if quick else 150_000,
        )
    )
    headline_rows = [row for row in replay if row["headline"]]
    headline = _geomean([row["speedup"] for row in headline_rows])
    return {
        "quick": quick,
        "events": events,
        "headline": {
            "geomean_speedup": headline,
            "floor": SPEEDUP_FLOOR,
            "meets_floor": headline >= SPEEDUP_FLOOR,
            "per_design": {
                row["design"]: row["speedup"] for row in headline_rows
            },
        },
        "replay": replay,
        "security": security,
        "cells": cells,
        "counters_verified": True,
    }


def history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """The compact per-run record archived in the artifact's history.

    ``BENCH_fastpath.json`` keeps a ``history`` list so the headline
    trend survives overwrites: each ``--out`` write appends the new
    run's summary to whatever history the previous artifact carried
    (the committed first entry is the 3.69x full-size headline the
    fast-path PR landed with).
    """
    headline = report["headline"]
    return {
        "geomean_speedup": headline["geomean_speedup"],
        "per_design": dict(headline["per_design"]),
        "meets_floor": headline["meets_floor"],
        "quick": report["quick"],
        "events": report["events"],
        "counters_verified": report["counters_verified"],
    }


def with_history(
    report: Dict[str, Any], previous: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Attach ``previous``'s history plus this run's entry to ``report``."""
    history: List[Dict[str, Any]] = []
    if isinstance(previous, dict):
        carried = previous.get("history", [])
        if isinstance(carried, list):
            history.extend(carried)
    report = dict(report)
    report["history"] = history + [history_entry(report)]
    return report


def format_report(report: Dict[str, Any]) -> str:
    """Render the bench report as the CLI's text output."""
    lines = [
        f"{'tier':9} {'design':6} {'config':8} {'workload':12} "
        f"{'hit%':>6} {'ref acc/s':>12} {'fast acc/s':>12} {'speedup':>8}"
    ]
    lines.append("-" * 80)
    for tier, rows in (("replay", report["replay"]),
                       ("security", report["security"])):
        for row in rows:
            marker = "*" if row.get("headline") else " "
            lines.append(
                f"{tier:9} {row['design']:5}{marker} {row['config']:8} "
                f"{row['workload']:12} {row['hit_rate']:>6.1%} "
                f"{row['reference_aps']:>12,.0f} {row['fast_aps']:>12,.0f} "
                f"{row['speedup']:>7.2f}x"
            )
    for row in report["cells"]:
        lines.append(
            f"{'cell':9} {row['design']:6} {row['config']:8} "
            f"{row['scenario']:12} {'':>6} "
            f"{row['reference_seconds']:>11.2f}s {row['fast_seconds']:>11.2f}s "
            f"{row['speedup']:>7.2f}x"
        )
    headline = report["headline"]
    lines.append("")
    lines.append(
        f"headline (geomean over *): {headline['geomean_speedup']:.2f}x"
        f" (floor {headline['floor']:.1f}x:"
        f" {'met' if headline['meets_floor'] else 'NOT MET'})"
    )
    lines.append("counters: all tiers reference-equal")
    return "\n".join(lines)
