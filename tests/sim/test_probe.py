"""The shared prime/probe helper the attack modules build on."""

from __future__ import annotations

from repro.mmu import PageTableWalker
from repro.sim import MemorySystem, SetProber, pages_for_set
from repro.tlb import SetAssociativeTLB, TLBConfig

ATTACKER = 2
VICTIM = 1


def build(entries: int = 32, ways: int = 8) -> MemorySystem:
    tlb = SetAssociativeTLB(TLBConfig(entries=entries, ways=ways))
    return MemorySystem(tlb, PageTableWalker(auto_map=True))


def test_pages_for_set_covers_one_set_exactly() -> None:
    nsets, ways = 4, 8
    pages = pages_for_set(0x600, 2, nsets, ways)
    assert len(pages) == ways
    assert all(vpn % nsets == 2 for vpn in pages)
    assert len(set(pages)) == ways


def test_for_set_defaults_to_the_tlb_geometry() -> None:
    memory = build()
    prober = SetProber.for_set(memory, 0x600, 1, ATTACKER)
    config = memory.tlb.config
    assert prober.pages == pages_for_set(0x600, 1, config.sets, config.ways)


def test_prime_fills_probe_hits_when_undisturbed() -> None:
    memory = build()
    prober = SetProber.for_set(memory, 0x600, 0, ATTACKER)
    prober.prime()
    outcome = prober.probe()
    assert outcome.hits and not outcome.evicted
    assert outcome.misses == 0
    assert outcome.pages == len(prober.pages)


def test_probe_detects_victim_eviction() -> None:
    memory = build()
    nsets = memory.tlb.config.sets
    prober = SetProber.for_set(memory, 0x600, 0, ATTACKER)
    prober.prime()
    # The victim touches a page in the monitored set, evicting one way.
    memory.translate(0x100 - (0x100 % nsets), VICTIM)
    outcome = prober.probe()
    assert outcome.evicted
    # One eviction cascades under LRU: each probe miss refills over the
    # next page to be probed, so the whole set reads as missed.
    assert outcome.misses == outcome.pages


def test_probe_misses_refill_so_next_round_self_primes() -> None:
    memory = build()
    prober = SetProber.for_set(memory, 0x600, 0, ATTACKER)
    prober.prime()
    first = prober.probe()
    second = prober.probe()
    assert first.misses == 0 and second.misses == 0


def test_prime_and_probe_report_cycles() -> None:
    memory = build()
    prober = SetProber.for_set(memory, 0x600, 0, ATTACKER)
    prime_cycles = prober.prime()
    assert prime_cycles > 0
    outcome = prober.probe()
    assert outcome.cycles == len(prober.pages) * memory.tlb.config.hit_latency
