"""Security benchmarks and the Table 4 evaluation (Sections 5.1 and 5.3).

* :mod:`repro.security.benchgen` -- generates a runnable micro security
  benchmark (Figure 6 style) from any three-step vulnerability;
* :mod:`repro.security.theory` -- the closed-form p1/p2/capacity values of
  Section 5.3 for the SA, SP and RF designs;
* :mod:`repro.security.evaluate` -- the 24 x 1000-trial simulation harness
  that regenerates Table 4 and the headline defence counts (SA 10/24,
  SP 14/24, RF 24/24).
"""

from .benchgen import (
    BenchmarkLayout,
    alias_page,
    generate,
    layout_for_partitioned_tlb,
    region_size_for,
    secret_page,
)
from .evaluate import (
    EvaluationConfig,
    SecurityEvaluator,
    VulnerabilityResult,
    defended_counts,
    extended_cells,
    format_table4,
    table4_cells,
)
from .kinds import TLBKind, make_hierarchy, make_tlb, make_two_level_tlb
from .theory import TheoreticalModel

__all__ = [
    "BenchmarkLayout",
    "EvaluationConfig",
    "SecurityEvaluator",
    "TLBKind",
    "TheoreticalModel",
    "VulnerabilityResult",
    "alias_page",
    "defended_counts",
    "extended_cells",
    "format_table4",
    "generate",
    "table4_cells",
    "layout_for_partitioned_tlb",
    "make_hierarchy",
    "make_tlb",
    "make_two_level_tlb",
    "region_size_for",
    "secret_page",
]
