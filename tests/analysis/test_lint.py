"""The invariant linter: each rule against bad fixtures, allowlists,
waivers, and a clean run over the shipped tree."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.lint import LINT_RULES, lint_source, run_lint


def rules_hit(source: str, path: str = "repro/attacks/example.py"):
    return [finding.rule for finding in lint_source(source, path=path)]


class TestFacadeTLBConstruction:
    def test_direct_construction_is_flagged(self):
        source = "tlb = SetAssociativeTLB(config)\n"
        assert rules_hit(source) == ["facade-tlb-construction"]

    def test_every_design_class_is_guarded(self):
        for name in (
            "SetAssociativeTLB",
            "StaticPartitionTLB",
            "RandomFillTLB",
            "DynamicPartitionTLB",
            "TwoLevelTLB",
            "TLBHierarchy",
        ):
            assert rules_hit(f"x = {name}(config)\n"), name

    def test_make_hierarchy_is_the_sanctioned_multi_level_path(self):
        # The factory call itself is clean; direct TLBHierarchy
        # construction outside repro.tlb / the kinds factories is not.
        assert rules_hit("tlb = make_hierarchy(spec)\n") == []
        assert rules_hit("tlb = TLBHierarchy(levels)\n") == [
            "facade-tlb-construction"
        ]
        assert rules_hit(
            "tlb = TLBHierarchy(levels)\n",
            path="repro/security/kinds.py",
        ) == []

    def test_construction_inside_repro_tlb_is_allowed(self):
        source = "tlb = SetAssociativeTLB(config)\n"
        assert rules_hit(source, path="repro/tlb/factory.py") == []

    def test_the_registered_factory_module_is_allowed(self):
        source = "tlb = RandomFillTLB(config)\n"
        assert rules_hit(source, path="repro/security/kinds.py") == []

    def test_factory_calls_are_not_flagged(self):
        source = "tlb = make_tlb(TLBKind.SA, config)\n"
        assert rules_hit(source) == []


class TestFacadeWalkerConstruction:
    def test_direct_construction_is_flagged(self):
        source = "walker = PageTableWalker(auto_map=True)\n"
        assert rules_hit(source) == ["facade-walker-construction"]

    def test_repro_mmu_and_the_memory_system_are_allowed(self):
        source = "walker = PageTableWalker()\n"
        assert rules_hit(source, path="repro/mmu/walker.py") == []
        assert rules_hit(source, path="repro/sim/system.py") == []


class TestDeterministicSim:
    def test_global_random_calls_are_flagged(self):
        assert rules_hit("x = random.random()\n") == ["deterministic-sim"]
        assert rules_hit("x = random.choice(items)\n") == [
            "deterministic-sim"
        ]

    def test_wall_clock_reads_are_flagged(self):
        assert rules_hit("t = time.time()\n") == ["deterministic-sim"]
        assert rules_hit("t = time.perf_counter()\n") == [
            "deterministic-sim"
        ]
        assert rules_hit("t = datetime.now()\n") == ["deterministic-sim"]

    def test_seedless_random_instance_is_flagged(self):
        assert rules_hit("rng = random.Random()\n") == ["deterministic-sim"]
        assert rules_hit("rng = Random()\n") == ["deterministic-sim"]

    def test_seeded_random_instance_is_fine(self):
        assert rules_hit("rng = random.Random(7)\n") == []

    def test_bound_rng_methods_are_fine(self):
        assert rules_hit("x = rng.random()\n") == []

    def test_the_runner_layer_is_exempt(self):
        source = "t = time.time()\n"
        assert rules_hit(source, path="repro/runner/telemetry.py") == []

    def test_the_serve_layer_is_exempt(self):
        source = "t = time.time()\n"
        assert rules_hit(source, path="repro/serve/app.py") == []


class TestSimIsolation:
    def test_socket_use_in_sim_code_is_flagged(self):
        assert rules_hit("s = socket.socket()\n") == ["sim-isolation"]
        assert rules_hit(
            "s = socket.create_connection(('h', 80))\n"
        ) == ["sim-isolation"]

    def test_asyncio_servers_in_sim_code_are_flagged(self):
        source = "server = asyncio.start_server(cb, host, port)\n"
        assert rules_hit(source) == ["sim-isolation"]

    def test_the_serve_package_is_allowed(self):
        assert rules_hit(
            "s = socket.socket()\n", path="repro/serve/app.py"
        ) == []
        assert rules_hit(
            "server = asyncio.start_server(cb, host, port)\n",
            path="repro/serve/app.py",
        ) == []

    def test_the_runner_is_not_exempt_from_isolation(self):
        assert rules_hit(
            "s = socket.socket()\n", path="repro/runner/scheduler.py"
        ) == ["sim-isolation"]

    def test_benign_asyncio_calls_are_fine(self):
        assert rules_hit("asyncio.run(main())\n") == []
        assert rules_hit("lock = asyncio.Lock()\n") == []


class TestFrozenEventDataclasses:
    def test_unfrozen_event_dataclass_is_flagged(self):
        source = (
            "@dataclass\n"
            "class AccessEvent:\n"
            "    vpn: int\n"
        )
        assert rules_hit(source) == ["frozen-event-dataclasses"]

    def test_frozen_without_slots_is_flagged(self):
        source = (
            "@dataclass(frozen=True)\n"
            "class AccessEvent:\n"
            "    vpn: int\n"
        )
        assert rules_hit(source) == ["frozen-event-dataclasses"]

    def test_frozen_slotted_event_dataclass_is_fine(self):
        source = (
            "@dataclass(frozen=True, slots=True)\n"
            "class AccessEvent:\n"
            "    vpn: int\n"
        )
        assert rules_hit(source) == []

    def test_non_dataclass_event_class_is_ignored(self):
        source = "class FakeEvent:\n    pass\n"
        assert rules_hit(source) == []


class TestNoSnapshotMutation:
    def test_assignment_into_a_snapshot_is_flagged(self):
        source = "tlb.stats.snapshot().misses = 0\n"
        assert rules_hit(source) == ["no-snapshot-mutation"]

    def test_subscript_assignment_into_entries_is_flagged(self):
        source = "tlb.entries()[0].vpn = 0xDEAD\n"
        assert "no-snapshot-mutation" in rules_hit(source)

    def test_mutator_call_on_a_snapshot_is_flagged(self):
        source = "tlb.entries()[0].invalidate()\n"
        assert rules_hit(source) == ["no-snapshot-mutation"]

    def test_mutating_live_state_is_fine(self):
        assert rules_hit("entry.invalidate()\n") == []
        assert rules_hit("snapshot = tlb.entries()\n") == []


class TestCertifiableHierarchy:
    """Hierarchies come from declarative specs, never raw level lists,
    so `python -m repro certify` can reach every design."""

    def test_literal_level_list_to_the_factory_is_flagged(self):
        source = "tlb = make_hierarchy([l1, l2])\n"
        assert rules_hit(source) == ["certifiable-hierarchy"]
        assert rules_hit("tlb = make_hierarchy(levels=[l1, l2])\n") == [
            "certifiable-hierarchy"
        ]

    def test_literal_level_list_to_the_constructor_is_flagged(self):
        # Flagged even where facade construction itself is sanctioned.
        source = "tlb = TLBHierarchy([l1, l2])\n"
        assert "certifiable-hierarchy" in rules_hit(source)
        assert rules_hit(source, path="repro/tlb/other.py") == []

    def test_inline_spec_outside_the_catalogs_is_flagged(self):
        source = "spec = HierarchySpec(levels=(l1, l2))\n"
        assert rules_hit(source) == ["certifiable-hierarchy"]

    def test_spec_passing_is_fine(self):
        assert rules_hit("tlb = make_hierarchy(spec)\n") == []
        assert rules_hit(
            "spec = HierarchySpec.from_dict(payload)\n"
        ) == []
        assert rules_hit(
            "spec = HierarchySpec(levels=levels)\n"
        ) == []

    def test_the_spec_catalogs_are_allowed(self):
        source = "spec = HierarchySpec(levels=(l1, l2))\n"
        for path in (
            "repro/tlb/spec.py",
            "repro/ablations/hierarchy.py",
            "repro/analysis/certify_gate.py",
        ):
            assert rules_hit(source, path=path) == [], path


class TestAllocationFreeRunKernel:
    def kernel(self, body: str) -> str:
        return f"def _run_miss_fast(self, vpn, asid, translator):\n{body}"

    def test_result_construction_is_flagged(self):
        source = self.kernel("    return AccessResult(hit=False)\n")
        assert rules_hit(source) == ["allocation-free-run-kernel"]

    def test_event_construction_is_flagged(self):
        source = self.kernel("    bus.publish(TLBAccessEvent(vpn=vpn))\n")
        assert rules_hit(source) == ["allocation-free-run-kernel"]

    def test_snapshot_is_flagged(self):
        source = self.kernel("    state = self.stats.snapshot()\n")
        assert rules_hit(source) == ["allocation-free-run-kernel"]

    def test_comprehensions_are_flagged(self):
        source = self.kernel("    keys = [e.vpn for e in entries]\n")
        assert rules_hit(source) == ["allocation-free-run-kernel"]

    def test_loose_tuple_construction_is_flagged(self):
        source = self.kernel("    pair = (vpn, asid)\n")
        assert rules_hit(source) == ["allocation-free-run-kernel"]

    def test_non_allocating_tuple_positions_are_fine(self):
        source = self.kernel(
            "    cycles, misses = probe(vpn)\n"
            "    entry = index.get((vpn, asid, 0))\n"
            "    index_get = index.get\n"
            "    entry = index_get((vpn, asid, 0))\n"
            "    index.pop((vpn, asid, 0), None)\n"
            "    index[(vpn, asid, 0)] = entry\n"
            "    return cycles, misses\n"
        )
        assert rules_hit(source) == []

    def test_only_kernel_functions_are_guarded(self):
        source = (
            "def _handle_miss(self, vpn, asid, translator):\n"
            "    return AccessResult(hit=False)\n"
        )
        assert rules_hit(source) == []

    def test_the_numpy_backend_is_allowed(self):
        source = self.kernel("    pair = (vpn, asid)\n")
        assert rules_hit(source, path="repro/sim/kernel_np.py") == []


class TestWaivers:
    def test_a_matching_waiver_suppresses_the_finding(self):
        source = (
            "tlb = SetAssociativeTLB(config)"
            "  # invariant: allow facade-tlb-construction\n"
        )
        assert rules_hit(source) == []

    def test_a_waiver_for_another_rule_does_not(self):
        source = (
            "tlb = SetAssociativeTLB(config)"
            "  # invariant: allow deterministic-sim\n"
        )
        assert rules_hit(source) == ["facade-tlb-construction"]


class TestRunLint:
    def test_rule_registry_has_the_documented_names(self):
        assert [rule.name for rule in LINT_RULES] == [
            "facade-tlb-construction",
            "facade-walker-construction",
            "deterministic-sim",
            "sim-isolation",
            "frozen-event-dataclasses",
            "no-snapshot-mutation",
            "certifiable-hierarchy",
            "allocation-free-run-kernel",
        ]

    def test_the_shipped_tree_is_clean(self):
        package_root = Path(repro.__file__).parent
        assert run_lint([package_root]) == []

    def test_findings_are_sorted_and_described(self):
        source = (
            "walker = PageTableWalker()\n"
            "tlb = SetAssociativeTLB(config)\n"
        )
        findings = lint_source(source, path="repro/attacks/example.py")
        assert [f.line for f in findings] == [1, 2]
        assert "example.py:1" in findings[0].describe()
