"""Content-addressed on-disk cache for experiment cell results.

A cell's cache key is the SHA-256 of its complete identity: experiment
name, unit key, canonicalized parameters, shard seed, and a fingerprint of
the :mod:`repro` source tree.  Re-running an unchanged configuration hits
the cache; changing a parameter, a seed, or any line of code under
``src/repro`` misses and recomputes.

Values are arbitrary picklable result objects (the same objects the serial
path produces), stored one file per cell under ``<root>/<aa>/<hash>.pkl``
next to a small JSON sidecar of provenance metadata for inspection.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from .registry import Unit

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """A digest of every ``.py`` file under the :mod:`repro` package.

    Any source change -- a fixed bug, a new parameter default -- must
    invalidate cached results, since cached values are only as trustworthy
    as the code that computed them.
    """
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def unit_cache_key(unit: Unit, code_version: str) -> str:
    """The stable content address of one cell's result."""
    identity = json.dumps(
        {
            "experiment": unit.experiment,
            "key": unit.key,
            "params": dict(unit.params),
            "seed": unit.seed,
            "code_version": code_version,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(identity.encode()).hexdigest()


#: Per-process staging-name counter; see :func:`_atomic_write`.
_tmp_serial = itertools.count()


def _atomic_write(path: Path, data: Union[bytes, str]) -> None:
    """Write-then-rename so concurrent readers and writers never collide.

    The staging name embeds the PID and a per-process serial: parallel
    writers racing on the same key (two workers recomputing one cell, two
    ``run-all`` invocations sharing a cache) each stage privately and the
    last rename wins whole, instead of interleaving writes into one shared
    ``.tmp`` file.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{next(_tmp_serial)}.tmp")
    if isinstance(data, bytes):
        tmp.write_bytes(data)
    else:
        tmp.write_text(data)
    tmp.replace(path)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found on disk but unreadable (torn/corrupt); treated as
    #: misses and repaired by the next store.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """Queryable counter snapshot (run-all summaries, /v1/metrics)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }


class ResultCache:
    """The on-disk result store (see module docstring)."""

    def __init__(
        self,
        root: Path | str = DEFAULT_CACHE_DIR,
        code_version: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.code_version = (
            code_version if code_version is not None else code_fingerprint()
        )
        self.stats = CacheStats()

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, unit: Unit) -> Tuple[bool, Any]:
        """Look one cell up; returns ``(hit, value)``."""
        path = self._path_for(unit_cache_key(unit, self.code_version))
        if path.is_file():
            try:
                with path.open("rb") as handle:
                    record = pickle.load(handle)
                value = record["value"]
            except Exception:
                # A truncated or unreadable entry (e.g. a crashed writer)
                # is treated as a miss and overwritten on the next store.
                self.stats.corrupt += 1
            else:
                self.stats.hits += 1
                return True, value
        self.stats.misses += 1
        return False, None

    def put(self, unit: Unit, value: Any, elapsed: float = 0.0) -> None:
        key = unit_cache_key(unit, self.code_version)
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "experiment": unit.experiment,
            "key": unit.key,
            "params": dict(unit.params),
            "seed": unit.seed,
            "code_version": self.code_version,
            "elapsed": elapsed,
            "value": value,
        }
        _atomic_write(
            path, pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        )
        sidecar = {
            k: record[k]
            for k in ("experiment", "key", "params", "seed", "code_version",
                      "elapsed")
        }
        _atomic_write(
            path.with_suffix(".json"),
            json.dumps(sidecar, sort_keys=True, default=str) + "\n",
        )
        self.stats.stores += 1
