#!/usr/bin/env python3
"""The security/performance/area trade-off of the three designs.

A reduced-scale rendition of the paper's evaluation triangle:

* security -- the Table 4 harness at reduced trial counts (defended rows);
* performance -- a Figure 7 slice (SecRSA alongside omnetpp and povray);
* area -- the Table 5 model's overhead percentages.

Run with:  python examples/secure_tlb_tradeoffs.py
"""

from repro.perf import AreaModel, PerfSettings, Scenario, run_cell
from repro.security import (
    EvaluationConfig,
    SecurityEvaluator,
    TLBKind,
    defended_counts,
)
from repro.workloads.spec import OMNETPP, POVRAY


def security_summary() -> dict:
    evaluator = SecurityEvaluator(EvaluationConfig(trials=40))
    return defended_counts(evaluator.evaluate_table4())


def performance_summary() -> dict:
    settings = PerfSettings(spec_instructions=80_000, key_bits=64)
    rows = {}
    for kind in (TLBKind.SA, TLBKind.SP, TLBKind.RF):
        mpki = []
        ipc = []
        for spec in (POVRAY, OMNETPP):
            cell = run_cell(
                kind,
                "4W 32",
                Scenario(secure=True, spec=spec),
                rsa_runs=10,
                settings=settings,
            )
            mpki.append(cell.total.mpki)
            ipc.append(cell.total.ipc)
        rows[kind] = (sum(ipc) / len(ipc), sum(mpki) / len(mpki))
    return rows


def main() -> None:
    print("== security: Table 2 rows defended (24 x 80-trial harness) ==")
    for kind, count in security_summary().items():
        print(f"  {kind.value:3} TLB: {count}/24 vulnerabilities defended")

    print("\n== performance: SecRSA + SPEC on a 4-way 32-entry TLB ==")
    perf = performance_summary()
    sa_ipc, sa_mpki = perf[TLBKind.SA]
    for kind, (ipc, mpki) in perf.items():
        print(
            f"  {kind.value:3} TLB: IPC {ipc:.3f}  MPKI {mpki:7.2f}"
            f"  (x{mpki / sa_mpki:.2f} vs SA)"
        )

    print("\n== area: Table 5 model, overhead vs same-shape standard TLB ==")
    area = AreaModel()
    for kind in (TLBKind.SP, TLBKind.RF):
        luts, registers = area.overhead_fraction(kind, "4W 32")
        print(
            f"  {kind.value:3} TLB: {luts:+.1%} Slice LUTs, "
            f"{registers:+.1%} Slice Registers"
        )

    print(
        "\nThe paper's conclusion reproduces: SP is cheap but halves the\n"
        "effective TLB; RF defends everything at near-standard performance\n"
        "for a few percent of extra logic."
    )


if __name__ == "__main__":
    main()
