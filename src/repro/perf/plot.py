"""Terminal bar charts for the Figure 7 series.

Renders IPC and MPKI series in the layout of the paper's grouped bar
figures -- one group per scenario, one bar per TLB organization -- using
plain text so the harness output is self-contained.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .harness import Figure7Cell

BAR_WIDTH = 40


def _scale(values: Sequence[float]) -> float:
    peak = max(values, default=0.0)
    return peak if peak > 0 else 1.0


def bar_chart(
    title: str,
    rows: Sequence[Tuple[str, float]],
    unit: str = "",
    width: int = BAR_WIDTH,
) -> str:
    """One labelled horizontal bar chart."""
    lines = [title, "-" * len(title)]
    scale = _scale([value for _label, value in rows])
    for label, value in rows:
        filled = int(round(width * value / scale))
        lines.append(
            f"{label:>14} |{'#' * filled}{' ' * (width - filled)}| "
            f"{value:.3f}{unit}"
        )
    return "\n".join(lines)


def figure7_chart(cells: Sequence[Figure7Cell], metric: str = "mpki") -> str:
    """A Figure 7-style chart: scenario groups, one bar per (design, config).

    ``metric`` is ``"mpki"`` (Figures 7d-f) or ``"ipc"`` (Figures 7a-c).
    """
    if metric not in ("mpki", "ipc"):
        raise ValueError("metric must be 'mpki' or 'ipc'")
    by_scenario: Dict[str, List[Figure7Cell]] = {}
    for cell in cells:
        by_scenario.setdefault(cell.scenario.label, []).append(cell)

    charts = []
    for scenario_label, group in by_scenario.items():
        rows = [
            (
                f"{cell.kind.value} {cell.config_label}",
                getattr(cell.total, metric),
            )
            for cell in group
        ]
        charts.append(
            bar_chart(
                f"{metric.upper()} -- {scenario_label}",
                rows,
            )
        )
    return "\n\n".join(charts)
