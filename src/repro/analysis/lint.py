"""The host invariant linter: repo architecture rules as AST checks.

The simulator's correctness arguments lean on a handful of structural
invariants that ordinary linters cannot express.  Each is a named rule
over Python ASTs:

``facade-tlb-construction``
    TLB designs are built only inside ``repro.tlb`` and the registered
    factories of ``repro.security.kinds``; every drive loop goes through
    ``make_tlb`` (flat designs) or ``make_hierarchy`` (the one sanctioned
    multi-level constructor -- ``make_two_level_tlb`` is its thin
    compatibility wrapper) so experiments stay comparable and observable
    through the :class:`repro.sim.MemorySystem` facade.

``facade-walker-construction``
    ``PageTableWalker`` is built only inside ``repro.mmu`` and the
    :class:`repro.sim.MemorySystem` default; everything else uses
    ``repro.mmu.make_walker``.

``deterministic-sim``
    Simulation code may not consult wall clocks or the process-global
    RNG (``time.time``, ``random.random``, seedless ``random.Random()``,
    ...): every experiment must be a pure function of its seeds.  The
    ``repro.runner`` orchestration layer and the ``repro.serve`` service
    are exempt -- telemetry timestamps, quota clocks, and job timings
    never feed simulation state.

``sim-isolation``
    Simulation and analysis code may not open sockets or start network
    servers (``socket.socket``, ``asyncio.start_server``, ...): network
    I/O lives in ``repro.serve`` alone, so every other module stays a
    pure library that cannot leak results -- or nondeterminism -- over a
    wire.

``frozen-event-dataclasses``
    Event record dataclasses (``*Event``) stay ``frozen=True, slots=True``:
    observers must not be able to mutate the stream other observers see
    (frozen), and per-event ``__dict__`` allocations would dominate traced
    runs (slots).

``no-snapshot-mutation``
    Values returned by ``snapshot()``/``entries()`` are isolated copies
    for inspection; assigning to them (or calling their mutators) is
    always a bug -- the live structure will not change.

``certifiable-hierarchy``
    Multi-level designs are never assembled from raw level lists:
    ``make_hierarchy``/``TLBHierarchy`` take a declarative
    :class:`repro.tlb.HierarchySpec`, and new specs are defined only in
    the spec catalogs (``repro.tlb``, the ablations sweep,
    the certify gate's flat designs).  Every hierarchy in the codebase
    is therefore reachable by ``python -m repro certify`` -- certifiable
    by construction.

``allocation-free-run-kernel``
    The batched translation kernels (``translate_slice``,
    ``translate_runs``, ``_oracle_slice``, ``_run_miss_fast``,
    ``_victim_fast``, ``_fill_fast``, ``_settle_touch``) are the inner
    loops the speedup headline stands on: no dataclass or event
    construction (``TLBEntry``/``AccessResult``/``WalkResult``/
    ``*Event``), no ``snapshot()`` calls, no comprehensions, and tuples
    only where they do not allocate per access (unpacking targets,
    return statements, index keys, and ``.get``/``.pop`` arguments).
    The compile-tier pre-passes (``ReuseOracle.extend``,
    ``_oracle_engage``, ``_rebuild_victim_queue``) are deliberately
    outside the guarded set -- they run once per trace or per rebuild,
    not per access -- and the numpy backend module is allow-listed
    (vectorized array expressions allocate wholesale, not per event).

A finding can be waived on its own line with a trailing
``# invariant: allow <rule-name>`` comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

#: The TLB design classes the facade rule guards.
TLB_CLASSES = frozenset(
    {
        "SetAssociativeTLB",
        "StaticPartitionTLB",
        "RandomFillTLB",
        "DynamicPartitionTLB",
        "TwoLevelTLB",
        "TLBHierarchy",
    }
)

#: Process-global RNG entry points (all mutate or read shared hidden state).
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "random",
        "randrange",
        "randint",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "getrandbits",
        "uniform",
        "gauss",
    }
)

#: Wall-clock reads that would make runs irreproducible.
WALL_CLOCK_FUNCTIONS = frozenset(
    {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
)

#: ``socket.*`` / ``asyncio.*`` entry points that open network endpoints.
NETWORK_FUNCTIONS = frozenset(
    {
        "socket",
        "socketpair",
        "create_connection",
        "create_server",
        "start_server",
        "start_unix_server",
        "open_connection",
        "open_unix_connection",
    }
)

#: Methods that mutate a TLB entry in place.
ENTRY_MUTATORS = frozenset({"invalidate", "fill", "touch"})

#: Methods whose return values are isolated copies.
SNAPSHOT_METHODS = frozenset({"snapshot", "entries"})

WAIVER_MARKER = "invariant: allow"


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class: subclasses visit one parsed module."""

    name: str = ""
    description: str = ""
    #: Module-relative path prefixes/files where the rule does not apply.
    allowed_prefixes: Tuple[str, ...] = ()
    allowed_files: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if relpath in self.allowed_files:
            return False
        return not any(
            relpath.startswith(prefix) for prefix in self.allowed_prefixes
        )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, relpath: str, message: str) -> LintFinding:
        return LintFinding(
            rule=self.name,
            path=relpath,
            line=getattr(node, "lineno", 0),
            message=message,
        )


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class FacadeTLBConstruction(Rule):
    name = "facade-tlb-construction"
    description = (
        "TLB designs are constructed only in repro.tlb and the"
        " repro.security.kinds factories (use make_tlb, or make_hierarchy"
        " for multi-level designs)"
    )
    allowed_prefixes = ("repro/tlb/",)
    allowed_files = ("repro/security/kinds.py",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _call_name(node) in TLB_CLASSES:
                yield self.finding(
                    node,
                    relpath,
                    f"direct {_call_name(node)}(...) construction;"
                    " go through the registered factories in"
                    " repro.security.kinds",
                )


class FacadeWalkerConstruction(Rule):
    name = "facade-walker-construction"
    description = (
        "PageTableWalker is constructed only in repro.mmu and the"
        " MemorySystem default (use repro.mmu.make_walker)"
    )
    allowed_prefixes = ("repro/mmu/",)
    allowed_files = ("repro/sim/system.py",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) == "PageTableWalker"
            ):
                yield self.finding(
                    node,
                    relpath,
                    "direct PageTableWalker(...) construction; use"
                    " repro.mmu.make_walker",
                )


class DeterministicSim(Rule):
    name = "deterministic-sim"
    description = (
        "no wall-clock or process-global RNG calls in simulation paths"
        " (thread a seeded random.Random through instead)"
    )
    #: Orchestration telemetry and the service's quota/job clocks stamp
    #: real time; simulation never reads it.
    allowed_prefixes = ("repro/runner/", "repro/serve/")
    #: The regression bench is a stopwatch around the simulator, not a
    #: simulation path: its perf_counter reads never feed simulated state.
    allowed_files = ("repro/perf/bench.py",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                module, attr = func.value.id, func.attr
                if module == "random" and attr in GLOBAL_RANDOM_FUNCTIONS:
                    yield self.finding(
                        node,
                        relpath,
                        f"random.{attr}() uses the process-global RNG;"
                        " accept a seeded random.Random instead",
                    )
                elif module == "time" and attr in WALL_CLOCK_FUNCTIONS:
                    yield self.finding(
                        node,
                        relpath,
                        f"time.{attr}() reads the wall clock inside a"
                        " simulation path",
                    )
                elif module == "datetime" and attr in ("now", "utcnow"):
                    yield self.finding(
                        node,
                        relpath,
                        f"datetime.{attr}() reads the wall clock inside a"
                        " simulation path",
                    )
            if _call_name(node) == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    node,
                    relpath,
                    "Random() without a seed draws OS entropy; pass an"
                    " explicit seed",
                )


class SimIsolation(Rule):
    name = "sim-isolation"
    description = (
        "no sockets or network servers outside repro.serve; simulation"
        " stays a pure library"
    )
    #: The service is the one sanctioned network boundary.
    allowed_prefixes = ("repro/serve/",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("socket", "asyncio")
                and func.attr in NETWORK_FUNCTIONS
            ):
                yield self.finding(
                    node,
                    relpath,
                    f"{func.value.id}.{func.attr}() opens a network"
                    " endpoint outside repro.serve; the service is the"
                    " only sanctioned network boundary",
                )


class FrozenEventDataclasses(Rule):
    name = "frozen-event-dataclasses"
    description = (
        "event record dataclasses (*Event) must be frozen=True, slots=True"
    )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Event"):
                continue
            decorated = False
            frozen = False
            slots = False
            for decorator in node.decorator_list:
                if (
                    isinstance(decorator, ast.Name)
                    and decorator.id == "dataclass"
                ):
                    decorated = True
                elif (
                    isinstance(decorator, ast.Call)
                    and _call_name(decorator) == "dataclass"
                ):
                    decorated = True
                    for keyword in decorator.keywords:
                        if (
                            isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            if keyword.arg == "frozen":
                                frozen = True
                            elif keyword.arg == "slots":
                                slots = True
            if decorated and not (frozen and slots):
                missing = ", ".join(
                    flag
                    for flag, present in (("frozen=True", frozen),
                                          ("slots=True", slots))
                    if not present
                )
                yield self.finding(
                    node,
                    relpath,
                    f"event dataclass {node.name} must be @dataclass"
                    f"(frozen=True, slots=True) (missing {missing}):"
                    " observers share the stream, and events are the"
                    " hot-path allocation",
                )


def _chain_calls_snapshot(node: ast.AST) -> bool:
    """Does the expression chain under ``node`` call snapshot()/entries()?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and _call_name(child) in SNAPSHOT_METHODS:
            if isinstance(child.func, ast.Attribute):
                return True
    return False


class NoSnapshotMutation(Rule):
    name = "no-snapshot-mutation"
    description = (
        "snapshot()/entries() return isolated copies; mutating them is"
        " always a bug"
    )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            targets: Sequence[ast.expr] = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = (node.target,)
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and _chain_calls_snapshot(target.value):
                    yield self.finding(
                        node,
                        relpath,
                        "assignment into a snapshot()/entries() copy has"
                        " no effect on the live structure",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ENTRY_MUTATORS
                and _chain_calls_snapshot(node.func.value)
            ):
                yield self.finding(
                    node,
                    relpath,
                    f"{node.func.attr}() on a snapshot()/entries() copy"
                    " mutates dead state",
                )


def _literal_levels_argument(node: ast.Call) -> bool:
    """Does the call pass a raw list/tuple as its levels?"""
    candidates: List[ast.expr] = []
    if node.args:
        candidates.append(node.args[0])
    for keyword in node.keywords:
        if keyword.arg == "levels":
            candidates.append(keyword.value)
    return any(
        isinstance(candidate, (ast.List, ast.Tuple))
        for candidate in candidates
    )


class CertifiableHierarchy(Rule):
    name = "certifiable-hierarchy"
    description = (
        "hierarchies are never built from raw level lists: pass a"
        " HierarchySpec to make_hierarchy, and define new specs only in"
        " the declarative catalogs so every design stays certifiable by"
        " `python -m repro certify`"
    )
    #: The spec type and the live constructor live in repro.tlb; the
    #: sanctioned factory and the two spec catalogs (the sweep grid and
    #: the gate's flat designs) may spell levels out.
    allowed_prefixes = ("repro/tlb/",)
    allowed_files = (
        "repro/security/kinds.py",
        "repro/ablations/hierarchy.py",
        "repro/analysis/certify_gate.py",
    )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("TLBHierarchy", "make_hierarchy",
                        "make_two_level_tlb") and _literal_levels_argument(
                            node):
                yield self.finding(
                    node,
                    relpath,
                    f"{name}(...) built from a raw level list; pass a"
                    " declarative HierarchySpec so the design is"
                    " certifiable",
                )
            elif name == "HierarchySpec" and _literal_levels_argument(node):
                yield self.finding(
                    node,
                    relpath,
                    "inline HierarchySpec level list outside the spec"
                    " catalogs; define the design in repro.tlb /"
                    " repro.ablations so the certify CLI and the"
                    " differential gate can enumerate it",
                )


#: The batched-kernel functions held to the allocation-free discipline.
#: Matched by name wherever they are defined, so every design's override
#: of ``_run_miss_fast`` (and any future one) is covered automatically.
KERNEL_FUNCTIONS = frozenset(
    {
        "translate_slice",
        "translate_runs",
        "_oracle_slice",
        "_run_miss_fast",
        "_victim_fast",
        "_fill_fast",
        "_settle_touch",
    }
)

#: Constructors whose appearance inside a kernel function means a
#: per-access heap allocation crept back into an inner loop.
KERNEL_ALLOCATING_CALLS = frozenset({"TLBEntry", "AccessResult", "WalkResult"})

#: Comprehension nodes (each builds a fresh container per evaluation).
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class AllocationFreeRunKernel(Rule):
    name = "allocation-free-run-kernel"
    description = (
        "the batched translation kernels stay allocation-free: no"
        " dataclass/event construction, snapshot() calls or"
        " comprehensions, and tuples only in non-allocating positions"
        " (unpacking, return, index keys, .get/.pop arguments)"
    )
    #: The numpy structural backend builds whole arrays at once -- its
    #: allocations are per trace chunk, not per access.
    allowed_files = ("repro/sim/kernel_np.py",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name in KERNEL_FUNCTIONS
            ):
                yield from self._check_kernel(node, relpath)

    def _check_kernel(
        self, func: ast.FunctionDef, relpath: str
    ) -> Iterator[LintFinding]:
        allowed_tuples = set()
        for node in ast.walk(func):
            # Mark the tuple positions that do not allocate per access
            # (or allocate only on cold paths CPython optimizes anyway).
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Tuple
            ):
                allowed_tuples.add(id(node.value))
            elif isinstance(node, ast.Subscript) and isinstance(
                node.slice, ast.Tuple
            ):
                allowed_tuples.add(id(node.slice))
            elif isinstance(node, ast.Call):
                # ``.get``/``.pop`` index-key arguments, including the
                # hoisted bound-method idiom (``index_get = index.get``).
                name = _call_name(node)
                if name is not None and (
                    name.endswith("get") or name.endswith("pop")
                ):
                    for arg in node.args:
                        if isinstance(arg, ast.Tuple):
                            allowed_tuples.add(id(arg))
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in KERNEL_ALLOCATING_CALLS or (
                    name is not None and name.endswith("Event")
                ):
                    yield self.finding(
                        node,
                        relpath,
                        f"{name}(...) constructed inside kernel function"
                        f" {func.name}(); the batched kernels must not"
                        " allocate result or event objects per access",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "snapshot"
                ):
                    yield self.finding(
                        node,
                        relpath,
                        f"snapshot() called inside kernel function"
                        f" {func.name}(); snapshots copy whole"
                        " structures per call",
                    )
            elif isinstance(node, _COMPREHENSIONS):
                yield self.finding(
                    node,
                    relpath,
                    f"comprehension inside kernel function {func.name}();"
                    " build containers outside the inner loops",
                )
            elif (
                isinstance(node, ast.Tuple)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in allowed_tuples
            ):
                yield self.finding(
                    node,
                    relpath,
                    f"tuple built inside kernel function {func.name}()"
                    " outside the non-allocating positions (unpacking,"
                    " return, index key, .get/.pop argument)",
                )


#: Rule registry, in reporting order.
LINT_RULES: Tuple[Rule, ...] = (
    FacadeTLBConstruction(),
    FacadeWalkerConstruction(),
    DeterministicSim(),
    SimIsolation(),
    FrozenEventDataclasses(),
    NoSnapshotMutation(),
    CertifiableHierarchy(),
    AllocationFreeRunKernel(),
)


def module_relpath(path: Path) -> str:
    """Path relative to the ``repro`` package root, slash-separated.

    Files outside the package (test fixtures, scratch snippets) keep the
    bare filename and get no allowlist privileges.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.name


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    rules: Iterable[Rule] = LINT_RULES,
) -> List[LintFinding]:
    """Lint one module's source text."""
    relpath = module_relpath(Path(path))
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    findings: List[LintFinding] = []
    for rule in rules:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(tree, relpath):
            if _waived(lines, finding):
                continue
            findings.append(finding)
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return findings


def _waived(lines: Sequence[str], finding: LintFinding) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    line = lines[finding.line - 1]
    marker = line.find(WAIVER_MARKER)
    if marker < 0:
        return False
    waived = line[marker + len(WAIVER_MARKER):].strip()
    return waived.startswith(finding.rule)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_lint(
    paths: Sequence[Union[str, Path]],
    rules: Iterable[Rule] = LINT_RULES,
) -> List[LintFinding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: List[LintFinding] = []
    for path in iter_python_files(paths):
        findings.extend(
            lint_source(path.read_text(), path=path, rules=rules)
        )
    return findings
