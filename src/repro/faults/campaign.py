"""Chaos campaigns: inject every fault class, prove each one is caught.

Two campaigns mirror the package's two layers:

* :func:`run_sim_campaign` arms each sim-layer fault of a
  :class:`~repro.faults.plan.FaultPlan` against a fresh
  :class:`repro.sim.MemorySystem` running a fixed deterministic workload,
  with the full :class:`~repro.faults.detectors.DetectorSuite` attached.
  The product is a *detection matrix*: fault class x detectors that fired.
  A fault no detector reports is a **silent fault** -- the campaign's
  failure condition, gating CI.

* :func:`run_runner_campaign` aims each runner-layer fault mode at a
  cheap probe experiment executed through the real ``run_all`` stack
  (worker processes, cache, artifacts) and checks the matching hardening
  mechanism engaged *and* the final artifacts are byte-identical to a
  clean run's (or, for poison cells, that the run quarantined them and
  reported partially).

Runner imports happen lazily inside the functions: the scheduler imports
:mod:`repro.faults.chaos`, so a module-level import here would cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.mmu.walker import make_walker
from repro.sim.system import MemorySystem

from .detectors import DetectorSuite
from .injector import SimFaultInjector
from .plan import (
    EXECUTOR_FAULT_KINDS,
    RUNNER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    default_executor_plan,
    default_runner_plan,
    default_sim_plan,
)

#: The probe experiment the runner campaign schedules.
PROBE_EXPERIMENT = "chaos-probe"


@dataclass
class CampaignRow:
    """One fault class's outcome in the detection matrix."""

    kind: str
    layer: str
    #: How many faults were actually injected (0 = the spec never fired).
    injections: int
    #: Detectors (sim) or hardening mechanisms (runner) that caught it.
    detected_by: Tuple[str, ...]
    #: Human-readable evidence: injection details and violation messages.
    evidence: List[str] = field(default_factory=list)

    @property
    def silent(self) -> bool:
        """Injected but caught by nothing: the failure condition."""
        return self.injections > 0 and not self.detected_by

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "layer": self.layer,
            "injections": self.injections,
            "detected_by": list(self.detected_by),
            "silent": self.silent,
            "evidence": self.evidence,
        }


@dataclass
class CampaignReport:
    """A campaign's detection matrix plus its clean-baseline check."""

    name: str
    seed: int
    rows: List[CampaignRow] = field(default_factory=list)
    #: Detector violations from the fault-free baseline run (must be []).
    baseline_violations: List[str] = field(default_factory=list)

    @property
    def silent_faults(self) -> List[str]:
        return [row.kind for row in self.rows if row.silent]

    @property
    def not_injected(self) -> List[str]:
        return [row.kind for row in self.rows if row.injections == 0]

    @property
    def ok(self) -> bool:
        """Every fault injected and caught, with no false positives."""
        return (
            not self.silent_faults
            and not self.not_injected
            and not self.baseline_violations
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "silent_faults": self.silent_faults,
            "not_injected": self.not_injected,
            "baseline_violations": self.baseline_violations,
            "rows": [row.to_dict() for row in self.rows],
        }

    def to_text(self) -> str:
        """The detection matrix as an aligned console table."""
        lines = [f"chaos campaign: {self.name} (seed {self.seed})", ""]
        width = max((len(row.kind) for row in self.rows), default=4)
        header = f"{'fault':<{width}}  inj  detected by"
        lines += [header, "-" * len(header)]
        for row in self.rows:
            caught = ", ".join(row.detected_by) if row.detected_by else (
                "SILENT" if row.injections else "not injected"
            )
            lines.append(f"{row.kind:<{width}}  {row.injections:>3}  {caught}")
        lines.append("")
        if self.baseline_violations:
            lines.append("baseline (no faults) FALSE POSITIVES:")
            lines += [f"  {v}" for v in self.baseline_violations]
        else:
            lines.append("baseline (no faults): clean")
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


# -- the sim-layer campaign ---------------------------------------------------


def build_campaign_memory(design: str = "SA", seed: int = 2019) -> MemorySystem:
    """A fresh memory system sized so the workload causes no evictions.

    Capacity evictions would let a later fill displace the corrupted
    entry -- with a perfectly legal ``EvictEvent`` -- and erase the
    evidence before the final audit.  128 entries / 8 ways leave slack for
    the workload's ~40 distinct pages even when the SP design halves each
    set's ways per partition and the RF design adds random fills.

    ``design`` is either a flat kind (``"SA"``) or a two-level hierarchy
    label (``"RF+SA"``); hierarchy campaigns arm the same faults against
    a :class:`repro.tlb.TLBHierarchy` (L2 twice the L1's entries, again
    eviction-free) so the per-level detectors are exercised end to end.
    """
    import random

    from repro.security.kinds import TLBKind, make_hierarchy, make_tlb
    from repro.tlb.config import TLBConfig
    from repro.tlb.spec import HierarchySpec

    name = design.upper()
    if "+" in name:
        l1_kind, l2_kind = name.split("+")
        spec = HierarchySpec.two_level(
            l1_kind,
            l2_kind,
            TLBConfig(entries=128, ways=8),
            TLBConfig(entries=256, ways=8),
        )
        tlb = make_hierarchy(spec, victim_asid=1, rng=random.Random(seed))
        memory = MemorySystem(tlb, walker=make_walker())
        if "RF" in (l1_kind, l2_kind):
            memory.set_secure_region(0x200, 0x10, victim_asid=1)
        return memory
    kind = TLBKind(name)
    config = TLBConfig(entries=128, ways=8)
    tlb = make_tlb(kind, config, rng=random.Random(seed))
    memory = MemorySystem(tlb, walker=make_walker())
    if kind is TLBKind.RF:
        memory.set_secure_region(0x200, 0x10, victim_asid=1)
    return memory


def drive_workload(memory: MemorySystem) -> None:
    """The fixed campaign workload (two ASIDs, flushes, refills).

    Structured so every default trigger lands on prepared ground: both
    flushes happen by translation ~32 (so translation-triggered faults at
    40 corrupt state no later flush legitimately removes), the second
    flush is the drop-flush target (stale entries exist to survive it),
    and 48 page-table walks cover the walk-jitter trigger.
    """
    memory.context_switch(0)
    for vpn in range(0x100, 0x110):
        memory.translate(vpn, 0)
    memory.context_switch(1)
    for vpn in range(0x200, 0x208):
        memory.translate(vpn, 1)
    memory.flush_asid(1)  # maintenance op 1: performed
    for vpn in range(0x200, 0x208):
        memory.translate(vpn, 1)  # refill after the flush
    memory.flush_asid(1)  # maintenance op 2: the drop-flush target
    memory.context_switch(0)
    for vpn in range(0x100, 0x110):
        memory.translate(vpn, 0)  # hits; crosses the bit-flip trigger
    for vpn in range(0x110, 0x130):
        memory.translate(vpn, 0)  # fresh walks; crosses the jitter trigger


def run_sim_campaign(
    plan: Optional[FaultPlan] = None,
    design: str = "SA",
    seed: int = 2019,
) -> CampaignReport:
    """Inject each sim-layer fault of ``plan`` into its own fresh run."""
    plan = plan if plan is not None else default_sim_plan(seed)
    relaxed = "RF" in design.upper().split("+")
    report = CampaignReport(name=f"sim/{design.upper()}", seed=plan.seed)

    # Fault-free baseline: the detectors must stay quiet on a clean run.
    baseline = build_campaign_memory(design, plan.seed)
    suite = DetectorSuite.standard(baseline, strict_shadow=not relaxed)
    drive_workload(baseline)
    for name, violations in suite.finish().items():
        report.baseline_violations += [f"{name}: {v}" for v in violations]

    for index, spec in enumerate(plan.specs):
        if spec.layer != "sim":
            continue
        memory = build_campaign_memory(design, plan.seed)
        suite = DetectorSuite.standard(memory, strict_shadow=not relaxed)
        injector = SimFaultInjector(
            memory=memory, spec=spec, rng=plan.rng_for(index)
        ).arm()
        drive_workload(memory)
        fired = suite.finish()
        evidence = [fault.detail for fault in injector.injected]
        for name, violations in fired.items():
            evidence += [f"{name}: {v}" for v in violations[:3]]
        report.rows.append(
            CampaignRow(
                kind=spec.kind,
                layer="sim",
                injections=len(injector.injected),
                detected_by=tuple(sorted(fired)),
                evidence=evidence,
            )
        )
    return report


# -- the runner-layer campaign ------------------------------------------------


def ensure_probe_experiment() -> None:
    """Register the campaign's cheap probe experiment (idempotent).

    Inert in normal runs: it enumerates no cells unless the
    ``chaos_probe_cells`` option is set, exactly like the test-only toy
    experiments.  Worker processes inherit the registration via fork.
    """
    from repro.runner.registry import REGISTRY, Experiment, register

    if PROBE_EXPERIMENT in REGISTRY:
        return

    @register(PROBE_EXPERIMENT)
    class ChaosProbe(Experiment):
        def units(self, options):
            cells = int(options.get("chaos_probe_cells", 0) or 0)
            return [
                self.unit(f"cell-{index:02d}", index=index)
                for index in range(cells)
            ]

        @staticmethod
        def run(params):
            index = params["index"]
            return {"index": index, "value": (index * 2654435761) % 1000003}

        def assemble(self, values, options):
            return values


def _artifact_bytes(results_dir: Path) -> Dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(results_dir).glob("*.json"))
        if path.name != "failed_cells.json"
    }


def run_runner_campaign(
    workdir: Path | str,
    plan: Optional[FaultPlan] = None,
    seed: int = 2019,
    cells: int = 6,
    jobs: int = 2,
    task_timeout: float = 2.0,
) -> CampaignReport:
    """Aim each runner fault mode at the probe cells through ``run_all``."""
    from repro.faults.chaos import ChaosConfig
    from repro.runner.api import run_all

    plan = plan if plan is not None else default_runner_plan(seed)
    kinds = [
        spec.kind for spec in plan.specs if spec.kind in RUNNER_FAULT_KINDS
    ]
    workdir = Path(workdir)
    report = CampaignReport(name="runner", seed=plan.seed)
    ensure_probe_experiment()

    common: Dict[str, Any] = dict(
        jobs=jobs,
        filters=[f"{PROBE_EXPERIMENT}/*"],
        options={"chaos_probe_cells": cells},
        progress=False,
    )

    # Clean reference run: the artifact bytes every chaotic run must match.
    clean_dir = workdir / "clean"
    clean_report = run_all(
        results_dir=clean_dir, cache_dir=workdir / "clean-cache", **common
    )
    if not clean_report.ok:
        report.baseline_violations.append(
            f"clean run failed: {clean_report.failed}"
        )
    reference = _artifact_bytes(clean_dir)
    if not reference:
        report.baseline_violations.append("clean run produced no artifacts")

    chaos_seed = plan.seed
    for kind in kinds:
        results_dir = workdir / kind
        cache_dir = workdir / f"{kind}-cache"
        detected: List[str] = []
        evidence: List[str] = []
        injections = 0

        if kind == "torn-cache":
            # Populate the cache, tear one entry mid-write, rerun: the
            # checksum/atomic-read path must spot the torn file, recompute
            # the cell, and still converge to the reference artifacts.
            run_all(results_dir=results_dir, cache_dir=cache_dir, **common)
            torn = sorted(Path(cache_dir).rglob("*.pkl"))
            if torn:
                victim = torn[len(torn) // 2]
                blob = victim.read_bytes()
                victim.write_bytes(blob[: max(1, len(blob) // 2)])
                injections = 1
                evidence.append(f"truncated {victim.name}")
            rerun = run_all(
                results_dir=results_dir, cache_dir=cache_dir, **common
            )
            if rerun.cache_corrupt:
                detected.append("cache-checksum")
                evidence.append(
                    f"{rerun.cache_corrupt} torn entries recomputed"
                )
            if rerun.ok and _artifact_bytes(results_dir) == reference:
                detected.append("artifact-match")
        elif kind == "poison":
            poisoned = f"{PROBE_EXPERIMENT}/cell-00"
            chaos = ChaosConfig(
                seed=chaos_seed, modes=(), poison_idents=(poisoned,)
            )
            injections = 1
            evidence.append(f"poisoned {poisoned}")
            outcome = run_all(
                results_dir=results_dir,
                cache_dir=cache_dir,
                chaos=chaos,
                **common,
            )
            quarantined = (
                not outcome.ok
                and poisoned in outcome.failed
                and outcome.completed == cells - 1
                and (results_dir / "failed_cells.json").is_file()
            )
            if quarantined:
                detected.append("quarantine")
                evidence.append(
                    f"failed-cell manifest written, {outcome.completed}"
                    f"/{cells} healthy cells completed"
                )
        else:
            mode_map = {
                "hang": ("watchdog", "watchdog_kills"),
                "crash": ("crash-retry", "worker_crashes"),
                "corrupt-result": ("integrity-envelope", "corrupt_results"),
            }
            mechanism, counter = mode_map[kind]
            chaos = ChaosConfig(
                seed=chaos_seed,
                modes=(kind,),
                rate=1.0,
                hang_seconds=task_timeout * 30,
            )
            outcome = run_all(
                results_dir=results_dir,
                cache_dir=cache_dir,
                chaos=chaos,
                task_timeout=(task_timeout if kind == "hang" else None),
                **common,
            )
            engaged = getattr(outcome, counter)
            injections = cells  # rate=1.0 targets every first attempt
            if engaged:
                detected.append(mechanism)
                evidence.append(f"{counter}={engaged}")
            if outcome.ok and _artifact_bytes(results_dir) == reference:
                detected.append("artifact-match")
            elif not outcome.ok:
                evidence.append(f"run not ok: failed={outcome.failed}")

        report.rows.append(
            CampaignRow(
                kind=kind,
                layer="runner",
                injections=injections,
                detected_by=tuple(detected),
                evidence=evidence,
            )
        )
    return report


# -- the executor-layer campaign ----------------------------------------------


def run_executor_campaign(
    workdir: Path | str,
    plan: Optional[FaultPlan] = None,
    seed: int = 2019,
    cells: int = 6,
    workers: int = 2,
) -> CampaignReport:
    """Aim each lease-protocol fault at the work-stealing executor.

    Every fault mode gets a fresh board (its own cache directory) and a
    ``workers``-strong local topology running the probe cells through the
    real ``run_all`` stack with ``executor="work-stealing"``.  The
    zero-silent-fault contract: each injected fault must be *masked* --
    the affected cells re-executed and the merged artifacts byte-identical
    to a clean local-pool run -- or *detected and quarantined* (the
    cross-host poison cell, with its full attempt history in
    ``failed_cells.json``).  Never a corrupt or missing result.
    """
    import json

    from repro.faults.chaos import ExecutorChaosConfig
    from repro.runner.api import run_all

    plan = plan if plan is not None else default_executor_plan(seed)
    kinds = [
        spec.kind for spec in plan.specs if spec.kind in EXECUTOR_FAULT_KINDS
    ]
    workdir = Path(workdir)
    report = CampaignReport(name="executor", seed=plan.seed)
    ensure_probe_experiment()

    common: Dict[str, Any] = dict(
        filters=[f"{PROBE_EXPERIMENT}/*"],
        options={"chaos_probe_cells": cells},
        progress=False,
    )
    #: Tight protocol timings so every recovery path fires within seconds;
    #: freeze/stale holds must exceed the lease TTL to go stale mid-run.
    protocol: Dict[str, Any] = dict(
        lease_ttl=1.0,
        heartbeat_interval=0.25,
        poll_interval=0.05,
        fallback_after=120.0,
        drain_timeout=180.0,
        worker_kill_threshold=3,
    )

    # Clean reference run through the *local pool*: the acceptance bar is
    # that every chaotic work-stealing run converges to these exact bytes.
    clean_dir = workdir / "clean"
    clean_report = run_all(
        jobs=2, results_dir=clean_dir, cache_dir=workdir / "clean-cache",
        **common,
    )
    if not clean_report.ok:
        report.baseline_violations.append(
            f"clean run failed: {clean_report.failed}"
        )
    reference = _artifact_bytes(clean_dir)
    if not reference:
        report.baseline_violations.append("clean run produced no artifacts")

    # Fault-free work-stealing baseline: the protocol itself must add no
    # retries, reclaims, or divergence before any fault is injected.
    steal_dir = workdir / "steal-clean"
    steal_report = run_all(
        results_dir=steal_dir,
        cache_dir=workdir / "steal-clean-cache",
        executor="work-stealing",
        workers=workers,
        executor_options=dict(protocol),
        **common,
    )
    if not steal_report.ok:
        report.baseline_violations.append(
            f"fault-free work-stealing run failed: {steal_report.failed}"
        )
    elif _artifact_bytes(steal_dir) != reference:
        report.baseline_violations.append(
            "fault-free work-stealing artifacts diverge from the local pool"
        )

    #: fault kind -> (hardening mechanism, RunReport counter).
    mode_map = {
        "worker-sigkill": ("lease-reclaim", "leases_reclaimed"),
        "heartbeat-freeze": ("lease-reclaim", "leases_reclaimed"),
        "duplicate-lease": ("duplicate-detect", "duplicate_completions"),
        "stale-lease": ("lease-reclaim", "leases_reclaimed"),
        "torn-journal": ("torn-tail-reader", "torn_journals"),
        "result-tamper": ("integrity-envelope", "corrupt_results"),
    }
    for kind in kinds:
        results_dir = workdir / kind
        cache_dir = workdir / f"{kind}-cache"
        detected: List[str] = []
        evidence: List[str] = []
        injections = 0

        if kind == "cross-host-poison":
            poisoned = f"{PROBE_EXPERIMENT}/cell-00"
            chaos = ExecutorChaosConfig(
                seed=plan.seed, modes=(), rate=0.0, poison_idents=(poisoned,)
            )
            injections = 1
            evidence.append(f"poisoned {poisoned} on every worker")
            outcome = run_all(
                results_dir=results_dir,
                cache_dir=cache_dir,
                executor="work-stealing",
                workers=workers,
                executor_options=dict(protocol),
                executor_chaos=chaos,
                **common,
            )
            manifest_path = results_dir / "failed_cells.json"
            quarantined = (
                not outcome.ok
                and poisoned in outcome.failed
                and outcome.completed == cells - 1
                and manifest_path.is_file()
            )
            if quarantined:
                detected.append("quarantine")
                manifest = json.loads(manifest_path.read_text())
                history = next(
                    (
                        entry.get("history", [])
                        for entry in manifest.get("failed", [])
                        if entry.get("ident") == poisoned
                    ),
                    [],
                )
                attempt_workers = {
                    str(record.get("worker"))
                    for record in history
                    if record.get("worker")
                }
                if history and attempt_workers:
                    detected.append("attempt-history")
                    evidence.append(
                        f"{len(history)} attempts across"
                        f" {len(attempt_workers)} workers in the manifest"
                    )
        else:
            mechanism, counter = mode_map[kind]
            chaos = ExecutorChaosConfig(
                seed=plan.seed,
                modes=(kind,),
                rate=1.0,
                max_attempt=1,
                freeze_seconds=2.5,
            )
            outcome = run_all(
                results_dir=results_dir,
                cache_dir=cache_dir,
                executor="work-stealing",
                workers=workers,
                executor_options=dict(protocol),
                executor_chaos=chaos,
                **common,
            )
            injections = cells  # rate=1.0 targets every first attempt
            engaged = getattr(outcome, counter)
            if engaged:
                detected.append(mechanism)
                evidence.append(f"{counter}={engaged}")
            if kind == "worker-sigkill" and outcome.worker_crashes:
                detected.append("worker-respawn")
                evidence.append(f"worker_crashes={outcome.worker_crashes}")
            if outcome.ok and _artifact_bytes(results_dir) == reference:
                detected.append("artifact-match")
            elif not outcome.ok:
                evidence.append(f"run not ok: failed={outcome.failed}")
            elif _artifact_bytes(results_dir) != reference:
                evidence.append("artifacts diverge from the local pool")

        report.rows.append(
            CampaignRow(
                kind=kind,
                layer="executor",
                injections=injections,
                detected_by=tuple(detected),
                evidence=evidence,
            )
        )
    return report


def run_campaigns(
    which: str,
    workdir: Path | str,
    seed: int = 2019,
    design: str = "SA",
    workers: int = 2,
) -> List[CampaignReport]:
    """The CLI's entry: ``sim``, ``runner``, ``executor`` or ``all``."""
    reports: List[CampaignReport] = []
    if which in ("sim", "all"):
        reports.append(run_sim_campaign(design=design, seed=seed))
    if which in ("runner", "all"):
        reports.append(run_runner_campaign(Path(workdir), seed=seed))
    if which in ("executor", "all"):
        reports.append(
            run_executor_campaign(
                Path(workdir) / "executor", seed=seed, workers=workers
            )
        )
    return reports
