"""The control-and-status registers the benchmarks use.

The paper's modified Rocket Core exposes (Section 5.3 / Figure 6):

* ``process_id`` -- which process the subsequent memory operations belong
  to.  Real attacks span two processes; the micro benchmarks emulate both
  sides from one program by switching this register, exactly as Figure 6's
  ``csrw process_id, 0`` does ("Set current process for simulation").
* ``sbase`` / ``ssize`` -- the RF TLB's secure-region registers (in pages).
* ``tlb_miss_count`` -- the added TLB miss performance counter, read before
  and after the probe step to classify it fast or slow.
* ``cycle`` / ``instret`` -- the standard performance counters, enabled in
  user mode for the performance evaluation (Section 6.2).
"""

from __future__ import annotations

from typing import Callable, Dict

#: CSR name -> simulated address (addresses follow RISC-V conventions where
#: one exists; the custom registers take custom-CSR space numbers).
CSR_ADDRESSES = {
    "cycle": 0xC00,
    "instret": 0xC02,
    "tlb_miss_count": 0xC03,
    "process_id": 0x800,
    "sbase": 0x801,
    "ssize": 0x802,
}

READ_ONLY_CSRS = {"cycle", "instret", "tlb_miss_count"}


class CSRError(Exception):
    """Unknown CSR name or a write to a read-only counter."""


class CSRFile:
    """CSR storage with hooks for the counters and the TLB registers.

    Reads of the counters are delegated to callables supplied by the CPU;
    writes to ``process_id``/``sbase``/``ssize`` invoke callbacks so the CPU
    can retag subsequent accesses and program the RF TLB's registers.
    """

    def __init__(self) -> None:
        self._values: Dict[str, int] = {
            "process_id": 1,
            "sbase": 0,
            "ssize": 0,
        }
        self._readers: Dict[str, Callable[[], int]] = {}
        self._write_hooks: Dict[str, Callable[[int], None]] = {}

    def bind_counter(self, name: str, reader: Callable[[], int]) -> None:
        if name not in READ_ONLY_CSRS:
            raise CSRError(f"{name} is not a counter CSR")
        self._readers[name] = reader

    def on_write(self, name: str, hook: Callable[[int], None]) -> None:
        self._check_known(name)
        self._write_hooks[name] = hook

    def read(self, name: str) -> int:
        self._check_known(name)
        if name in READ_ONLY_CSRS:
            reader = self._readers.get(name)
            if reader is None:
                raise CSRError(f"counter {name} is not bound")
            return reader()
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        self._check_known(name)
        if name in READ_ONLY_CSRS:
            raise CSRError(f"{name} is read-only")
        if value < 0:
            raise CSRError(f"CSR {name} cannot hold negative value {value}")
        self._values[name] = value
        hook = self._write_hooks.get(name)
        if hook is not None:
            hook(value)

    @staticmethod
    def _check_known(name: str) -> None:
        if name not in CSR_ADDRESSES:
            raise CSRError(f"unknown CSR {name!r}")
