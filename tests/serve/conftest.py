"""Fixtures for the service suite: a real server on a real socket.

The harness runs a :class:`repro.serve.ServeApp` on its own event loop
in a daemon thread, bound to port 0 (the OS picks), and the tests talk
to it over localhost with plain ``http.client`` -- the same wire a curl
user sees.  A toy experiment is registered for the duration of each
test and removed afterwards, so the global registry stays clean for the
rest of the suite.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

import http.client

import pytest

from repro.runner.registry import REGISTRY, Experiment, register
from repro.serve import ServeApp

#: One entry per toy-cell execution (thread-safe append), so tests can
#: count how many simulations actually ran.
RUN_CALLS = []
_RUN_LOCK = threading.Lock()

#: Spec option keys the toy experiment understands; passed to the app as
#: ``extra_option_keys`` so validation admits them.
TOY_OPTION_KEYS = frozenset(
    {
        "serve_toy_values",
        "serve_toy_delay",
        "serve_toy_fail",
        "serve_toy_certified",
    }
)


class ServeToyExperiment(Experiment):
    """Squares its values; optionally sleeps or fails, for test control."""

    def units(self, options):
        if "serve_toy_values" not in options:
            return []
        return [
            self.unit(
                str(value),
                value=value,
                delay=options.get("serve_toy_delay", 0.0),
                fail=options.get("serve_toy_fail", False),
            )
            for value in options["serve_toy_values"]
        ]

    @staticmethod
    def run(params):
        with _RUN_LOCK:
            RUN_CALLS.append(params["value"])
        if params.get("fail"):
            raise RuntimeError(f"toy cell {params['value']} told to fail")
        if params.get("delay"):
            time.sleep(params["delay"])
        return params["value"] ** 2

    def assemble(self, values, options):
        assembled = {"squares": list(values)}
        if "serve_toy_certified" in options:
            # Mimic a certifying experiment (e.g. hierarchy_sweep): the
            # assembled payload carries a static/dynamic agreement flag.
            assembled["certified"] = bool(options["serve_toy_certified"])
        return assembled


@pytest.fixture
def toy_experiment():
    register("serve-toy")(ServeToyExperiment)
    RUN_CALLS.clear()
    yield "serve-toy"
    REGISTRY.pop("serve-toy", None)


class ServeHarness:
    """A live server plus an ``http.client`` convenience wrapper."""

    def __init__(self, **app_kwargs: Any) -> None:
        app_kwargs.setdefault("port", 0)
        app_kwargs.setdefault("quiet", True)
        app_kwargs.setdefault("extra_option_keys", TOY_OPTION_KEYS)
        self.app = ServeApp(**app_kwargs)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        await self.app.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.app.stop()

    def start(self) -> "ServeHarness":
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("serve harness failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=15)
        if self._thread.is_alive():  # pragma: no cover - hung server
            raise RuntimeError("serve harness failed to stop")

    @property
    def port(self) -> int:
        return self.app.port

    def request(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: Optional[Dict[str, str]] = None,
        raw_body: Optional[bytes] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=30
        )
        payload = raw_body
        send_headers = dict(headers or {})
        if body is not None:
            payload = json.dumps(body).encode()
            send_headers.setdefault("Content-Type", "application/json")
        try:
            connection.request(method, path, body=payload, headers=send_headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, dict(response.getheaders()), data
        finally:
            connection.close()

    def request_json(self, *args: Any, **kwargs: Any):
        status, headers, data = self.request(*args, **kwargs)
        return status, headers, json.loads(data)

    def poll_job(self, status_url: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Poll a job until it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _status, _headers, doc = self.request_json("GET", status_url)
            if doc["state"] in ("done", "failed"):
                return doc
            time.sleep(0.05)
        raise AssertionError(f"job at {status_url} never finished: {doc}")


@pytest.fixture
def serve_harness(tmp_path, toy_experiment):
    """Factory for live servers; everything started is stopped at teardown."""
    started = []

    def factory(**app_kwargs: Any) -> ServeHarness:
        app_kwargs.setdefault("state_dir", tmp_path / "serve-state")
        app_kwargs.setdefault("cache_dir", tmp_path / "cell-cache")
        harness = ServeHarness(**app_kwargs).start()
        started.append(harness)
        return harness

    yield factory
    for harness in started:
        harness.stop()
