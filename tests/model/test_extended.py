"""Tests for the Appendix B extended model (Tables 6 and 7)."""


from repro.model.effectiveness import analyze
from repro.model.extended import (
    derive_extended_vulnerabilities,
    invalidation_only_vulnerabilities,
    strategy_label,
    summarize_by_strategy,
)
from repro.model.patterns import Observation, ThreeStepPattern
from repro.model.states import (
    A_A,
    A_A_INV,
    A_D,
    V_A_INV,
    V_U,
    V_U_INV,
)
from repro.model.table2 import table2_vulnerabilities


def vuln(step1, step2, step3):
    return analyze(ThreeStepPattern((step1, step2, step3)))


class TestExtendedDerivation:
    def test_extended_includes_all_base_rows(self):
        extended = set(derive_extended_vulnerabilities())
        for base_row in table2_vulnerabilities():
            assert base_row in extended

    def test_invalidation_rows_all_use_extended_states(self):
        for vulnerability in invalidation_only_vulnerabilities():
            assert vulnerability.pattern.uses_extended_states()

    def test_extended_only_count_is_stable(self):
        # The paper's Table 7 lists 50 additional rows; our mechanized
        # derivation, which applies the alias dedup of rule 5 uniformly,
        # finds 48.  The discrepancy is documented in EXPERIMENTS.md.
        assert len(invalidation_only_vulnerabilities()) == 48

    def test_base_and_extended_partition(self):
        extended = derive_extended_vulnerabilities()
        base = [v for v in extended if not v.pattern.uses_extended_states()]
        assert len(base) == 24
        assert len(extended) == 24 + 48


class TestExemplarRows:
    """Spot-check the named rows Appendix B discusses in prose."""

    def test_flush_time(self):
        # V_u ~> A_a^inv ~> V_u (slow): invalidating a evicts the secret
        # translation only if u == a.
        vulnerability = vuln(V_U, A_A_INV, V_U)
        assert vulnerability is not None
        assert vulnerability.observation is Observation.SLOW
        assert strategy_label(vulnerability) == "TLB Flush + Time"

    def test_flush_time_internal(self):
        vulnerability = vuln(V_U, V_A_INV, V_U)
        assert vulnerability is not None
        assert strategy_label(vulnerability) == "TLB Flush + Time"

    def test_flush_probe(self):
        # A_a ~> V_u^inv ~> A_a (slow): the victim's secret invalidation
        # knocks out the attacker's primed entry only if u == a.
        vulnerability = vuln(A_A, V_U_INV, A_A)
        assert vulnerability is not None
        assert vulnerability.observation is Observation.SLOW
        assert strategy_label(vulnerability) == "TLB Flush + Probe"

    def test_flush_flush(self):
        # A_a^inv ~> V_u ~> A_a^inv (slow): the second invalidation is slow
        # only if the victim re-installed a (i.e. u == a).
        vulnerability = vuln(A_A_INV, V_U, A_A_INV)
        assert vulnerability is not None
        assert vulnerability.observation is Observation.SLOW
        assert strategy_label(vulnerability) == "TLB Flush + Flush"

    def test_reload_time(self):
        # V_u^inv ~> A_a ~> V_u (fast): after invalidating u, a fast reload
        # means the attacker's access to a restored it, so u == a.
        vulnerability = vuln(V_U_INV, A_A, V_U)
        assert vulnerability is not None
        assert vulnerability.observation is Observation.FAST
        assert strategy_label(vulnerability) == "TLB Reload + Time"

    def test_prime_probe_invalidation(self):
        # A_d ~> V_u ~> A_d^inv (fast): the invalidation probe is fast when
        # the victim's access evicted d (Table 7's Prime + Probe
        # Invalidation family -- note fast = absent for invalidations).
        from repro.model.states import A_D_INV

        vulnerability = vuln(A_D, V_U, A_D_INV)
        assert vulnerability is not None
        assert vulnerability.observation is Observation.FAST
        assert strategy_label(vulnerability) == "TLB Prime + Probe Invalidation"


class TestStrategyLabels:
    def test_base_rows_keep_their_table2_names(self):
        for vulnerability in table2_vulnerabilities():
            assert strategy_label(vulnerability) == vulnerability.strategy.value

    def test_every_extended_row_gets_a_label(self):
        for vulnerability in invalidation_only_vulnerabilities():
            label = strategy_label(vulnerability)
            assert label.startswith("TLB ")

    def test_summary_covers_all_rows(self):
        summary = summarize_by_strategy()
        assert sum(summary.values()) == len(invalidation_only_vulnerabilities())
        assert "TLB Flush + Probe" in summary
        assert "TLB Flush + Time" in summary
        assert "TLB Flush + Flush" in summary
        assert "TLB Reload + Time" in summary


class TestExtendedSemantics:
    def test_targeted_invalidation_timing(self):
        # Invalidating a present entry is slow; invalidating an absent one
        # is fast (the Appendix B performance-optimization semantics).
        from repro.model.effectiveness import Relation, step3_timings

        flush_flush = ThreeStepPattern((A_A_INV, V_U, A_A_INV))
        assert step3_timings(flush_flush, Relation.EQ_A) == frozenset(
            {Observation.SLOW}
        )
        assert step3_timings(flush_flush, Relation.DIFF) == frozenset(
            {Observation.FAST}
        )

    def test_secret_invalidation_counts_as_secret_step(self):
        assert V_U_INV.is_secret
        assert not V_U_INV.is_known


class TestExtendedDeterminism:
    def test_informative_observations_are_deterministic(self):
        # Mirror of the base-model rule-7 property over all 72 rows.
        from repro.model.effectiveness import (
            MAPPED_RELATIONS,
            applicable_relations,
            step3_timings,
        )

        for vulnerability in derive_extended_vulnerabilities():
            pattern = vulnerability.pattern
            consistent = {
                relation
                for relation in applicable_relations(pattern)
                if vulnerability.observation in step3_timings(pattern, relation)
            }
            assert consistent
            assert consistent <= MAPPED_RELATIONS
            for relation in consistent:
                assert step3_timings(pattern, relation) == frozenset(
                    {vulnerability.observation}
                )

    def test_derivation_is_stable(self):
        first = derive_extended_vulnerabilities()
        second = derive_extended_vulnerabilities()
        assert first == second
