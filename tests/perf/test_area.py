"""Tests for the Table 5 area model."""

import pytest

from repro.perf.area import (
    AreaModel,
    BLOCK_RAMS,
    DSPS,
    PAPER_TABLE5,
)
from repro.security.kinds import TLBKind


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestPaperData:
    def test_nineteen_synthesis_points(self):
        assert len(PAPER_TABLE5) == 19

    def test_constants(self):
        assert BLOCK_RAMS == 24 and DSPS == 15

    def test_baseline_values_match_paper(self):
        assert PAPER_TABLE5[(TLBKind.SA, "4W 32")] == (36043, 22765)

    def test_paper_deltas_match_text(self):
        # Section 6.6: 4W32 SP is +140 LUTs / +33 registers; RF +2223/+1253.
        base_luts, base_regs = PAPER_TABLE5[(TLBKind.SA, "4W 32")]
        sp_luts, sp_regs = PAPER_TABLE5[(TLBKind.SP, "4W 32")]
        rf_luts, rf_regs = PAPER_TABLE5[(TLBKind.RF, "4W 32")]
        assert (sp_luts - base_luts, sp_regs - base_regs) == (140, 33)
        assert (rf_luts - base_luts, rf_regs - base_regs) == (2223, 1253)


class TestModelFit:
    def test_fit_quality(self, model):
        worst_luts, worst_registers = model.max_relative_error()
        assert worst_luts < 0.05
        assert worst_registers < 0.15

    def test_registers_scale_with_entries(self, model):
        small = model.predict(TLBKind.SA, "FA 32")
        large = model.predict(TLBKind.SA, "FA 128")
        assert large.registers > small.registers + 8_000

    def test_fully_associative_costs_more_luts(self, model):
        fa = model.predict(TLBKind.SA, "FA 128")
        sa = model.predict(TLBKind.SA, "4W 128")
        assert fa.luts > sa.luts

    def test_sp_overhead_is_marginal(self, model):
        luts, registers = model.overhead_fraction(TLBKind.SP, "4W 32")
        assert abs(luts) < 0.02
        assert abs(registers) < 0.02

    def test_rf_overhead_is_a_few_percent(self, model):
        # The paper: ~6.2% more LUTs / 5.5% more registers at 4W 32, and
        # "about 8% more logic" overall.
        luts, registers = model.overhead_fraction(TLBKind.RF, "4W 32")
        assert 0.02 < luts < 0.10
        assert 0.0 < registers < 0.10

    def test_rf_costs_more_than_sp_everywhere(self, model):
        for label in ("FA 32", "2W 32", "4W 32", "FA 128", "2W 128", "4W 128"):
            rf = model.predict(TLBKind.RF, label)
            sp = model.predict(TLBKind.SP, label)
            assert rf.luts > sp.luts

    def test_table5_rendering(self, model):
        text = model.table5()
        assert "4W 32" in text
        assert "Block RAMs = 24" in text
        assert text.count("\n") >= 20

    def test_delta_against_baseline(self, model):
        baseline = model.baseline()
        delta = model.predict(TLBKind.RF, "4W 32").delta(baseline)
        assert delta.luts > 0
