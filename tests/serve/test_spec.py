"""Unit tests for spec parsing, content hashing, and result documents."""

import dataclasses
import enum
import json

import pytest

from repro.serve.http import HttpError
from repro.serve.jobs import (
    JobSpec,
    canonical_payload,
    parse_spec,
    result_document,
    to_jsonable,
)


def _reject(payload, **kwargs):
    with pytest.raises(HttpError) as excinfo:
        parse_spec(payload, **kwargs)
    assert excinfo.value.status == 400
    assert excinfo.value.code == "bad-spec"
    return excinfo.value.detail


class TestParseSpec:
    def test_minimal(self):
        spec = parse_spec({"experiment": "table2"})
        assert spec.experiment == "table2"
        assert spec.options == ()
        assert spec.filters == ()
        assert spec.priority == 0
        assert spec.client == "anonymous"

    def test_design_workload_become_filters(self):
        spec = parse_spec(
            {"experiment": "table2", "design": "SP", "workload": "mcf"}
        )
        assert spec.filters == ("table2/SP/*", "table2/*mcf*")

    def test_trials_lower_onto_the_option(self):
        spec = parse_spec({"experiment": "table4", "trials": 7})
        assert dict(spec.options)["table4_trials"] == 7

    def test_hierarchy_sweep_trials_lower_onto_their_option(self):
        spec = parse_spec({"experiment": "hierarchy_sweep", "trials": 3})
        assert dict(spec.options)["hierarchy_sweep_trials"] == 3

    def test_trials_unsupported_experiment(self):
        detail = _reject({"experiment": "table2", "trials": 7})
        assert "no trials knob" in detail

    def test_unknown_experiment_lists_known(self):
        detail = _reject({"experiment": "tableX"})
        assert "table2" in detail

    def test_unknown_option_key(self):
        detail = _reject({"experiment": "table2", "options": {"nope": 1}})
        assert "unknown option" in detail

    def test_extra_option_keys_widen_validation(self):
        _reject({"experiment": "table2", "options": {"custom_knob": 1}})
        spec = parse_spec(
            {"experiment": "table2", "options": {"custom_knob": 1}},
            extra_option_keys=frozenset({"custom_knob"}),
        )
        assert dict(spec.options)["custom_knob"] == 1

    def test_rejections(self):
        _reject("not a dict")
        _reject({"experiment": "table2", "typo": 1})
        _reject({"experiment": ""})
        _reject({"experiment": "table2", "design": "XX"})
        _reject({"experiment": "table2", "workload": ""})
        _reject({"experiment": "table2", "trials": 0})
        _reject({"experiment": "table2", "trials": True})
        _reject({"experiment": "table2", "priority": 10})
        _reject({"experiment": "table2", "priority": True})
        _reject({"experiment": "table2", "filters": "oops"})
        _reject({"experiment": "table2", "filters": [""]})
        _reject({"experiment": "table2", "client": ""})
        _reject({"experiment": "table2", "options": []})

    def test_client_default(self):
        spec = parse_spec({"experiment": "table2"}, default_client="bob")
        assert spec.client == "bob"
        spec = parse_spec({"experiment": "table2", "client": "carol"})
        assert spec.client == "carol"


class TestContentHash:
    def test_stable_and_order_insensitive(self):
        one = JobSpec(
            "table2", options=(("a", 1), ("b", 2))
        ).content_hash("v1")
        two = JobSpec(
            "table2", options=(("a", 1), ("b", 2))
        ).content_hash("v1")
        assert one == two
        assert len(one) == 64

    def test_sensitive_to_every_identity_field(self):
        base = JobSpec("table2").content_hash("v1")
        assert JobSpec("table4").content_hash("v1") != base
        assert JobSpec("table2", options=(("a", 1),)).content_hash("v1") != base
        assert JobSpec("table2", filters=("x/*",)).content_hash("v1") != base
        # Code changes invalidate old results.
        assert JobSpec("table2").content_hash("v2") != base

    def test_priority_and_client_are_not_identity(self):
        # Who asked and how urgently must not fork the result space.
        one = JobSpec("table2", priority=0, client="a").content_hash("v1")
        two = JobSpec("table2", priority=9, client="b").content_hash("v1")
        assert one == two


class TestToJsonable:
    def test_plain_passthrough(self):
        assert to_jsonable({"a": [1, 2.5, "x", None, True]}) == {
            "a": [1, 2.5, "x", None, True]
        }

    def test_dataclass_and_enum(self):
        class Color(enum.Enum):
            RED = "red"

        @dataclasses.dataclass
        class Point:
            x: int
            color: Color

        assert to_jsonable(Point(1, Color.RED)) == {"x": 1, "color": "red"}

    def test_tuples_and_sets(self):
        assert to_jsonable((1, 2)) == [1, 2]
        assert to_jsonable({"b", "a"}) == ["a", "b"]

    def test_fallback_is_str(self):
        assert to_jsonable(complex(1, 2)) == "(1+2j)"


class TestResultDocument:
    def _document(self, selected=2, full=2):
        return result_document(
            spec=JobSpec("table2", options=(("a", 1),)),
            content_hash="c" * 64,
            code_version="v1",
            values=[10, 20],
            selected=selected,
            full=full,
            assembled={"table": [10, 20]},
        )

    def test_complete_uses_assembled(self):
        document = self._document()
        assert document["cells"]["complete"] is True
        assert document["result"] == {"table": [10, 20]}

    def test_partial_uses_raw_values(self):
        document = self._document(selected=2, full=5)
        assert document["cells"]["complete"] is False
        assert document["result"] == [10, 20]

    def test_canonical_payload_is_deterministic(self):
        payload = canonical_payload(self._document())
        assert payload == canonical_payload(self._document())
        assert payload.endswith(b"\n")
        assert json.loads(payload)["content_hash"] == "c" * 64
        # No timestamps anywhere: byte-identical forever.
        assert b"time" not in payload
