"""The executor-layer chaos campaign: the lease protocol under attack.

The full seven-mode matrix runs in CI (``python -m repro chaos
executor``); here the unit layer pins the deterministic fault decision
function and the plan taxonomy, and one end-to-end slice drives a real
two-worker topology through a SIGKILL fault to the byte-identical
verdict -- fast enough for the tier-1 suite, honest enough to catch a
broken recovery path.
"""

import json

import pytest

from repro.faults import (
    EXECUTOR_FAULT_KINDS,
    EXECUTOR_FAULT_MODES,
    ExecutorChaosConfig,
    FaultPlan,
    FaultSpec,
    default_executor_plan,
    run_executor_campaign,
)


class TestExecutorPlan:
    def test_default_plan_covers_every_kind(self):
        plan = default_executor_plan()
        assert [spec.kind for spec in plan.specs] == list(
            EXECUTOR_FAULT_KINDS
        )
        for spec in plan.specs:
            assert spec.layer == "executor"
            assert spec.trigger == 1

    def test_modes_and_kinds_agree(self):
        # Every chaos mode is a campaign kind; the campaign adds only the
        # cross-host poison case (driven by poison_idents, not a mode).
        assert set(EXECUTOR_FAULT_MODES) | {"cross-host-poison"} == set(
            EXECUTOR_FAULT_KINDS
        )

    def test_plan_round_trips_through_json(self):
        plan = default_executor_plan(seed=11)
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestExecutorChaosConfig:
    def test_fault_decision_is_deterministic(self):
        config = ExecutorChaosConfig(seed=4, rate=1.0)
        decisions = [
            config.fault_for(f"cell-{i}", 1) for i in range(10)
        ]
        assert decisions == [
            config.fault_for(f"cell-{i}", 1) for i in range(10)
        ]
        assert all(mode in EXECUTOR_FAULT_MODES for mode in decisions)

    def test_rate_zero_is_honest(self):
        config = ExecutorChaosConfig(seed=4, rate=0.0)
        assert all(
            config.fault_for(f"cell-{i}", 1) is None for i in range(10)
        )

    def test_attempts_beyond_max_are_honest(self):
        config = ExecutorChaosConfig(seed=4, rate=1.0, max_attempt=1)
        assert config.fault_for("cell", 2) is None

    def test_poison_overrides_everything(self):
        config = ExecutorChaosConfig(
            seed=4, rate=0.0, poison_idents=("bad/cell",)
        )
        for attempt in (1, 2, 5):
            assert config.fault_for("bad/cell", attempt) == "poison"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ExecutorChaosConfig(modes=("made-up",))

    def test_round_trips_through_dict(self):
        config = ExecutorChaosConfig(
            seed=9, modes=("worker-sigkill",), rate=0.25,
            freeze_seconds=1.5, poison_idents=("a", "b"),
        )
        payload = json.loads(json.dumps(config.to_dict()))
        assert ExecutorChaosConfig.from_dict(payload) == config


class TestExecutorCampaignSlice:
    def test_sigkill_slice_masked_and_byte_identical(self, tmp_path):
        plan = FaultPlan(
            name="executor-slice",
            seed=2019,
            specs=(FaultSpec(kind="worker-sigkill", trigger=1),),
        )
        report = run_executor_campaign(
            tmp_path, plan=plan, cells=4, workers=2
        )
        assert report.baseline_violations == []
        assert report.silent_faults == []
        assert report.ok
        (row,) = report.rows
        assert row.kind == "worker-sigkill"
        assert row.injections >= 1
        assert "lease-reclaim" in row.detected_by
        assert "artifact-match" in row.detected_by
