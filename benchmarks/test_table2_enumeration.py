"""Benchmark: regenerate Table 2 (the 24 vulnerabilities) from scratch.

Runs the full derivation pipeline -- 1000-triple enumeration, symbolic
reduction, mechanized effectiveness analysis -- and prints the resulting
table, asserting exact agreement with the paper.
"""

from repro.model import (
    derive_vulnerabilities,
    format_table,
    table2_vulnerabilities,
)


def test_table2_derivation(benchmark):
    derived = benchmark(derive_vulnerabilities)
    assert set(derived) == set(table2_vulnerabilities())
    benchmark.extra_info["vulnerabilities"] = len(derived)
    print()
    print("Table 2 -- all timing-based TLB vulnerabilities (derived):")
    print(format_table(derived))
