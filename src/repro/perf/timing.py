"""Trace-driven timing model: IPC and MPKI per workload (Figure 7 metrics).

The model matches the CPU of :mod:`repro.isa`: one cycle per instruction,
plus the TLB latency (hit latency, or hit latency + page-table walk) for
every memory access.  Multiprogrammed scenarios interleave the processes
round-robin with an instruction quantum, applying the OS's context-switch
TLB policy, exactly like the paper's Linux runs where RSA decrypts
continuously while a SPEC benchmark runs in the background.

All translations and the switch-policy flushing go through one shared
:class:`repro.sim.MemorySystem`; pass a ``bus`` to observe the run.

Two interchangeable drive loops exist: the reference :class:`_Runner`
(per-event generator dispatch, ``AccessResult`` objects) and the
:class:`_FastRunner` (the :mod:`repro.sim.kernel` fast path: traces
compiled to flat arrays, packed-int results).  They are counter-for-counter
equivalent -- ``tests/sim/test_fastpath_equivalence.py`` and ``repro bench``
enforce it -- and ``fastpath=False`` selects the reference loop.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.mmu import PageTableWalker, SwitchPolicy, make_walker
from repro.sim.events import EventBus
from repro.sim.kernel import (
    KERNEL_TELEMETRY,
    CompiledTrace,
    RunState,
    supports_fastpath,
    supports_runpath,
)
from repro.sim.system import MemorySystem
from repro.tlb.base import BaseTLB
from repro.workloads.trace import Workload

#: The batched translation kernels ``simulate`` can drive a quantum with.
#: ``"access"`` = per-position :meth:`BaseTLB.translate_slice`; ``"run"``
#: = the run-granular :meth:`BaseTLB.translate_runs` tier (structural
#: pre-pass + reuse oracle; see :mod:`repro.sim.kernel`).  Both are
#: differentially verified against the reference loop, so the axis is a
#: speed knob with byte-identical results.
KERNELS = ("access", "run")


@dataclass
class PerfResult:
    """Per-process (or aggregate) performance counters."""

    name: str
    instructions: int = 0
    cycles: int = 0
    memory_accesses: int = 0
    misses: int = 0
    #: Context switches charged to this result.  Zero for per-process
    #: results; the ``"total"`` aggregate reports the run's switch count.
    switches: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (Figure 7a-c)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        """TLB misses per kilo-instruction (Figure 7d-f)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    def absorb(self, other: "PerfResult") -> None:
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.memory_accesses += other.memory_accesses
        self.misses += other.misses
        self.switches += other.switches


@dataclass(frozen=True)
class ScheduledProcess:
    """One process of a multiprogrammed run."""

    workload: Workload
    asid: int
    #: Instruction budget; None runs until the workload's trace ends.
    instructions: Optional[int] = None


def simulate(
    tlb: BaseTLB,
    processes: Sequence[ScheduledProcess],
    walker: Optional[PageTableWalker] = None,
    quantum: int = 10_000,
    switch_policy: SwitchPolicy = SwitchPolicy.KEEP,
    seed: int = 0,
    bus: Optional[EventBus] = None,
    fastpath: bool = True,
    kernel: str = "run",
) -> Dict[str, PerfResult]:
    """Run the processes to completion, returning per-process results plus
    a ``"total"`` aggregate (which also reports the context-switch count).

    ``fastpath`` selects the compiled :class:`_FastRunner` loop when the
    TLB supports it; ``kernel`` picks that loop's batched translation
    kernel (:data:`KERNELS`): ``"run"`` drives quanta through the
    run-granular :meth:`BaseTLB.translate_runs` tier, ``"access"``
    through per-position :meth:`BaseTLB.translate_slice`.  Results are
    identical along both axes (differentially verified), so these are
    purely speed knobs.
    """
    if not processes:
        raise ValueError("need at least one process")
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    memory = MemorySystem(
        tlb,
        walker or make_walker(),
        switch_policy=switch_policy,
        bus=bus,
    )

    if fastpath and supports_fastpath(tlb):
        use_runs = kernel == "run" and supports_runpath(tlb)
        runners = [
            _FastRunner(
                process,
                memory,
                random.Random(seed * 1000003 + index),
                use_runs=use_runs,
            )
            for index, process in enumerate(processes)
        ]
    else:
        runners = [
            _Runner(process, memory, random.Random(seed * 1000003 + index))
            for index, process in enumerate(processes)
        ]
    if len(runners) == 1:
        # Single-process runs need no per-quantum rescheduling: latch the
        # ASID once (repeat same-ASID switches are no-ops anyway) and spin
        # the one runner to completion.
        runner = runners[0]
        memory.context_switch(runner.process.asid)
        while not runner.done:
            runner.run_quantum(quantum)
    else:
        while any(not runner.done for runner in runners):
            for runner in runners:
                if runner.done:
                    continue
                memory.context_switch(runner.process.asid)
                runner.run_quantum(quantum)

    results = {runner.process.workload.name: runner.result for runner in runners}
    total = PerfResult(name="total")
    for runner in runners:
        total.absorb(runner.result)
        state = getattr(runner, "_run_state", None)
        if state is not None:
            KERNEL_TELEMETRY.record(state)
    total.switches = memory.switches
    results["total"] = total
    return results


class _Runner:
    """Drives one process's trace against the shared memory system."""

    def __init__(
        self,
        process: ScheduledProcess,
        memory: MemorySystem,
        rng: random.Random,
    ) -> None:
        self.process = process
        self._memory = memory
        self._events: Iterator = process.workload.events(rng)
        self._pending: Optional[Tuple[int, int]] = None
        self.result = PerfResult(name=process.workload.name)
        self.done = False

    def run_quantum(self, quantum: int) -> None:
        budget = quantum
        limit = self.process.instructions
        result = self.result
        while budget > 0:
            if limit is not None and result.instructions >= limit:
                self.done = True
                return
            event = self._pending or next(self._events, None)
            self._pending = None
            if event is None:
                self.done = True
                return
            gap, vpn = event
            cost_instructions = gap + 1
            if cost_instructions > budget and cost_instructions > quantum:
                # An event larger than a whole quantum: execute it anyway
                # (it cannot be split), charging it to this slice.
                pass
            elif cost_instructions > budget:
                self._pending = event
                return
            access = self._memory.translate(vpn, self.process.asid)
            result.instructions += cost_instructions
            result.cycles += gap + access.cycles
            result.memory_accesses += 1
            if access.miss:
                result.misses += 1
            budget -= cost_instructions


class _FastRunner:
    """:class:`_Runner` over a compiled trace and the packed fast path.

    Same quantum semantics as the reference runner -- an event costing more
    than the whole quantum executes anyway (provided budget remains); one
    merely exceeding the remaining budget pends (here: the cursor simply
    does not advance).  The quantum's slice boundary is found with one
    binary search over the trace's cumulative-cost array, and the slice is
    translated in one batched call -- :meth:`BaseTLB.translate_runs` with
    a persistent cross-quantum :class:`RunState` under the ``"run"``
    kernel, :meth:`BaseTLB.translate_slice` under ``"access"`` -- so
    neither budget arithmetic nor a Python call is paid per event.  With
    observers subscribed to the bus, quanta fall back to a per-event loop
    through ``MemorySystem.translate_fast`` (itself reference-equivalent),
    so the event stream stays complete; the run kernel's resume checks
    notice the skipped positions and rebuild their proofs, so mixing is
    safe.
    """

    def __init__(
        self,
        process: ScheduledProcess,
        memory: MemorySystem,
        rng: random.Random,
        use_runs: bool = False,
    ) -> None:
        self.process = process
        self._memory = memory
        self._trace = CompiledTrace(process.workload.events(rng))
        self._cursor = 0
        self._run_state = RunState() if use_runs else None
        self.result = PerfResult(name=process.workload.name)
        self.done = False

    def run_quantum(self, quantum: int) -> None:
        memory = self._memory
        if memory.bus.active:
            self._run_quantum_evented(quantum)
            return
        result = self.result
        limit = self.process.instructions
        remaining = None if limit is None else limit - result.instructions
        if remaining is not None and remaining <= 0:
            self.done = True
            return
        trace = self._trace
        cum = trace.cum
        cursor = self._cursor
        base = cum[cursor - 1] if cursor else 0
        reach = base + quantum
        # Compile events until the quantum's window is covered (or the
        # stream ends); each ensure() pulls at least one chunk.
        compiled = len(cum)
        while not trace.exhausted and (
            compiled <= cursor or cum[compiled - 1] <= reach
        ):
            compiled = trace.ensure(compiled + 1)
        if cursor >= compiled:
            self.done = True
            return
        # Largest prefix of events fitting the budget...
        stop = bisect_right(cum, reach, cursor, compiled)
        # ...extended by one oversized event (cost > quantum) if budget
        # remains when it is reached, exactly like the reference loop.
        if (
            stop < compiled
            and (stop == cursor or cum[stop - 1] < reach)
            and trace.gaps[stop] + 1 > quantum
        ):
            stop += 1
        if remaining is not None:
            # The instruction limit is checked *before* each event: events
            # run while the pre-event instruction count is below it.
            stop = min(stop, bisect_left(cum, base + remaining, cursor, compiled) + 1)
        # stop >= cursor + 1 always: the first event either fits the full
        # budget, is an oversized execute-anyway, and passes the limit
        # pre-check (remaining > 0 was verified above).
        count = stop - cursor
        state = self._run_state
        if state is not None:
            cycles, misses = memory.tlb.translate_runs(
                trace, cursor, stop, self.process.asid, memory.walker, state
            )
        else:
            cycles, misses = memory.tlb.translate_slice(
                trace.vpns, cursor, stop, self.process.asid, memory.walker
            )
        cost = cum[stop - 1] - base
        self._cursor = stop
        memory.accesses += count
        memory.cycles += cycles
        result.instructions += cost
        result.cycles += (cost - count) + cycles
        result.memory_accesses += count
        result.misses += misses
        # The reference loop marks itself done *within* a quantum when,
        # with budget left over, the limit pre-check fails or the trace
        # ends; mirror that here so multiprogrammed scheduling (and hence
        # the context-switch count) is identical.
        if quantum - cost > 0:
            if (remaining is not None and remaining - cost <= 0) or (
                stop >= compiled and trace.exhausted
            ):
                self.done = True

    def _run_quantum_evented(self, quantum: int) -> None:
        budget = quantum
        limit = self.process.instructions
        result = self.result
        trace = self._trace
        gaps = trace.gaps
        vpns = trace.vpns
        compiled = len(gaps)
        cursor = self._cursor
        translate_fast = self._memory.translate_fast
        asid = self.process.asid
        instructions = result.instructions
        cycles = result.cycles
        accesses = result.memory_accesses
        misses = result.misses
        while budget > 0:
            if limit is not None and instructions >= limit:
                self.done = True
                break
            if cursor >= compiled:
                compiled = trace.ensure(cursor + 1)
                if cursor >= compiled:
                    self.done = True
                    break
            gap = gaps[cursor]
            cost = gap + 1
            if cost > budget and cost <= quantum:
                break  # Pend: the event runs in the next quantum.
            packed = translate_fast(vpns[cursor], asid)
            cursor += 1
            instructions += cost
            cycles += gap + (packed >> 2)
            accesses += 1
            if not packed & 0b10:
                misses += 1
            budget -= cost
        self._cursor = cursor
        result.instructions = instructions
        result.cycles = cycles
        result.memory_accesses = accesses
        result.misses = misses
