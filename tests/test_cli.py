"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_design_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table4", "--designs", "XX"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["table2"],
            ["table4", "--trials", "5"],
            ["table7", "--evaluate"],
            ["fig7", "--configs", "4W 32"],
            ["table5"],
            ["mitigations", "--trials", "5"],
            ["sweeps"],
            ["attack", "--designs", "SA"],
            ["covert", "--bits", "50"],
            ["hierarchy-sweep", "--trials", "2"],
            ["chaos", "sim", "--design", "RF+SA"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestExecution:
    def test_table2_exits_zero_and_prints_table(self, capsys):
        assert main(["table2", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "TLB Prime + Probe" in out
        assert "exact match with the paper's Table 2: True" in out

    def test_table4_small(self, capsys):
        assert main(["table4", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "defended rows: SA=10/24, SP=14/24, RF=24/24" in out

    def test_table4_single_design(self, capsys):
        assert main(["table4", "--trials", "10", "--designs", "SA"]) == 0
        out = capsys.readouterr().out
        assert "== SA TLB ==" in out and "== RF TLB ==" not in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "fit quality" in out

    def test_table7_listing(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "TLB Flush + Flush" in out

    def test_fig7_slice(self, capsys):
        assert (
            main(
                [
                    "fig7",
                    "--configs",
                    "4W 32",
                    "--rsa-runs",
                    "3",
                    "--spec-instructions",
                    "20000",
                    "--designs",
                    "SA",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "MPKI" in out

    def test_attack(self, capsys):
        assert main(["attack", "--designs", "SA", "--key-bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "FULL KEY RECOVERED" in out

    def test_covert(self, capsys):
        assert main(["covert", "--bits", "40", "--designs", "SA"]) == 0
        out = capsys.readouterr().out
        assert "capacity" in out

    def test_mitigations(self, capsys):
        assert main(["mitigations", "--trials", "10"]) == 0
        out = capsys.readouterr().out
        assert "Sanctum" in out


class TestExtensionCommands:
    def test_hierarchy_command(self, capsys):
        assert main(["hierarchy", "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "RF L1 + RF L2" in out

    def test_hierarchy_sweep_command(self, capsys):
        assert main(
            ["hierarchy-sweep", "--trials", "2", "--rsa-runs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "hierarchy sweep" in out
        assert "RF+RF+pwc" in out
        assert "refill-leakage cross-check" in out

    def test_chaos_design_choices_include_hierarchies(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "sim", "--design", "XX+SA"])
        args = build_parser().parse_args(
            ["chaos", "sim", "--design", "SA+SA"]
        )
        assert args.design == "SA+SA"

    def test_largepages_command(self, capsys):
        assert main(["largepages", "--trials", "8"]) == 0
        out = capsys.readouterr().out
        assert "2 MiB" in out

    def test_table7_without_evaluation_is_fast(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "measured defence" not in out
