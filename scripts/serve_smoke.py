#!/usr/bin/env python
"""CI smoke test for ``python -m repro serve``.

Boots the real server as a subprocess, submits a small job over HTTP,
and holds the service to its contract:

1. ``/v1/health`` answers while the server is coming up;
2. the submitted job runs to ``done`` and its result document downloads
   with a SHA-256 that matches both the response header and the bytes;
3. the served document is *byte-identical* to what a direct, in-process
   runner invocation of the same spec produces -- the service adds
   transport, not meaning;
4. the server leaks no child processes while idle;
5. SIGTERM produces a graceful exit with code 0.

Any violation exits nonzero (and says why), so the CI job fails loudly.
"""

import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

EXPERIMENT = "table2"  # the cheapest full experiment (pure derivation)

#: The hierarchy-sweep round-trip: one cross-product design's cell batch
#: (its 7 strategy rows + its perf point) at smoke-sized trials, carried
#: entirely by the spec -- ``trials`` must lower onto the sweep's own
#: option and the declarative HierarchySpec payloads must survive the
#: worker boundary.
SWEEP_SPEC = {
    "experiment": "hierarchy_sweep",
    "trials": 2,
    "options": {"hierarchy_sweep_rsa_runs": 2},
    "filters": ["hierarchy_sweep/RF+SA/*", "hierarchy_sweep/perf/RF+SA"],
}


def fail(message: str):
    print(f"serve smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def http_json(method: str, url: str, payload=None, timeout=30):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def wait_for_health(base: str, process: subprocess.Popen, deadline: float):
    while time.monotonic() < deadline:
        if process.poll() is not None:
            fail(f"server exited early with code {process.returncode}")
        try:
            status, _headers, _body = http_json("GET", f"{base}/v1/health")
            if status == 200:
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.2)
    fail("server never became healthy")


def expected_payload(spec_payload) -> bytes:
    """What a direct runner invocation of the same spec produces."""
    from repro.runner.cache import code_fingerprint
    from repro.runner.registry import (
        ensure_default_experiments,
        get_experiment,
        matches_filter,
    )
    from repro.runner.scheduler import InProcessExecutor
    from repro.serve.jobs import canonical_payload, parse_spec, result_document
    from repro.runner.experiments import DEFAULT_OPTIONS

    ensure_default_experiments()
    spec = parse_spec(spec_payload)
    experiment = get_experiment(spec.experiment)
    options = dict(DEFAULT_OPTIONS)
    options.update(spec.options_dict)
    all_units = experiment.units(options)
    if spec.filters:
        units = [
            unit for unit in all_units
            if matches_filter(unit, spec.filters)
        ]
    else:
        units = list(all_units)
    executor = InProcessExecutor()
    values = []
    for unit in units:
        outcome = executor.submit(unit)
        if outcome.failed:
            fail(f"direct run of {unit.ident} failed: {outcome.error}")
        values.append(outcome.value)
    code_version = code_fingerprint()
    complete = len(units) == len(all_units)
    document = result_document(
        spec=spec,
        content_hash=spec.content_hash(code_version),
        code_version=code_version,
        values=values,
        selected=len(units),
        full=len(all_units),
        assembled=(
            experiment.assemble(values, options) if complete else None
        ),
    )
    return canonical_payload(document)


def child_pids(pid: int):
    try:
        with open(f"/proc/{pid}/task/{pid}/children") as handle:
            return [int(field) for field in handle.read().split()]
    except OSError:
        return []


def run_job(base: str, spec_payload, label: str) -> bytes:
    """Submit a spec, poll to done, and fetch its sha-verified document."""
    status, _headers, body = http_json(
        "POST", f"{base}/v1/jobs", spec_payload
    )
    submitted = json.loads(body)
    if status != 202 or submitted.get("disposition") != "queued":
        fail(f"{label}: submit came back {status} {submitted}")
    print(f"serve smoke: {label} job {submitted['job_id']} queued"
          f" ({submitted['cells']} cells)")

    deadline = time.monotonic() + 120
    while True:
        if time.monotonic() > deadline:
            fail(f"{label}: job never finished")
        _status, _headers, body = http_json(
            "GET", base + submitted["status_url"]
        )
        job = json.loads(body)
        if job["state"] == "failed":
            fail(f"{label}: job failed: {job.get('error')}")
        if job["state"] == "done":
            break
        time.sleep(0.3)

    status, headers, payload = http_json("GET", base + job["result_url"])
    if status != 200:
        fail(f"{label}: result fetch came back {status}")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != headers.get("X-Repro-Sha256"):
        fail(f"{label}: served bytes do not match the X-Repro-Sha256 header")
    if digest != job["result_sha256"]:
        fail(f"{label}: served bytes do not match the job's result_sha256")

    direct = expected_payload(spec_payload)
    if payload != direct:
        fail(
            f"{label}: served document differs from a direct runner"
            f" invocation (served sha {digest},"
            f" direct sha {hashlib.sha256(direct).hexdigest()})"
        )
    print(f"serve smoke: {label} result verified (sha256 {digest[:16]}...,"
          " byte-identical to the direct run)")
    return payload


def main() -> int:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    state_dir = tempfile.mkdtemp(prefix="serve-smoke-state-")
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--state-dir", state_dir, "--cache-dir", cache_dir,
        ],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        wait_for_health(base, process, time.monotonic() + 30)
        print(f"serve smoke: healthy on {base}")

        run_job(base, {"experiment": EXPERIMENT}, EXPERIMENT)

        # The hierarchy-sweep spec round-trip: declarative HierarchySpec
        # payloads through the spec's trials knob and cell filters.
        payload = json.loads(run_job(base, SWEEP_SPEC, "hierarchy_sweep"))
        if payload["options"].get("hierarchy_sweep_trials") != 2:
            fail("hierarchy_sweep: trials did not lower onto the option")
        if payload["cells"]["selected"] != 8 or payload["cells"]["complete"]:
            fail(
                "hierarchy_sweep: expected the 8-cell RF+SA batch, got"
                f" {payload['cells']}"
            )

        leaked = child_pids(process.pid)
        if leaked:
            fail(f"server is holding child processes while idle: {leaked}")

        process.send_signal(signal.SIGTERM)
        try:
            returncode = process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            fail("server did not shut down within 15s of SIGTERM")
        if returncode != 0:
            fail(f"server exited {returncode} on SIGTERM (want graceful 0)")
        print("serve smoke: graceful shutdown, exit 0")
        print("serve smoke: OK")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
