"""The existing mitigations of Section 2.3, evaluated with the harness.

The paper surveys five pre-existing (mostly software) approaches and
credits each with a defence count over the 24 Table 2 rows:

* **ASID-tagged SA TLBs** (today's Linux): 10 of 24 -- already the
  baseline ``TLBKind.SA`` evaluation;
* **Sanctum's security-monitor flush / Intel SGX's enclave-exit flush**:
  flushing the TLB on every protection-domain switch adds the 4 external
  miss-based rows, for 14 of 24;
* **fully associative TLBs**: a single set means miss-based rows carry no
  set-conflict information, for 18 of 24.

This module reproduces those counts by re-running the Table 4 harness
under each mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.security.evaluate import (
    EvaluationConfig,
    SecurityEvaluator,
    VulnerabilityResult,
)
from repro.security.kinds import TLBKind
from repro.tlb import fully_associative


@dataclass(frozen=True)
class MitigationResult:
    """One mitigation's measured defence count."""

    name: str
    results: List[VulnerabilityResult]
    paper_claim: int

    @property
    def defended(self) -> int:
        return sum(1 for result in self.results if result.defended)

    @property
    def matches_paper(self) -> bool:
        return self.defended == self.paper_claim


def evaluate_asid_baseline(trials: int = 60) -> MitigationResult:
    """Standard SA TLB with ASIDs: the paper's 10-of-24 baseline."""
    evaluator = SecurityEvaluator(EvaluationConfig(trials=trials))
    return MitigationResult(
        name="ASID-tagged SA TLB (Linux baseline)",
        results=evaluator.evaluate_kind(TLBKind.SA),
        paper_claim=10,
    )


def evaluate_flush_on_switch(trials: int = 60) -> MitigationResult:
    """Sanctum/SGX-style full flush on every process switch: 14 of 24."""
    evaluator = SecurityEvaluator(
        EvaluationConfig(trials=trials, flush_on_switch=True)
    )
    return MitigationResult(
        name="SA TLB + flush on switch (Sanctum / SGX)",
        results=evaluator.evaluate_kind(TLBKind.SA),
        paper_claim=14,
    )


def evaluate_fully_associative(
    entries: int = 32, trials: int = 60
) -> MitigationResult:
    """A fully associative TLB: miss-based rows lose their signal (18/24).

    With a single set, the victim's secret access contends with *every*
    translation equally, so eviction patterns no longer depend on whether
    ``u`` "maps to the tested block" -- only the 6 hit-based Internal
    Collision rows (exact-address collisions) survive.
    """
    evaluator = SecurityEvaluator(
        EvaluationConfig(tlb=fully_associative(entries), trials=trials)
    )
    return MitigationResult(
        name=f"fully associative {entries}-entry TLB",
        results=evaluator.evaluate_kind(TLBKind.SA),
        paper_claim=18,
    )


def evaluate_all_mitigations(trials: int = 60) -> List[MitigationResult]:
    """Section 2.3's ladder, plus the paper's own designs for reference."""
    evaluator = SecurityEvaluator(EvaluationConfig(trials=trials))
    ladder = [
        evaluate_asid_baseline(trials),
        evaluate_flush_on_switch(trials),
        evaluate_fully_associative(trials=trials),
        MitigationResult(
            name="Static-Partition TLB (this paper)",
            results=evaluator.evaluate_kind(TLBKind.SP),
            paper_claim=14,
        ),
        MitigationResult(
            name="Random-Fill TLB (this paper)",
            results=evaluator.evaluate_kind(TLBKind.RF),
            paper_claim=24,
        ),
    ]
    return ladder


def format_mitigation_ladder(results: List[MitigationResult]) -> str:
    lines = [
        f"{'Mitigation':45} {'defended':>9} {'paper':>6}  match",
        "-" * 72,
    ]
    for result in results:
        lines.append(
            f"{result.name:45} {result.defended:>6}/24 {result.paper_claim:>6}  "
            f"{'yes' if result.matches_paper else 'NO'}"
        )
    return "\n".join(lines)
