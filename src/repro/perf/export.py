"""CSV export of evaluation results, for external plotting/analysis.

Writes the Figure 7 cells and Table 4 rows as flat CSV files, so the
regenerated data can be compared against the paper's figures with any
plotting tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.security.evaluate import VulnerabilityResult
from repro.security.kinds import TLBKind

from .harness import Figure7Cell

PathLike = Union[str, Path]


def export_figure7_csv(cells: Sequence[Figure7Cell], path: PathLike) -> int:
    """Write one row per (cell, process); returns the number of rows."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "tlb",
                "config",
                "scenario",
                "rsa_runs",
                "process",
                "instructions",
                "cycles",
                "memory_accesses",
                "misses",
                "ipc",
                "mpki",
            ]
        )
        for cell in cells:
            for process_name, result in sorted(cell.results.items()):
                writer.writerow(
                    [
                        cell.kind.value,
                        cell.config_label,
                        cell.scenario.label,
                        cell.rsa_runs,
                        process_name,
                        result.instructions,
                        result.cycles,
                        result.memory_accesses,
                        result.misses,
                        f"{result.ipc:.6f}",
                        f"{result.mpki:.6f}",
                    ]
                )
                rows += 1
    return rows


def export_table4_csv(
    table: Dict[TLBKind, List[VulnerabilityResult]], path: PathLike
) -> int:
    """Write one row per (design, vulnerability); returns the row count."""
    path = Path(path)
    rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "tlb",
                "strategy",
                "vulnerability",
                "observation",
                "macro_type",
                "n_mm",
                "n_nm",
                "trials",
                "p1_measured",
                "p2_measured",
                "capacity_measured",
                "p1_theory",
                "p2_theory",
                "capacity_theory",
                "defended",
            ]
        )
        for kind, results in table.items():
            for result in results:
                estimate = result.estimate
                writer.writerow(
                    [
                        kind.value,
                        result.vulnerability.strategy.value,
                        result.vulnerability.pattern.pretty(),
                        result.vulnerability.observation.value,
                        result.vulnerability.macro_type.value,
                        estimate.misses_mapped,
                        estimate.misses_unmapped,
                        estimate.trials_per_behaviour,
                        f"{estimate.p1:.6f}",
                        f"{estimate.p2:.6f}",
                        f"{estimate.capacity:.6f}",
                        _theory_field(result.theoretical_p1),
                        _theory_field(result.theoretical_p2),
                        _theory_field(result.theoretical_capacity),
                        int(result.defended),
                    ]
                )
                rows += 1
    return rows


def _theory_field(value) -> str:
    return "" if value is None else f"{value:.6f}"
