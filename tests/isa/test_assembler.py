"""Tests for the benchmark-dialect assembler."""

import pytest

from repro.isa import AssemblyError, DATA_BASE, assemble


class TestText:
    def test_simple_program(self):
        program = assemble(
            """
            li x1, 5
            addi x2, x1, 3
            halt
            """
        )
        assert [i.mnemonic for i in program.instructions] == ["li", "addi", "halt"]
        assert program.instructions[1].imm == 3

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("# header\n\n  li x1, 1  # trailing\nhalt\n")
        assert len(program.instructions) == 2

    def test_labels_record_instruction_index(self):
        program = assemble(
            """
            li x1, 0
            loop:
            addi x1, x1, 1
            beq x1, x2, loop
            halt
            """
        )
        assert program.labels["loop"] == 1
        assert program.instructions[2].symbol == "loop"

    def test_memory_operands(self):
        program = assemble("ldnorm x2, 8(x1)\nsd x3, -8(x4)\nhalt")
        load = program.instructions[0]
        assert load.rd == 2 and load.rs1 == 1 and load.imm == 8
        store = program.instructions[1]
        assert store.rs2 == 3 and store.rs1 == 4 and store.imm == -8

    def test_abi_register_names(self):
        program = assemble("mv a0, t0\nhalt")
        assert program.instructions[0].rd == 10
        assert program.instructions[0].rs1 == 5

    def test_csr_forms(self):
        program = assemble(
            "csrw process_id, 1\ncsrw sbase, x5\ncsrr x3, tlb_miss_count\nhalt"
        )
        imm_write, reg_write, read = program.instructions[:3]
        assert imm_write.imm == 1 and imm_write.rs1 is None
        assert reg_write.rs1 == 5 and reg_write.imm is None
        assert read.csr == "tlb_miss_count" and read.rd == 3

    def test_sfence_forms(self):
        program = assemble("sfence.vma\nsfence.vma x1\nsfence.vma x1, x2\nhalt")
        bare, page, page_asid = program.instructions[:3]
        assert bare.rs1 is None
        assert page.rs1 == 1 and page.rs2 is None
        assert page_asid.rs2 == 2


class TestData:
    def test_dword_layout(self):
        program = assemble(
            """
            .data
            tdat0: .dword 1, 2, 3
            tdat1:
            .dword 4
            .text
            la x1, tdat0
            halt
            """
        )
        assert program.symbols["tdat0"] == DATA_BASE
        assert program.symbols["tdat1"] == DATA_BASE + 24
        assert program.data[DATA_BASE + 8] == 2
        assert program.data[DATA_BASE + 24] == 4

    def test_org_positions_data_on_chosen_pages(self):
        program = assemble(
            """
            .data
            .org 0x20000
            page_a: .dword 7
            .org 0x21000
            page_b: .dword 8
            """
        )
        assert program.symbols["page_a"] == 0x20000
        assert program.symbols["page_b"] == 0x21000

    def test_zero_reserves_space(self):
        program = assemble(
            """
            .data
            head: .dword 1
            gap: .zero 16
            tail: .dword 2
            """
        )
        assert program.symbols["gap"] == DATA_BASE + 8
        assert program.symbols["tail"] == DATA_BASE + 24

    def test_negative_dword_wraps_to_64_bits(self):
        program = assemble(".data\nv: .dword -1\n")
        assert program.data[DATA_BASE] == (1 << 64) - 1


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "frobnicate x1",
            "li x1",
            "ld x1, x2",
            "beq x1, x2",
            "la x1, nowhere\nhalt",
            "j nowhere",
            "csrr x1, bogus_csr\nhalt",
            ".data\n.org 5\n",
            ".data\n.zero 7\n",
            ".dword 5",
            "li q9, 1",
            "loop:\nloop:\nhalt",
        ],
    )
    def test_rejected_sources(self, source):
        if "bogus_csr" in source:
            # CSR validity is checked at execution time, not assembly time.
            program = assemble(source)
            assert program.instructions[0].csr == "bogus_csr"
            return
        with pytest.raises(AssemblyError):
            assemble(source)

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("nop\nnop\nbadop x1\n")
        assert "line 3" in str(excinfo.value)
