"""The MemorySystem facade: delegation, accounting, policies, events."""

from __future__ import annotations

import pytest

from repro.mmu import PageTableWalker, SwitchPolicy
from repro.sim import EventBus, MemorySystem
from repro.sim.events import (
    AccessEvent,
    ContextSwitchEvent,
    EvictEvent,
    FillEvent,
    FlushEvent,
    WalkEvent,
)
from repro.tlb import SetAssociativeTLB, TLBConfig


def build(policy: SwitchPolicy = SwitchPolicy.KEEP, bus=None) -> MemorySystem:
    tlb = SetAssociativeTLB(TLBConfig(entries=8, ways=2))
    return MemorySystem(
        tlb, PageTableWalker(auto_map=True), switch_policy=policy, bus=bus
    )


def subscribe_all(bus: EventBus):
    seen = []
    for event_type in (
        AccessEvent, WalkEvent, FillEvent, EvictEvent, FlushEvent,
        ContextSwitchEvent,
    ):
        bus.subscribe(event_type, seen.append)
    return seen


def test_translate_delegates_and_accounts() -> None:
    memory = build()
    miss = memory.translate(0x10, 1)
    hit = memory.translate(0x10, 1)
    assert miss.miss and hit.hit
    assert memory.accesses == 2
    assert memory.cycles == miss.cycles + hit.cycles
    assert memory.stats.accesses == 2  # The TLB's own counters, unchanged.
    assert memory.resident(0x10, 1)


def test_miss_emits_access_walk_fill_in_order() -> None:
    bus = EventBus()
    seen = subscribe_all(bus)
    memory = build(bus=bus)
    memory.translate(0x10, 1)
    assert [type(event) for event in seen] == [
        AccessEvent, WalkEvent, FillEvent,
    ]
    access, walk, _fill = seen
    assert not access.hit and access.vpn == 0x10
    hit_latency = memory.tlb.config.hit_latency
    assert walk.cycles == access.cycles - hit_latency


def test_hit_emits_only_access() -> None:
    bus = EventBus()
    memory = build(bus=bus)
    memory.translate(0x10, 1)
    seen = subscribe_all(bus)
    memory.translate(0x10, 1)
    assert [type(event) for event in seen] == [AccessEvent]
    assert seen[0].hit


def test_eviction_emits_evict_event() -> None:
    bus = EventBus()
    memory = build(bus=bus)
    nsets = memory.tlb.config.sets
    ways = memory.tlb.config.ways
    pages = [0x100 + i * nsets for i in range(ways + 1)]
    seen = subscribe_all(bus)
    for vpn in pages:
        memory.translate(vpn, 1)
    evicts = [event for event in seen if isinstance(event, EvictEvent)]
    assert len(evicts) == 1
    assert evicts[0].vpn == pages[0]  # LRU: the first page filled.


def test_inactive_bus_skips_event_construction() -> None:
    memory = build()
    memory.translate(0x10, 1)
    assert not memory.bus.active  # Nothing subscribed, nothing emitted.


def test_first_context_switch_only_latches() -> None:
    memory = build(SwitchPolicy.FLUSH_ALL)
    memory.translate(0x10, 1)
    assert memory.context_switch(1) is False
    assert memory.switches == 0
    assert memory.resident(0x10, 1)  # The latch never flushes.
    assert memory.context_switch(1) is False  # Same ASID: no switch.
    assert memory.switches == 0


@pytest.mark.parametrize(
    "policy,expect_own,expect_other",
    [
        (SwitchPolicy.KEEP, True, True),
        (SwitchPolicy.FLUSH_ALL, False, False),
        (SwitchPolicy.FLUSH_OUTGOING, False, True),
    ],
)
def test_switch_policies(policy, expect_own, expect_other) -> None:
    memory = build(policy)
    memory.context_switch(1)
    memory.translate(0x10, 1)  # Outgoing process's entry.
    memory.translate(0x20, 2)  # Another process's entry.
    assert memory.context_switch(2) is True
    assert memory.switches == 1
    assert memory.resident(0x10, 1) == expect_own
    assert memory.resident(0x20, 2) == expect_other


def test_switch_emits_context_switch_then_flush() -> None:
    bus = EventBus()
    memory = build(SwitchPolicy.FLUSH_OUTGOING, bus=bus)
    memory.context_switch(1)
    seen = subscribe_all(bus)
    memory.context_switch(2)
    assert [type(event) for event in seen] == [ContextSwitchEvent, FlushEvent]
    switch, flush = seen
    assert (switch.previous, switch.asid, switch.flushed) == (1, 2, True)
    assert (flush.scope, flush.asid) == ("asid", 1)


def test_flush_helpers_emit_and_delegate() -> None:
    bus = EventBus()
    memory = build(bus=bus)
    memory.translate(0x10, 1)
    memory.translate(0x20, 2)
    seen = subscribe_all(bus)
    memory.flush_asid(1)
    assert not memory.resident(0x10, 1) and memory.resident(0x20, 2)
    memory.flush_all()
    assert not memory.resident(0x20, 2)
    flushes = [event for event in seen if isinstance(event, FlushEvent)]
    assert [(f.scope, f.asid) for f in flushes] == [("asid", 1), ("all", None)]


def test_invalidate_page_reports_presence_and_costs_cycles() -> None:
    bus = EventBus()
    memory = build(bus=bus)
    memory.translate(0x10, 1)
    cycles_before = memory.cycles
    seen = subscribe_all(bus)
    present = memory.invalidate_page(0x10, 1)
    absent = memory.invalidate_page(0x10, 1)
    assert present.hit and not absent.hit
    assert present.cycles > absent.cycles  # Appendix B's timing channel.
    assert memory.cycles == cycles_before + present.cycles + absent.cycles
    flushes = [event for event in seen if isinstance(event, FlushEvent)]
    assert [f.present for f in flushes] == [True, False]
    assert all(f.scope == "page" for f in flushes)


def test_set_secure_region_passthrough() -> None:
    import random

    from repro.tlb import RandomFillTLB

    tlb = RandomFillTLB(
        TLBConfig(entries=8, ways=2), victim_asid=1, rng=random.Random(0)
    )
    memory = MemorySystem(tlb, PageTableWalker(auto_map=True))
    memory.set_secure_region(0x100, 4, victim_asid=1)
    assert tlb.is_secure(0x101, 1)
    # A TLB without region registers silently ignores the call.
    build().set_secure_region(0x100, 4)
