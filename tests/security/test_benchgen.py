"""Tests for the micro security benchmark generator (Section 5.1)."""

import pytest

from repro.isa import assemble
from repro.model.patterns import Observation, ThreeStepPattern, Vulnerability
from repro.model.states import (
    A_A,
    A_A_ALIAS,
    A_D,
    A_INV,
    V_A,
    V_U,
)
from repro.model.table2 import table2_vulnerabilities
from repro.security import (
    BenchmarkLayout,
    alias_page,
    generate,
    layout_for_partitioned_tlb,
    region_size_for,
    secret_page,
)


def vuln(s1, s2, s3, obs):
    return Vulnerability(ThreeStepPattern((s1, s2, s3)), obs)


PRIME_PROBE = vuln(A_D, V_U, A_D, Observation.SLOW)
INTERNAL_COLLISION = vuln(A_D, V_U, V_A, Observation.FAST)
EVICT_TIME = vuln(V_U, A_D, V_U, Observation.SLOW)
BERNSTEIN_A = vuln(V_A, V_U, V_A, Observation.SLOW)


class TestRegionSize:
    def test_small_region_for_d_patterns(self):
        assert region_size_for(PRIME_PROBE) == 3
        assert region_size_for(INTERNAL_COLLISION) == 3
        assert region_size_for(EVICT_TIME) == 3

    def test_large_region_for_in_range_primes(self):
        assert region_size_for(BERNSTEIN_A) == 31
        assert region_size_for(vuln(A_A_ALIAS, V_U, V_A, Observation.FAST)) == 31
        assert region_size_for(vuln(V_U, A_A, V_U, Observation.SLOW)) == 31

    def test_paper_split_over_table2(self):
        sizes = [region_size_for(v) for v in table2_vulnerabilities()]
        # 10 rows involve a/alias in Steps 1-2 (the 31-page scenario);
        # the other 14 use the 3-page region.
        assert sizes.count(31) == 10
        assert sizes.count(3) == 14


class TestSecretPlacement:
    def test_collision_rows_use_u_equals_a(self):
        layout = BenchmarkLayout()
        assert (
            secret_page(INTERNAL_COLLISION, layout, mapped=True, ssize=3)
            == layout.sbase
        )

    def test_eviction_rows_use_same_set_distinct_page(self):
        layout = BenchmarkLayout()
        u = secret_page(BERNSTEIN_A, layout, mapped=True, ssize=31)
        assert u != layout.sbase
        assert u != alias_page(layout)
        assert u % layout.nsets == layout.target_set

    def test_unmapped_secret_is_in_another_set(self):
        layout = BenchmarkLayout()
        for vulnerability in table2_vulnerabilities():
            ssize = region_size_for(vulnerability)
            u = secret_page(vulnerability, layout, mapped=False, ssize=ssize)
            assert u % layout.nsets != layout.target_set
            assert layout.sbase <= u < layout.sbase + ssize


class TestGeneratedPrograms:
    def test_every_table2_benchmark_assembles(self):
        for vulnerability in table2_vulnerabilities():
            for mapped in (True, False):
                program = assemble(generate(vulnerability, mapped=mapped))
                assert program.instructions

    def test_program_structure_prime_probe(self):
        text = generate(PRIME_PROBE, mapped=True)
        assert "csrw sbase," in text
        assert "csrw ssize, 3" in text
        assert "csrw process_id, 0" in text  # attacker
        assert "csrw process_id, 1" in text  # victim
        assert "csrr x5, tlb_miss_count" in text
        assert "pass" in text and "fail" in text
        # The prime and probe each touch nways pages.
        assert text.count("ldnorm") >= 2 * 8
        assert "ldrand" in text  # the secret access is in-region

    def test_hit_based_patterns_use_single_accesses(self):
        text = generate(INTERNAL_COLLISION, mapped=True)
        # Step 1 single d access + step 2 secret + step 3 reload = 3 loads.
        assert text.count("ld") - text.count("ldrand") <= 4

    def test_flush_steps_emit_sfence(self):
        text = generate(vuln(A_INV, V_U, V_A, Observation.FAST))
        assert "sfence.vma" in text

    def test_partitioned_layout_narrows_primes(self):
        layout = layout_for_partitioned_tlb(BenchmarkLayout(), victim_ways=4)
        assert layout.prime_ways_victim == 4
        assert layout.prime_ways_attacker == 4
        text = generate(PRIME_PROBE, layout, mapped=True)
        # Prime (4) + probe (4) d-loads instead of 8 + 8.
        assert text.count("ldnorm") == 8

    def test_prime_excludes_the_secret_page(self):
        # Regression: priming u itself would pre-cache the translation
        # whose presence the attack infers, inverting the signal.
        layout = BenchmarkLayout()
        u = secret_page(BERNSTEIN_A, layout, mapped=True, ssize=31)
        text = generate(BERNSTEIN_A, layout, mapped=True)
        lines = text.splitlines()
        u_label = f"page_{u:x}"
        loads = [i for i, line in enumerate(lines) if f"la x1, {u_label}" in line]
        # The secret page is touched exactly twice: Step 2 and nowhere else
        # (Bernstein's Step 1 and Step 3 are the 'a' accesses).
        assert len(loads) == 1

    def test_mapped_and_unmapped_differ_only_in_u(self):
        mapped = generate(PRIME_PROBE, mapped=True)
        unmapped = generate(PRIME_PROBE, mapped=False)
        differing = [
            (a, b)
            for a, b in zip(mapped.splitlines(), unmapped.splitlines())
            if a != b
        ]
        # The u page label (in text and data) and the trial comment differ.
        assert 0 < len(differing) <= 4

    def test_data_pages_placed_on_their_own_pages(self):
        from repro.isa import assemble

        program = assemble(generate(PRIME_PROBE, mapped=True))
        addresses = sorted(program.symbols.values())
        vpns = [address >> 12 for address in addresses]
        assert len(vpns) == len(set(vpns))


class TestLayoutValidation:
    def test_bases_must_map_to_set_zero(self):
        with pytest.raises(ValueError):
            BenchmarkLayout(sbase=0x101)

    def test_bases_must_be_distinct(self):
        with pytest.raises(ValueError):
            BenchmarkLayout(sbase=0x100, dbase=0x100)

    def test_geometry_must_be_positive(self):
        with pytest.raises(ValueError):
            BenchmarkLayout(nsets=0)
