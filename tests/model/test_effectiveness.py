"""Tests for the mechanized effectiveness analysis (the heart of Table 2)."""


from repro.model.effectiveness import (
    MAPPED_RELATIONS,
    Relation,
    analyze,
    applicable_relations,
    derive_vulnerabilities,
    step3_timings,
)
from repro.model.patterns import Observation, ThreeStepPattern, Vulnerability
from repro.model.states import (
    A_A,
    A_A_ALIAS,
    A_D,
    A_INV,
    STAR,
    V_A,
    V_D,
    V_U,
)
from repro.model.table2 import table2_vulnerabilities


def pattern(*steps):
    return ThreeStepPattern(tuple(steps))


class TestHeadlineDerivation:
    """The central reproduction claim: the pipeline derives exactly Table 2."""

    def test_exactly_24_vulnerabilities(self):
        assert len(derive_vulnerabilities()) == 24

    def test_derived_set_equals_table2(self):
        assert set(derive_vulnerabilities()) == set(table2_vulnerabilities())

    def test_derivation_is_deterministic(self):
        assert derive_vulnerabilities() == derive_vulnerabilities()


class TestApplicableRelations:
    def test_pattern_without_known_in_range_page(self):
        relations = applicable_relations(pattern(A_D, V_U, A_D))
        assert Relation.EQ_A not in relations
        assert Relation.EQ_ALIAS not in relations
        assert Relation.SAME_SET in relations and Relation.DIFF in relations

    def test_pattern_with_a(self):
        relations = applicable_relations(pattern(A_A, V_U, A_A))
        assert Relation.EQ_A in relations
        assert Relation.EQ_ALIAS not in relations

    def test_pattern_with_alias(self):
        relations = applicable_relations(pattern(A_A_ALIAS, V_U, A_A))
        assert Relation.EQ_A in relations
        assert Relation.EQ_ALIAS in relations

    def test_diff_always_possible(self):
        for steps in [(A_D, V_U, A_D), (V_U, A_A, V_U), (A_INV, V_U, V_A)]:
            assert Relation.DIFF in applicable_relations(pattern(*steps))


class TestStepTimings:
    def test_prime_probe_mapped_is_slow(self):
        timings = step3_timings(pattern(A_D, V_U, A_D), Relation.SAME_SET)
        assert timings == frozenset({Observation.SLOW})

    def test_prime_probe_unmapped_is_fast(self):
        timings = step3_timings(pattern(A_D, V_U, A_D), Relation.DIFF)
        assert timings == frozenset({Observation.FAST})

    def test_internal_collision_hit_only_on_equality(self):
        collision = pattern(A_D, V_U, V_A)
        assert step3_timings(collision, Relation.EQ_A) == frozenset(
            {Observation.FAST}
        )
        assert step3_timings(collision, Relation.SAME_SET) == frozenset(
            {Observation.SLOW}
        )
        assert step3_timings(collision, Relation.DIFF) == frozenset(
            {Observation.SLOW}
        )

    def test_star_first_leaves_shadow_unknown(self):
        timings = step3_timings(pattern(STAR, A_A, V_U), Relation.DIFF)
        assert timings == frozenset({Observation.FAST, Observation.SLOW})

    def test_evict_time_eq_a_is_fast(self):
        # Priming with u == a means the attacker's re-access of a hits and
        # does not evict; the aliasing case is what the attack detects.
        evict_time = pattern(V_U, A_A, V_U)
        assert step3_timings(evict_time, Relation.EQ_A) == frozenset(
            {Observation.FAST}
        )
        assert step3_timings(evict_time, Relation.SAME_SET) == frozenset(
            {Observation.SLOW}
        )


class TestAnalyze:
    def test_star_patterns_are_never_effective(self):
        # Rule 7: with an unknown Step 1 the attacker cannot attribute a
        # fast observation to u == a rather than stale TLB state.
        for middle in (A_A, V_A, A_D, V_D):
            assert analyze(pattern(STAR, middle, V_U)) is None

    def test_known_probe_after_unrelated_prime_is_dead(self):
        # Priming with a and probing with d (or vice versa) always misses.
        assert analyze(pattern(A_A, V_U, A_D)) is None
        assert analyze(pattern(A_INV, V_U, A_D)) is None
        assert analyze(pattern(A_A_ALIAS, V_U, V_D)) is None

    def test_observation_matches_table2(self):
        for expected in table2_vulnerabilities():
            derived = analyze(expected.pattern)
            assert derived == expected

    def test_analyze_returns_vulnerability_type(self):
        result = analyze(pattern(A_D, V_U, A_D))
        assert isinstance(result, Vulnerability)
        assert result.observation is Observation.SLOW


class TestRule7Disambiguation:
    def test_informative_observations_are_subset_of_mapped(self):
        for vulnerability in derive_vulnerabilities():
            relations = applicable_relations(vulnerability.pattern)
            consistent = {
                relation
                for relation in relations
                if vulnerability.observation
                in step3_timings(vulnerability.pattern, relation)
            }
            assert consistent
            assert consistent <= MAPPED_RELATIONS

    def test_complement_observation_always_includes_diff(self):
        # The opposite observation is what the attacker sees when the secret
        # does not map -- it must be possible under the DIFF hypothesis.
        for vulnerability in derive_vulnerabilities():
            opposite = (
                Observation.SLOW
                if vulnerability.observation is Observation.FAST
                else Observation.FAST
            )
            timings = step3_timings(vulnerability.pattern, Relation.DIFF)
            assert opposite in timings
