"""Replacement policies.

A policy chooses which way of a set to evict when a fill finds no invalid
slot.  The paper's TLBs use per-set (or, in the SP TLB, per-partition) LRU;
FIFO and random policies are provided for ablation studies.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence

from .config import ReplacementKind
from .entry import TLBEntry


class ReplacementPolicy(abc.ABC):
    """Strategy for picking an eviction victim among candidate ways."""

    @abc.abstractmethod
    def choose_victim(self, candidates: Sequence[TLBEntry]) -> TLBEntry:
        """Pick the entry to evict.  ``candidates`` is non-empty and contains
        only valid entries (invalid slots are always preferred upstream)."""

    def select(self, candidates: Sequence[TLBEntry]) -> TLBEntry:
        """Prefer an invalid slot; otherwise defer to the policy."""
        if not candidates:
            raise ValueError("no candidate ways to replace")
        for entry in candidates:
            if not entry.valid:
                return entry
        return self.choose_victim(candidates)


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used entry (the paper's policy)."""

    def choose_victim(self, candidates: Sequence[TLBEntry]) -> TLBEntry:
        return min(candidates, key=lambda entry: entry.last_used)


class FIFOPolicy(ReplacementPolicy):
    """Evict the oldest fill regardless of use."""

    def choose_victim(self, candidates: Sequence[TLBEntry]) -> TLBEntry:
        return min(candidates, key=lambda entry: entry.filled_at)


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the policy real TLBs/caches actually implement.

    A binary tree of direction bits over the ways; every access flips the
    bits along its path away from the touched way, and the victim is found
    by following the bits.  Needs a power-of-two candidate count; this
    implementation reconstructs the tree state from the entries' use
    timestamps, which reproduces PLRU's victim choice without threading
    per-set tree state through the TLB designs.
    """

    def choose_victim(self, candidates: Sequence[TLBEntry]) -> TLBEntry:
        count = len(candidates)
        if count & (count - 1):
            raise ValueError("tree PLRU needs a power-of-two way count")
        ways = list(candidates)
        # Replay accesses in age order to settle the direction bits.
        bits = [0] * max(count - 1, 1)
        order = sorted(range(count), key=lambda i: ways[i].last_used)
        for way_index in order:
            node, low, high = 0, 0, count
            while high - low > 1:
                middle = (low + high) // 2
                if way_index < middle:
                    bits[node] = 1  # point away: toward the upper half
                    node, high = 2 * node + 1, middle
                else:
                    bits[node] = 0
                    node, low = 2 * node + 2, middle
        node, low, high = 0, 0, count
        while high - low > 1:
            middle = (low + high) // 2
            if bits[node]:
                node, low = 2 * node + 2, middle
            else:
                node, high = 2 * node + 1, middle
        return ways[low]


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way (seeded for reproducibility)."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)

    def choose_victim(self, candidates: Sequence[TLBEntry]) -> TLBEntry:
        return self._rng.choice(list(candidates))


def make_policy(
    kind: ReplacementKind, rng: Optional[random.Random] = None
) -> ReplacementPolicy:
    """Instantiate the policy selected by a :class:`TLBConfig`."""
    if kind is ReplacementKind.LRU:
        return LRUPolicy()
    if kind is ReplacementKind.FIFO:
        return FIFOPolicy()
    if kind is ReplacementKind.RANDOM:
        return RandomPolicy(rng)
    if kind is ReplacementKind.TREE_PLRU:
        return TreePLRUPolicy()
    raise ValueError(f"unknown replacement kind {kind}")  # pragma: no cover
