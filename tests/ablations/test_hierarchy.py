"""Tests for the two-level hierarchy security ablation."""

import pytest

from repro.ablations import (
    evaluate_hierarchy,
    format_hierarchy_results,
)
from repro.model.patterns import Strategy
from repro.security import TLBKind

TRIALS = 25


@pytest.fixture(scope="module")
def sa_sa():
    return evaluate_hierarchy(TLBKind.SA, TLBKind.SA, trials=TRIALS)


@pytest.fixture(scope="module")
def rf_sa():
    return evaluate_hierarchy(TLBKind.RF, TLBKind.SA, trials=TRIALS)


@pytest.fixture(scope="module")
def rf_rf():
    return evaluate_hierarchy(TLBKind.RF, TLBKind.RF, trials=TRIALS)


class TestHierarchySecurity:
    def test_standard_hierarchy_is_vulnerable(self, sa_sa):
        assert sa_sa.defended < 14

    def test_protecting_only_l1_is_insufficient(self, rf_sa):
        # The paper's "can be applied to other levels of TLB" is necessary:
        # the victim's translations land in the standard L2 on the walk
        # path, so several rows leak through L2 evictions/hits.
        assert rf_sa.defended < 24
        leaked = {v.strategy for v in rf_sa.vulnerable_rows()}
        assert Strategy.INTERNAL_COLLISION in leaked

    def test_l1_protection_still_helps(self, sa_sa, rf_sa):
        assert rf_sa.defended > sa_sa.defended

    def test_protecting_both_levels_defends_everything(self, rf_rf):
        assert rf_rf.defended == 24

    def test_formatting(self, sa_sa, rf_rf):
        text = format_hierarchy_results([sa_sa, rf_rf])
        assert "RF L1 + RF L2" in text
        assert "/24" in text
