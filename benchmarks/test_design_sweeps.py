"""Benchmark: the design-space sweeps (the paper's future-work knobs)."""

from repro.ablations import (
    format_partition_sweep,
    format_region_sweep,
    sweep_replacement_policy,
    sweep_rf_region,
    sweep_sp_partition,
)
from repro.tlb import ReplacementKind


def test_sp_partition_sweep(benchmark):
    points = benchmark.pedantic(sweep_sp_partition, rounds=1, iterations=1)
    print()
    print("SP TLB partition split (Section 4.1.2's future work):")
    print(format_partition_sweep(points))
    attacker_mpki = [point.attacker_mpki for point in points]
    assert attacker_mpki == sorted(attacker_mpki)


def test_rf_region_sweep(benchmark):
    points = benchmark.pedantic(
        sweep_rf_region,
        kwargs=dict(region_sizes=(1, 2, 3, 8, 31), trials=60),
        rounds=1,
        iterations=1,
    )
    print()
    print("RF TLB secure-region size vs overhead and residual channel:")
    print(format_region_sweep(points))
    assert points[0].prime_probe_capacity > 0.8  # 1-page region: no entropy
    assert all(point.prime_probe_capacity < 0.2 for point in points[2:])


def test_replacement_policy_sweep(benchmark):
    points = benchmark.pedantic(sweep_replacement_policy, rounds=1, iterations=1)
    print()
    print("TLBleed accuracy per replacement policy (SA TLB):")
    for point in points:
        print(
            f"  {point.policy.value:8} {point.accuracy:.1%}"
            f"{'  full recovery' if point.recovered_exactly else ''}"
        )
    by_policy = {point.policy: point for point in points}
    assert by_policy[ReplacementKind.LRU].recovered_exactly
    assert not by_policy[ReplacementKind.RANDOM].recovered_exactly
