"""An in-order, cycle-approximate CPU for the benchmark dialect.

The model is deliberately simple -- the paper's security evaluation needs
only architecturally visible TLB behaviour and honest relative timing:

* every instruction costs one issue cycle;
* loads and stores go through the L1 D-TLB (instruction fetch is assumed to
  hit a perfect I-TLB; the paper's designs target the D-TLB, Section 4),
  paying the hit latency or the full page-table walk;
* ``sfence.vma`` with an address pays the presence-dependent invalidation
  timing of Appendix B.

The CPU tags memory operations with the ``process_id`` CSR, letting one
benchmark program play both the attacker and the victim exactly as the
generated tests of Figure 6 do, and exposes ``cycle``/``instret``/
``tlb_miss_count`` CSRs for the measurement steps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.mmu.os_model import SwitchPolicy
from repro.sim.events import EventBus
from repro.sim.system import MemorySystem
from repro.tlb.base import BaseTLB, Translator

from .assembler import Program
from .csr import CSRFile
from .instructions import Instruction
from .memory import Memory

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
MASK64 = (1 << 64) - 1


class ExecutionStatus(enum.Enum):
    HALTED = "halted"
    PASSED = "passed"
    FAILED = "failed"


class ExecutionLimitExceeded(Exception):
    """The program did not terminate within the step budget."""


class ProtectionFault(Exception):
    """A load/store failed its permission check (after translation).

    Mirrors real MMU behaviour -- and the Double Page Fault attack's
    premise: the TLB caches the translation *before* the access faults,
    so a repeated faulting access is architecturally fast.
    """

    def __init__(self, vpn: int, asid: int, write: bool) -> None:
        kind = "store to" if write else "load from"
        super().__init__(f"protection fault: {kind} vpn={vpn:#x} (asid={asid})")
        self.vpn = vpn
        self.asid = asid
        self.write = write


@dataclass(frozen=True)
class ExecutionResult:
    """Summary of one program run."""

    status: ExecutionStatus
    cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def _signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value


class CPU:
    """Interpreter for assembled benchmark programs."""

    def __init__(
        self,
        tlb: Optional[BaseTLB] = None,
        translator: Optional[Translator] = None,
        memory: Optional[Memory] = None,
        flush_tlb_on_pid_switch: bool = False,
        enforce_permissions: bool = False,
        memory_system: Optional[MemorySystem] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if memory_system is None:
            if tlb is None or translator is None:
                raise ValueError(
                    "pass either a memory_system or a tlb + translator"
                )
            #: Emulates the Sanctum / Intel SGX software mitigation of
            #: Section 2.3: the TLB is fully flushed whenever execution
            #: switches between processes.
            policy = (
                SwitchPolicy.FLUSH_ALL
                if flush_tlb_on_pid_switch
                else SwitchPolicy.KEEP
            )
            memory_system = MemorySystem(
                tlb, translator, switch_policy=policy, bus=bus
            )
        self.mem = memory_system
        self.memory = memory or Memory()
        #: Check PTE permissions on every access (after the TLB fill, as
        #: hardware does -- see :class:`ProtectionFault`).  Off by default:
        #: the micro benchmarks map everything user-accessible.
        self.enforce_permissions = enforce_permissions
        self.registers: List[int] = [0] * 32
        self.pc = 0
        self.cycles = 0
        self.instructions_retired = 0
        self.csr = CSRFile()
        self.csr.bind_counter("cycle", lambda: self.cycles)
        self.csr.bind_counter("instret", lambda: self.instructions_retired)
        self.csr.bind_counter("tlb_miss_count", lambda: self.tlb.stats.misses)
        self.csr.on_write("sbase", lambda _v: self._sync_secure_region())
        self.csr.on_write("ssize", lambda _v: self._sync_secure_region())
        self.csr.on_write("process_id", self.mem.context_switch)
        self._program: Optional[Program] = None

    @property
    def tlb(self) -> BaseTLB:
        return self.mem.tlb

    @property
    def translator(self) -> Translator:
        return self.mem.walker

    @property
    def flush_tlb_on_pid_switch(self) -> bool:
        return self.mem.switch_policy is SwitchPolicy.FLUSH_ALL

    # -- program setup -----------------------------------------------------------

    def load(self, program: Program) -> None:
        """Reset architectural state and install the data image.

        The image is installed for the current ``process_id`` address space
        (the OS loading the test binary); the benchmarks only measure
        timing, so the other simulated process reads zero-filled pages.
        """
        self._program = program
        self.registers = [0] * 32
        self.pc = 0
        home_asid = self.asid
        for vaddr, value in program.data.items():
            walk = self.translator.walk(vaddr >> PAGE_BITS, home_asid)
            self.memory.store(
                walk.ppn * PAGE_SIZE + (vaddr % PAGE_SIZE), value
            )

    @property
    def asid(self) -> int:
        return self.csr.read("process_id")

    def _sync_secure_region(self) -> None:
        """Propagate the sbase/ssize CSRs into an RF TLB's registers."""
        if hasattr(self.tlb, "set_secure_region"):
            self.tlb.set_secure_region(
                sbase=self.csr.read("sbase"), ssize=self.csr.read("ssize")
            )

    # -- execution ----------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> ExecutionResult:
        """Execute until a terminator; raise if the budget is exhausted."""
        if self._program is None:
            raise RuntimeError("no program loaded")
        for _ in range(max_steps):
            status = self.step()
            if status is not None:
                return ExecutionResult(
                    status=status,
                    cycles=self.cycles,
                    instructions=self.instructions_retired,
                )
        raise ExecutionLimitExceeded(
            f"no terminator within {max_steps} steps (pc={self.pc})"
        )

    def step(self) -> Optional[ExecutionStatus]:
        """Execute one instruction; return a status when the program ends."""
        program = self._program
        if program is None:
            raise RuntimeError("no program loaded")
        if not 0 <= self.pc < len(program.instructions):
            # Falling off the end is a plain halt.
            return ExecutionStatus.HALTED
        instruction = program.instructions[self.pc]
        self.instructions_retired += 1
        next_pc = self.pc + 1
        cost = 1

        mnemonic = instruction.mnemonic
        regs = self.registers

        if mnemonic in ("ld", "ldnorm", "ldrand"):
            cost, value = self._memory_access(instruction, store=False)
            self._write_reg(instruction.rd, value)
        elif mnemonic == "sd":
            cost, _ = self._memory_access(instruction, store=True)
        elif mnemonic == "li":
            self._write_reg(instruction.rd, instruction.imm)
        elif mnemonic == "mv":
            self._write_reg(instruction.rd, regs[instruction.rs1])
        elif mnemonic == "la":
            address = program.symbol_address(instruction.symbol, instruction.line)
            self._write_reg(instruction.rd, address)
        elif mnemonic == "add":
            self._write_reg(instruction.rd, regs[instruction.rs1] + regs[instruction.rs2])
        elif mnemonic == "sub":
            self._write_reg(instruction.rd, regs[instruction.rs1] - regs[instruction.rs2])
        elif mnemonic == "and":
            self._write_reg(instruction.rd, regs[instruction.rs1] & regs[instruction.rs2])
        elif mnemonic == "or":
            self._write_reg(instruction.rd, regs[instruction.rs1] | regs[instruction.rs2])
        elif mnemonic == "xor":
            self._write_reg(instruction.rd, regs[instruction.rs1] ^ regs[instruction.rs2])
        elif mnemonic == "addi":
            self._write_reg(instruction.rd, regs[instruction.rs1] + instruction.imm)
        elif mnemonic == "andi":
            self._write_reg(instruction.rd, regs[instruction.rs1] & instruction.imm)
        elif mnemonic == "ori":
            self._write_reg(instruction.rd, regs[instruction.rs1] | instruction.imm)
        elif mnemonic == "xori":
            self._write_reg(instruction.rd, regs[instruction.rs1] ^ instruction.imm)
        elif mnemonic == "slli":
            self._write_reg(instruction.rd, regs[instruction.rs1] << instruction.imm)
        elif mnemonic == "srli":
            self._write_reg(instruction.rd, regs[instruction.rs1] >> instruction.imm)
        elif mnemonic in ("beq", "bne", "blt", "bge"):
            if self._branch_taken(instruction):
                next_pc = program.label_target(instruction.symbol, instruction.line)
        elif mnemonic == "j":
            next_pc = program.label_target(instruction.symbol, instruction.line)
        elif mnemonic == "csrr":
            self._write_reg(instruction.rd, self.csr.read(instruction.csr))
        elif mnemonic in ("csrw", "csrwi"):
            if instruction.rs1 is not None:
                value = regs[instruction.rs1]
            else:
                value = instruction.imm
            self.csr.write(instruction.csr, value)
        elif mnemonic == "sfence.vma":
            cost = self._sfence(instruction)
        elif mnemonic == "nop":
            pass
        elif mnemonic == "halt":
            self.cycles += cost
            return ExecutionStatus.HALTED
        elif mnemonic == "pass":
            self.cycles += cost
            return ExecutionStatus.PASSED
        elif mnemonic == "fail":
            self.cycles += cost
            return ExecutionStatus.FAILED
        else:  # pragma: no cover - the assembler rejects unknown mnemonics
            raise ValueError(f"unhandled mnemonic {mnemonic}")

        self.cycles += cost
        self.pc = next_pc
        return None

    # -- helpers -------------------------------------------------------------------

    def _write_reg(self, rd: int, value: int) -> None:
        if rd != 0:  # x0 is hardwired to zero.
            self.registers[rd] = value & MASK64

    def _branch_taken(self, instruction: Instruction) -> bool:
        left = self.registers[instruction.rs1]
        right = self.registers[instruction.rs2]
        if instruction.mnemonic == "beq":
            return left == right
        if instruction.mnemonic == "bne":
            return left != right
        if instruction.mnemonic == "blt":
            return _signed(left) < _signed(right)
        return _signed(left) >= _signed(right)  # bge

    def _memory_access(self, instruction: Instruction, store: bool):
        vaddr = (self.registers[instruction.rs1] + instruction.imm) & MASK64
        vpn = vaddr >> PAGE_BITS
        # The translation is performed -- and cached by the TLB -- before
        # the permission check, as in hardware.
        result = self.mem.translate(vpn, self.asid)
        if self.enforce_permissions and hasattr(self.translator, "allows"):
            from repro.mmu import Permission

            required = Permission.WRITE if store else Permission.READ
            if not self.translator.allows(vpn, self.asid, required):
                self.cycles += result.cycles
                raise ProtectionFault(vpn, self.asid, write=store)
        paddr = result.ppn * PAGE_SIZE + (vaddr % PAGE_SIZE)
        if store:
            self.memory.store(paddr, self.registers[instruction.rs2])
            return result.cycles, None
        return result.cycles, self.memory.load(paddr)

    def _sfence(self, instruction: Instruction) -> int:
        if instruction.rs1 is None:
            self.mem.flush_all()
            return 1
        vpn = self.registers[instruction.rs1] >> PAGE_BITS
        asid = (
            self.registers[instruction.rs2]
            if instruction.rs2 is not None
            else self.asid
        )
        result = self.mem.invalidate_page(vpn, asid)
        return result.cycles
