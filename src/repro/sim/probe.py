"""The shared prime / probe-and-classify helper.

Every Prime + Probe style experiment performs the same two moves: fill one
TLB set with attacker-owned pages, then re-access them and classify each
access's latency as hit or miss to count evictions.  The attack modules
(`prime_probe`, `covert_channel`, `set_profiling`) used to re-implement
this loop individually; :class:`SetProber` implements it once on top of
:class:`repro.sim.MemorySystem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .system import MemorySystem


def pages_for_set(
    base: int, set_index: int, nsets: int, ways: int
) -> List[int]:
    """``ways`` distinct pages mapping to one TLB set, starting near ``base``.

    The first page is the smallest page >= the aligned base with the given
    set index; consecutive pages step by ``nsets`` so each lands in the
    same set.
    """
    aligned = base - (base % nsets) + set_index
    return [aligned + i * nsets for i in range(ways)]


@dataclass(frozen=True)
class ProbeOutcome:
    """One probe pass: per-page latencies classified into hits and misses."""

    pages: int
    misses: int
    cycles: int

    @property
    def hits(self) -> int:
        return self.pages - self.misses

    @property
    def evicted(self) -> bool:
        """The Prime + Probe verdict: did anything displace our pages?"""
        return self.misses > 0


class SetProber:
    """Prime + Probe one TLB set through the shared memory system."""

    def __init__(
        self, memory: MemorySystem, pages: Sequence[int], asid: int
    ) -> None:
        self.memory = memory
        self.pages = list(pages)
        self.asid = asid

    @classmethod
    def for_set(
        cls,
        memory: MemorySystem,
        base: int,
        set_index: int,
        asid: int,
        nsets: int | None = None,
        ways: int | None = None,
    ) -> "SetProber":
        """A prober whose pages cover one set of ``memory``'s TLB."""
        config = memory.tlb.config
        nsets = nsets if nsets is not None else config.sets
        ways = ways if ways is not None else config.ways
        return cls(memory, pages_for_set(base, set_index, nsets, ways), asid)

    def prime(self) -> int:
        """Fill the monitored set with our pages; return the cycles spent."""
        cycles = 0
        for vpn in self.pages:
            cycles += self.memory.translate(vpn, self.asid).cycles
        return cycles

    def probe(self) -> ProbeOutcome:
        """Re-access the priming pages, classifying each latency."""
        misses = 0
        cycles = 0
        for vpn in self.pages:
            result = self.memory.translate(vpn, self.asid)
            cycles += result.cycles
            if result.miss:
                misses += 1
        return ProbeOutcome(pages=len(self.pages), misses=misses, cycles=cycles)
