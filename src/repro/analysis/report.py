"""Text and JSON reporters shared by both analysis layers."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .dynamic import CrossCheckReport
from .lint import LintFinding
from .taint import GuestReport, LeakageFinding


# -- guest layer ---------------------------------------------------------------


def finding_to_dict(finding: LeakageFinding) -> Dict[str, Any]:
    return {
        "kind": finding.kind,
        "pc": finding.pc,
        "mnemonic": finding.mnemonic,
        "line": finding.line,
        "sources": list(finding.sources),
        "path": list(finding.path),
        "pages": [hex(page) for page in finding.pages],
    }


def guest_report_to_dict(
    report: GuestReport, cross: Optional[CrossCheckReport] = None
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "workload": report.name,
        "secrets": [source.label for source in report.contract.secrets],
        "instructions": report.instructions,
        "reachable": report.reachable,
        "findings": [finding_to_dict(finding) for finding in report.findings],
        "counts": report.by_kind(),
        "clean": report.clean,
    }
    if cross is not None:
        payload["cross_check"] = {
            "exponents": [hex(exponent) for exponent in cross.exponents],
            "correlated_pages": [hex(page) for page in cross.correlated_pages],
            "correlated_sets": list(cross.correlated_sets),
            "confirmed": cross.confirmed_count,
            "checked": len(cross.checked),
            "leaks_dynamically": cross.leaks_dynamically,
        }
    return payload


def format_guest_report(
    report: GuestReport, cross: Optional[CrossCheckReport] = None
) -> str:
    secrets = ", ".join(
        source.label for source in report.contract.secrets
    ) or "(no secrets declared)"
    lines = [
        f"== guest leakage check: {report.name} ==",
        f"contract: {secrets}",
        (
            f"{report.instructions} instructions"
            f" ({report.reachable} reachable)"
        ),
    ]
    if report.clean:
        lines.append("no secret-dependent address flow found")
    else:
        counts = ", ".join(
            f"{count} {kind}" for kind, count in sorted(report.by_kind().items())
        )
        lines.append(f"{len(report.findings)} findings ({counts}):")
        for finding in report.findings:
            lines.append(f"  {finding.describe()}")
    if cross is not None:
        lines.append(
            "dynamic cross-check over exponents "
            + ", ".join(hex(e) for e in cross.exponents)
            + ":"
        )
        pages = (
            ", ".join(hex(page) for page in cross.correlated_pages) or "none"
        )
        lines.append(f"  secret-correlated pages: {pages}")
        if cross.correlated_sets:
            lines.append(
                "  secret-correlated TLB sets: "
                + ", ".join(str(index) for index in cross.correlated_sets)
            )
        if cross.checked:
            lines.append(
                f"  confirmed {cross.confirmed_count}/{len(cross.checked)}"
                " static findings in the trace"
            )
    return "\n".join(lines)


# -- lint layer ----------------------------------------------------------------


def lint_findings_to_dict(findings: Sequence[LintFinding]) -> Dict[str, Any]:
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
            }
            for finding in findings
        ],
        "counts": by_rule,
        "total": len(findings),
    }


def format_lint_findings(
    findings: Sequence[LintFinding], checked_files: int = 0
) -> str:
    lines: List[str] = []
    suffix = f" across {checked_files} files" if checked_files else ""
    if not findings:
        lines.append(f"invariant lint: clean{suffix}")
        return "\n".join(lines)
    lines.append(f"invariant lint: {len(findings)} finding(s){suffix}")
    for finding in findings:
        lines.append(f"  {finding.describe()}")
    return "\n".join(lines)
