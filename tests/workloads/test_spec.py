"""Tests for the synthetic SPEC trace generators."""

import random

import pytest

from repro.workloads.spec import (
    CACTUSADM,
    OMNETPP,
    POVRAY,
    SPEC_BENCHMARKS,
    SpecProfile,
    by_name,
)
from repro.workloads.trace import collect


class TestProfiles:
    def test_four_benchmarks(self):
        assert len(SPEC_BENCHMARKS) == 4
        assert {p.name for p in SPEC_BENCHMARKS} == {
            "povray",
            "omnetpp",
            "xalancbmk",
            "cactusADM",
        }

    def test_by_name(self):
        assert by_name("povray") is POVRAY
        with pytest.raises(KeyError):
            by_name("gcc")

    def test_address_ranges_are_disjoint(self):
        ranges = [
            range(p.base_vpn, p.base_vpn + p.working_set_pages)
            for p in SPEC_BENCHMARKS
        ]
        for index, first in enumerate(ranges):
            for second in ranges[index + 1 :]:
                assert set(first).isdisjoint(second)

    @pytest.mark.parametrize("profile", SPEC_BENCHMARKS, ids=lambda p: p.name)
    def test_pages_stay_in_declared_range(self, profile):
        rng = random.Random(0)
        events = profile.events(rng)
        for _ in range(2000):
            _gap, vpn = next(events)
            assert (
                profile.base_vpn
                <= vpn
                < profile.base_vpn + profile.working_set_pages
            )

    @pytest.mark.parametrize("profile", SPEC_BENCHMARKS, ids=lambda p: p.name)
    def test_memory_ratio_approximated(self, profile):
        stats = collect(profile, instructions=60_000)
        assert stats.memory_ratio == pytest.approx(
            profile.memory_ratio, rel=0.25
        )

    def test_traces_are_deterministic_per_seed(self):
        def sample(seed):
            events = POVRAY.events(random.Random(seed))
            return [next(events) for _ in range(100)]

        assert sample(3) == sample(3)
        assert sample(3) != sample(4)


class TestShapes:
    """The TLB-sensitivity shapes Figure 7 depends on."""

    def _mpki(self, profile, entries, instructions=80_000):
        from repro.mmu import PageTableWalker
        from repro.perf.timing import ScheduledProcess, simulate
        from repro.tlb import SetAssociativeTLB, TLBConfig

        tlb = SetAssociativeTLB(TLBConfig(entries=entries, ways=4))
        results = simulate(
            tlb,
            [ScheduledProcess(profile, asid=1, instructions=instructions)],
            walker=PageTableWalker(auto_map=True),
        )
        return results["total"].mpki

    def test_size_sensitive_benchmarks_improve_with_entries(self):
        for profile in (POVRAY, OMNETPP):
            small = self._mpki(profile, entries=32)
            large = self._mpki(profile, entries=128)
            assert large < small * 0.7, profile.name

    def test_cactusadm_is_insensitive_to_tlb_size(self):
        # The paper: "although cactusADM was specified as TLB-intensive,
        # it is not affected much by TLB size."
        small = self._mpki(CACTUSADM, entries=32)
        large = self._mpki(CACTUSADM, entries=128)
        assert large == pytest.approx(small, rel=0.15)

    def test_omnetpp_has_the_highest_pressure(self):
        mpkis = {p.name: self._mpki(p, entries=32) for p in SPEC_BENCHMARKS}
        assert max(mpkis, key=mpkis.get) == "omnetpp"


class TestValidation:
    def test_bad_memory_ratio(self):
        with pytest.raises(ValueError):
            SpecProfile("x", 10, 2, 0.5, 0.0, 0)

    def test_bad_hot_fraction(self):
        with pytest.raises(ValueError):
            SpecProfile("x", 10, 2, 1.5, 0.5, 0)

    def test_hot_set_larger_than_working_set(self):
        with pytest.raises(ValueError):
            SpecProfile("x", 10, 20, 0.5, 0.5, 0)
