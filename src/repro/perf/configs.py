"""The 19 TLB configurations of the performance evaluation (Section 6.2).

Standard (SA) TLBs are tested in seven organizations -- the single-entry
``1E`` approximation of "no TLB", plus fully associative and 2/4-way at 32
and 128 entries -- and the SP and RF designs in the six multi-way ones
(partitioning needs at least two ways), for the paper's total of 19.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.security.kinds import TLBKind
from repro.tlb import TLBConfig, fully_associative, single_entry

#: Figure 7's per-design organizations, in plot order.
STANDARD_LABELS = ("1E", "FA 32", "2W 32", "4W 32", "FA 128", "2W 128", "4W 128")
SECURE_LABELS = STANDARD_LABELS[1:]


def config_by_label(label: str) -> TLBConfig:
    if label == "1E":
        return single_entry()
    kind, entries_text = label.split()
    entries = int(entries_text)
    if kind == "FA":
        return fully_associative(entries)
    if kind.endswith("W"):
        return TLBConfig(entries=entries, ways=int(kind[:-1]))
    raise ValueError(f"unknown configuration label {label!r}")


def labels_for(kind: TLBKind) -> Tuple[str, ...]:
    """The organizations evaluated for one design."""
    if kind is TLBKind.SA:
        return STANDARD_LABELS
    return SECURE_LABELS


def all_configurations() -> Iterator[Tuple[TLBKind, str, TLBConfig]]:
    """All 19 (design, label, config) combinations of the evaluation."""
    for kind in (TLBKind.SA, TLBKind.SP, TLBKind.RF):
        for label in labels_for(kind):
            yield (kind, label, config_by_label(label))


def configuration_count() -> int:
    return sum(1 for _ in all_configurations())
