"""Merge assembled experiment results into the serial path's artifacts.

This module is the byte-exact mirror of ``scripts/run_full_evaluation.py``:
given each experiment's :meth:`~repro.runner.registry.Experiment.assemble`
output, it writes the same ``results/*.txt`` / ``results/*.csv`` files with
the same formatting, so ``python -m repro run-all --jobs N`` and the serial
script produce identical artifacts for any ``N``.

Artifacts are only written when every experiment they draw from completed
in full -- a filtered or partially-failed run skips the affected files
rather than writing truncated ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .progress import RunLog

#: artifact filename -> experiments it needs, in the order used below.
ARTIFACT_SOURCES: Dict[str, Tuple[str, ...]] = {
    "table2.txt": ("table2",),
    "table4_full.txt": ("table4",),
    "table4_full.csv": ("table4",),
    "table7_eval.txt": ("table7",),
    "fig7_full.txt": ("fig7",),
    "fig7_full.csv": ("fig7",),
    "fig7_runs_series.txt": ("fig7",),
    "table5.txt": ("table5",),
    "mitigations.txt": ("mitigations", "largepages", "hierarchy"),
    "hierarchy_sweep.txt": ("hierarchy_sweep",),
    "sweeps.txt": ("sweeps",),
    "attacks.txt": ("attacks",),
}


def _table2_text(value: Mapping[str, Any]) -> str:
    lines = [value["table_text"], ""]
    lines.append(
        f"exact match with the paper's Table 2: {value['match']}"
    )
    for label, entries in (
        ("missing", value["missing"]),
        ("unexpected", value["unexpected"]),
    ):
        for pretty in entries:
            lines.append(f"  {label}: {pretty}")
    return "\n".join(lines) + "\n"


def _table7_text(table: Mapping[Any, List[Any]]) -> str:
    parts = []
    for kind, results in table.items():
        defended = sum(1 for r in results if r.defended)
        parts.append(f"== {kind.value}: defended {defended}/48 ==\n")
        for r in results:
            if not r.defended:
                parts.append(
                    f"  leak: {r.vulnerability.pretty()}"
                    f"  p1*={r.estimate.p1:.2f} p2*={r.estimate.p2:.2f}"
                    f" C*={r.estimate.capacity:.2f}\n"
                )
    return "".join(parts)


def _fig7_text(cells: List[Any]) -> str:
    from repro.perf import figure7_chart, format_figure7, headline_ratios

    parts = [format_figure7(cells), "\n\nheadline ratios:\n"]
    for name, value in sorted(headline_ratios(cells).items()):
        parts.append(f"  {name:30} {value:.3f}\n")
    parts.append("\n\n")
    parts.append(figure7_chart(cells, "mpki"))
    parts.append("\n\n")
    parts.append(figure7_chart(cells, "ipc"))
    return "".join(parts)


def _mitigations_text(
    ladder: List[Any], large_pages: Any, hierarchies: List[Any]
) -> str:
    from repro.ablations import (
        format_hierarchy_results,
        format_large_page_comparison,
        format_mitigation_ladder,
    )

    return (
        format_mitigation_ladder(ladder)
        + "\n\n"
        + format_large_page_comparison(large_pages, 10, 13)
        + "\n\n"
        + format_hierarchy_results(hierarchies)
    )


def _hierarchy_sweep_text(sweep: Mapping[str, Any]) -> str:
    from repro.ablations import format_hierarchy_sweep

    return (
        format_hierarchy_sweep(sweep["designs"], sweep["leakage"]) + "\n"
    )


def _sweeps_text(sweeps: Mapping[str, List[Any]]) -> str:
    from repro.ablations import format_partition_sweep, format_region_sweep

    parts = ["SP partition split:\n"]
    parts.append(format_partition_sweep(sweeps["partition"]))
    parts.append("\n\nRF region size:\n")
    parts.append(format_region_sweep(sweeps["region"]))
    parts.append("\n\nreplacement policy vs TLBleed:\n")
    for p in sweeps["policy"]:
        full = "  full recovery" if p.recovered_exactly else ""
        parts.append(f"  {p.policy.value:8} accuracy {p.accuracy:.1%}{full}\n")
    parts.append("\nwalk-latency sensitivity (omnetpp, 4W 32):\n")
    for p in sweeps["walk"]:
        parts.append(
            f"  {p.cycles_per_level:3} cyc/level  IPC {p.ipc:.3f}"
            f"  MPKI {p.mpki:.2f}\n"
        )
    return "".join(parts)


def _attack_label(params: Mapping[str, Any]) -> str:
    attack = params["attack"]
    if attack == "tlbleed":
        return f"TLBleed ({params['key_bits']}-bit RSA)"
    if attack == "multitrace":
        return f"TLBleed {params['traces']}-trace voting"
    if attack == "eddsa":
        return "EdDSA scalar (64-bit)"
    if attack == "dpf":
        return "Double Page Fault scan"
    if attack == "covert_serial":
        return "covert serial"
    if attack == "covert_parallel":
        return "covert parallel"
    if attack == "itlb":
        return "I-TLB (unhardened S&M)"
    if attack == "itlb_hardened":
        return "I-TLB (hardened, Fig. 5)"
    if attack == "profiling":
        return f"set profiling ({params['seeds']} seeds)"
    raise ValueError(f"unknown attack {attack!r}")


def _attacks_text(rows: List[Tuple[Mapping[str, Any], Any]]) -> str:
    parts = []
    for params, value in rows:
        attack = params["attack"]
        label = f"{_attack_label(params):<26}"
        kind = params["kind"]
        if attack in ("tlbleed", "multitrace", "eddsa", "itlb",
                      "itlb_hardened"):
            parts.append(
                f"{label}{kind}: accuracy {value['accuracy']:.3f}"
                f" exact={value['exact']}\n"
            )
        elif attack in ("dpf", "profiling"):
            parts.append(
                f"{label}{kind}: correct {value['correct']}/{value['total']}\n"
            )
        elif attack == "covert_serial":
            parts.append(
                f"{label}{kind}: BER {value['ber']:.3f}"
                f" capacity {value['capacity']:.3f}"
                f" rate {value['rate']:.2f} b/kc\n"
            )
        elif attack == "covert_parallel":
            parts.append(
                f"{label}{kind}: BER {value['ber']:.3f}"
                f" capacity {value['capacity']:.3f}\n"
            )
        else:  # pragma: no cover - _attack_label already raised
            raise ValueError(f"unknown attack {attack!r}")
    return "".join(parts)


def write_artifacts(
    assembled: Mapping[str, Any],
    results_dir: Path | str,
    options: Mapping[str, Any],
    log: Optional[RunLog] = None,
) -> List[str]:
    """Write every artifact whose source experiments are all present.

    ``assembled`` maps experiment name to its :meth:`assemble` output.
    Returns the list of written filenames; logs an ``artifact`` event per
    file.
    """
    from repro.perf import export_figure7_csv, export_table4_csv
    from repro.security import format_table4

    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    log = log or RunLog(None)
    written: List[str] = []

    def emit(name: str, write) -> None:
        if any(
            source not in assembled for source in ARTIFACT_SOURCES[name]
        ):
            return
        path = results_dir / name
        write(path)
        written.append(name)
        log.emit("artifact", path=str(path))

    emit("table2.txt",
         lambda p: p.write_text(_table2_text(assembled["table2"])))
    emit("table4_full.txt",
         lambda p: p.write_text(format_table4(assembled["table4"])))
    emit("table4_full.csv",
         lambda p: export_table4_csv(assembled["table4"], p))
    emit("table7_eval.txt",
         lambda p: p.write_text(_table7_text(assembled["table7"])))
    emit("fig7_full.txt",
         lambda p: p.write_text(_fig7_text(assembled["fig7"]["grid"])))
    emit("fig7_full.csv",
         lambda p: export_figure7_csv(assembled["fig7"]["grid"], p))
    emit("fig7_runs_series.txt",
         lambda p: p.write_text(_series_text(assembled["fig7"]["series"])))
    emit("table5.txt", lambda p: p.write_text(assembled["table5"]))
    emit("mitigations.txt",
         lambda p: p.write_text(_mitigations_text(
             assembled["mitigations"],
             assembled["largepages"],
             assembled["hierarchy"],
         )))
    emit("hierarchy_sweep.txt",
         lambda p: p.write_text(_hierarchy_sweep_text(
             assembled["hierarchy_sweep"]
         )))
    emit("sweeps.txt",
         lambda p: p.write_text(_sweeps_text(assembled["sweeps"])))
    emit("attacks.txt",
         lambda p: p.write_text(_attacks_text(assembled["attacks"])))

    # Experiments without a dedicated writer (e.g. test probes and the
    # chaos campaign's cells) still get a deterministic JSON artifact, so
    # clean-vs-chaos byte comparisons have a merged file to diff.
    claimed = {
        source for sources in ARTIFACT_SOURCES.values() for source in sources
    }
    for name in sorted(assembled):
        if name in claimed:
            continue
        filename = f"{name}.json"
        path = results_dir / filename
        path.write_text(
            json.dumps(assembled[name], indent=2, sort_keys=True, default=str)
            + "\n"
        )
        written.append(filename)
        log.emit("artifact", path=str(path))
    return written


def _series_text(series: List[Any]) -> str:
    from repro.perf import format_figure7

    return format_figure7(series)
