"""Tests for the Dynamic-Partition TLB and tree-PLRU replacement."""

import pytest

from repro.tlb import (
    DynamicPartitionTLB,
    IdentityTranslator,
    ReplacementKind,
    SetAssociativeTLB,
    TLBConfig,
    TreePLRUPolicy,
)

VICTIM = 1
ATTACKER = 2


@pytest.fixture
def translator():
    return IdentityTranslator()


def make_dp(ways=4, victim_ways=None):
    return DynamicPartitionTLB(
        TLBConfig(entries=4 * ways, ways=ways),
        victim_asid=VICTIM,
        victim_ways=victim_ways,
    )


class TestRepartitioning:
    def test_grow_and_shrink(self, translator):
        tlb = make_dp()
        assert tlb.victim_ways == 2
        tlb.repartition(3)
        assert tlb.victim_ways == 3
        tlb.repartition(1)
        assert tlb.victim_ways == 1
        assert tlb.repartitions == 2

    def test_bounds_enforced(self, translator):
        tlb = make_dp()
        for bad in (0, 4, -1):
            with pytest.raises(ValueError):
                tlb.repartition(bad)

    def test_noop_repartition_flushes_nothing(self, translator):
        tlb = make_dp()
        tlb.translate(0, VICTIM, translator)
        assert tlb.repartition(2) == 0
        assert tlb.resident(0, VICTIM)

    def test_safe_repartition_invalidates_reassigned_ways(self, translator):
        tlb = make_dp()
        tlb.translate(0, VICTIM, translator)
        tlb.translate(4, VICTIM, translator)  # fills victim ways 0 and 1
        invalidated = tlb.repartition(1)  # way 1 moves to the attacker side
        assert invalidated == 1
        assert tlb.misplaced_entries() == 0

    def test_naive_repartition_leaves_attackable_entries(self, translator):
        # The security pitfall: a stale victim entry in a now-attacker way
        # can be evicted by the attacker, reviving Evict + Time for it.
        tlb = make_dp()
        tlb.translate(0, VICTIM, translator)
        tlb.translate(4, VICTIM, translator)
        tlb.repartition(1, flush_reassigned=False)
        assert tlb.misplaced_entries() == 1
        stale_vpn = 4 if tlb.resident(4, VICTIM) else 0
        # The attacker now owns ways 1..3 and can evict the stale entry.
        for vpn in (8, 12, 16):
            tlb.translate(vpn, ATTACKER, translator)
        assert not tlb.resident(stale_vpn, VICTIM)

    def test_safe_repartition_prevents_that_eviction_signal(self, translator):
        # After a flushing repartition the victim simply re-misses; there
        # is no stale entry whose eviction the attacker controls.
        tlb = make_dp()
        tlb.translate(0, VICTIM, translator)
        tlb.translate(4, VICTIM, translator)
        tlb.repartition(1)
        assert tlb.misplaced_entries() == 0

    def test_partition_isolation_still_holds_after_repartition(self, translator):
        tlb = make_dp()
        tlb.repartition(3)
        tlb.translate(0, VICTIM, translator)
        tlb.translate(4, VICTIM, translator)
        tlb.translate(8, VICTIM, translator)
        for vpn in range(12, 60, 4):
            tlb.translate(vpn, ATTACKER, translator)
        for vpn in (0, 4, 8):
            assert tlb.resident(vpn, VICTIM)


class TestTreePLRU:
    def _filled(self, stamps):
        from repro.tlb import TLBEntry

        entries = []
        for index, stamp in enumerate(stamps):
            entry = TLBEntry()
            entry.fill(vpn=index, ppn=index, asid=0, now=stamp)
            entries.append(entry)
        return entries

    def test_victim_is_not_the_most_recently_used(self):
        policy = TreePLRUPolicy()
        entries = self._filled([1, 2, 3, 4])
        victim = policy.select(entries)
        assert victim is not entries[3]  # MRU is always protected

    def test_true_lru_order_picks_the_lru(self):
        # When accesses settle the tree fully, PLRU agrees with LRU.
        policy = TreePLRUPolicy()
        entries = self._filled([5, 1, 7, 3])
        victim = policy.select(entries)
        assert victim is entries[1]

    def test_requires_power_of_two(self):
        policy = TreePLRUPolicy()
        with pytest.raises(ValueError):
            policy.select(self._filled([1, 2, 3]))

    def test_works_inside_a_tlb(self):
        translator = IdentityTranslator()
        tlb = SetAssociativeTLB(
            TLBConfig(entries=8, ways=4, replacement=ReplacementKind.TREE_PLRU)
        )
        for vpn in (0, 2, 4, 6):
            tlb.translate(vpn, 1, translator)
        tlb.translate(0, 1, translator)  # protect way holding vpn 0
        result = tlb.translate(8, 1, translator)
        assert result.evicted is not None
        assert result.evicted.vpn != 0

    def test_prime_probe_still_works_under_plru(self):
        # The threat model's point: replacement-policy details do not
        # rescue the standard TLB.
        from repro.attacks import tlbleed_attack
        from repro.security.kinds import TLBKind
        from repro.workloads.rsa import generate_key

        config = TLBConfig(
            entries=32, ways=8, replacement=ReplacementKind.TREE_PLRU
        )
        result = tlbleed_attack(
            TLBKind.SA, key=generate_key(bits=48, seed=11), config=config
        )
        assert result.recovered_exactly
