"""Tests for the two-level hierarchy security ablation."""

import pytest

from repro.ablations import (
    evaluate_hierarchy,
    format_hierarchy_results,
)
from repro.model.patterns import Strategy
from repro.security import TLBKind

TRIALS = 25


@pytest.fixture(scope="module")
def sa_sa():
    return evaluate_hierarchy(TLBKind.SA, TLBKind.SA, trials=TRIALS)


@pytest.fixture(scope="module")
def rf_sa():
    return evaluate_hierarchy(TLBKind.RF, TLBKind.SA, trials=TRIALS)


@pytest.fixture(scope="module")
def rf_rf():
    return evaluate_hierarchy(TLBKind.RF, TLBKind.RF, trials=TRIALS)


class TestHierarchySecurity:
    def test_standard_hierarchy_is_vulnerable(self, sa_sa):
        assert sa_sa.defended < 14

    def test_protecting_only_l1_is_insufficient(self, rf_sa):
        # The paper's "can be applied to other levels of TLB" is necessary:
        # the victim's translations land in the standard L2 on the walk
        # path, so several rows leak through L2 evictions/hits.
        assert rf_sa.defended < 24
        leaked = {v.strategy for v in rf_sa.vulnerable_rows()}
        assert Strategy.INTERNAL_COLLISION in leaked

    def test_l1_protection_still_helps(self, sa_sa, rf_sa):
        assert rf_sa.defended > sa_sa.defended

    def test_protecting_both_levels_defends_everything(self, rf_rf):
        assert rf_rf.defended == 24

    def test_formatting(self, sa_sa, rf_rf):
        text = format_hierarchy_results([sa_sa, rf_rf])
        assert "RF L1 + RF L2" in text
        assert "/24" in text


# -- the declarative cross-design sweep -----------------------------------------


class TestSweepEnumeration:
    def test_24_designs_with_unique_labels(self):
        from repro.ablations import sweep_specs

        specs = sweep_specs()
        assert len(specs) == 24
        labels = [spec.label() for spec in specs]
        assert len(set(labels)) == 24
        assert "SA+SA" in labels and "RF+RF+pwc" in labels
        assert "RF" in labels  # the flat (no-L2) designs are included

    def test_one_row_per_strategy(self):
        from repro.ablations import sweep_rows

        rows = sweep_rows()
        strategies = [vulnerability.strategy for _, vulnerability in rows]
        assert len(strategies) == len(set(strategies)) == 7

    def test_specs_survive_the_cell_param_round_trip(self):
        from repro.ablations import sweep_specs
        from repro.ablations.hierarchy import coerce_spec

        for spec in sweep_specs():
            assert coerce_spec(spec.to_dict()) == spec


class TestSweepCells:
    def find_row(self, strategy):
        from repro.ablations import sweep_rows

        for _, vulnerability in sweep_rows():
            if vulnerability.strategy is strategy:
                return vulnerability
        raise AssertionError(strategy)

    def test_cell_is_deterministic(self):
        from repro.ablations import evaluate_sweep_cell, sweep_specs

        spec = sweep_specs()[0]
        vulnerability = self.find_row(Strategy.PRIME_PROBE)
        first = evaluate_sweep_cell(spec, vulnerability, trials=6)
        second = evaluate_sweep_cell(spec, vulnerability, trials=6)
        assert (first.p1, first.p2) == (second.p1, second.p2)

    def test_sa_sa_leaks_prime_probe_and_rf_rf_defends(self):
        from repro.ablations import evaluate_sweep_cell
        from repro.tlb import HierarchySpec, TLBConfig

        l1 = TLBConfig(entries=32, ways=8, hit_latency=1)
        l2 = TLBConfig(entries=256, ways=8, hit_latency=8)
        vulnerability = self.find_row(Strategy.PRIME_PROBE)
        leaky = evaluate_sweep_cell(
            HierarchySpec.two_level("SA", "SA", l1, l2),
            vulnerability,
            trials=12,
        )
        assert not leaky.defends()
        safe = evaluate_sweep_cell(
            HierarchySpec.two_level("RF", "RF", l1, l2),
            vulnerability,
            trials=12,
        )
        assert safe.defends()

    def test_perf_point_reports_the_design(self):
        from repro.ablations import sweep_perf_point, sweep_specs

        point = sweep_perf_point(sweep_specs()[0], rsa_runs=2)
        assert point["design"] == "SA+SA"
        assert 0 < point["ipc"] <= 1
        assert point["walks"] > 0


class TestRefillLeakage:
    @pytest.fixture(scope="class")
    def leaky(self):
        from repro.ablations import refill_leakage

        return refill_leakage()

    def test_leaky_workload_has_secret_correlated_refills(self, leaky):
        assert leaky["workload"] == "rsa"
        assert leaky["correlated_refill_pages"]
        assert max(leaky["refills"]) > 0

    def test_constant_time_workload_is_flat(self):
        from repro.ablations import refill_leakage

        clean = refill_leakage(workload_name="rsa-ct")
        assert clean["correlated_refill_pages"] == []


def _leakage_variant(l1_kind, l2_kind, pwc=False):
    """The cross-check shape (tiny protected L1, big L2) with kinds swapped."""
    from repro.ablations import leakage_spec
    from repro.tlb import HierarchySpec, LevelSpec, PWCSpec

    base = leakage_spec()
    tiny, big = base.levels
    levels = (
        LevelSpec.from_dict({**tiny.to_dict(), "kind": l1_kind}),
        LevelSpec.from_dict(
            {
                **big.to_dict(),
                "kind": l2_kind,
                "victim_ways": big.ways // 2 if l2_kind == "SP" else None,
            }
        ),
    )
    return HierarchySpec(levels=levels, pwc=PWCSpec() if pwc else None)


class TestRefillLeakageAcrossDesigns:
    """The refill channel is a property of inter-level movement, not of the
    specific RF+SA design: any tiny-L1/shared-L2 hierarchy round-trips the
    victim's working set through the L2, and the TaintObserver sees the
    secret in the refill stream regardless of the level kinds or a PWC."""

    VARIANTS = {
        "RF+SP": ("RF", "SP", False),
        "SA+RF": ("SA", "RF", False),
        "RF+SA+pwc": ("RF", "SA", True),
    }

    @pytest.mark.parametrize("label", sorted(VARIANTS))
    def test_rsa_refills_correlate_with_secret(self, label):
        from repro.ablations import refill_leakage

        spec = _leakage_variant(*self.VARIANTS[label])
        assert spec.label() == label
        leaky = refill_leakage(spec)
        # Same two secret-correlated pages as the RF+SA baseline: the
        # square page (0x500) and the multiply page (0x502).
        assert sorted(leaky["correlated_refill_pages"]) == [0x500, 0x502]
        assert max(leaky["refills"]) > min(leaky["refills"])

    @pytest.mark.parametrize("label", sorted(VARIANTS))
    def test_constant_time_workload_is_flat_everywhere(self, label):
        from repro.ablations import refill_leakage

        spec = _leakage_variant(*self.VARIANTS[label])
        clean = refill_leakage(spec, workload_name="rsa-ct")
        assert clean["correlated_refill_pages"] == []
        assert clean["correlated_access_pages"] == []
        assert len(set(clean["refills"])) == 1


class TestSweepFormatting:
    def test_matrix_and_leakage_footer(self):
        from repro.ablations import (
            SweepDesignResult,
            evaluate_sweep_cell,
            format_hierarchy_sweep,
            sweep_specs,
        )

        spec = sweep_specs()[0]
        vulnerability = TestSweepCells().find_row(Strategy.PRIME_PROBE)
        estimate = evaluate_sweep_cell(spec, vulnerability, trials=4)
        result = SweepDesignResult(
            label=spec.label(),
            spec=spec.to_dict(),
            estimates={vulnerability: estimate},
            perf={
                "design": spec.label(), "ipc": 0.99, "mpki": 0.1,
                "walks": 3, "accesses": 100, "cycles": 100, "pwc_hits": 0,
            },
        )
        leakage = {
            "design": "RF+SA",
            "workload": "rsa",
            "correlated_access_pages": [0x500],
            "correlated_refill_pages": [0x500, 0x502],
            "refills": [64, 2, 126],
            "accesses": [1000, 900, 1100],
        }
        text = format_hierarchy_sweep([result], leakage)
        assert "SA+SA" in text
        assert "refill-leakage cross-check" in text
        assert "0x500" in text
