"""Flat physical memory, 64-bit word granular.

The simulators only ever move aligned 64-bit words (the benchmark dialect's
``ld``/``sd``); a sparse dictionary keyed by physical word index keeps even
page-spread benchmark arrays cheap.  Unwritten memory reads as zero, like
the zero-filled pages a real OS would hand out.
"""

from __future__ import annotations

from typing import Dict

WORD = 8


class MisalignedAccess(Exception):
    """Raised on a non-8-byte-aligned word access."""


class Memory:
    """Sparse word-addressed physical memory."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    @staticmethod
    def _index(address: int) -> int:
        if address % WORD:
            raise MisalignedAccess(f"unaligned 64-bit access at {address:#x}")
        if address < 0:
            raise ValueError(f"negative physical address {address:#x}")
        return address // WORD

    def load(self, address: int) -> int:
        return self._words.get(self._index(address), 0)

    def store(self, address: int, value: int) -> None:
        self._words[self._index(address)] = value % (1 << 64)

    def __len__(self) -> int:
        return len(self._words)
