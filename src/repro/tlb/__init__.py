"""Behavioural simulators of the paper's TLB designs (Section 4).

* :class:`SetAssociativeTLB` -- the standard baseline (also covers fully
  associative and single-entry organizations via :class:`TLBConfig`);
* :class:`StaticPartitionTLB` -- the SP TLB (way-partitioned, Section 4.1);
* :class:`RandomFillTLB` -- the RF TLB (Sec bit + Random Fill Engine +
  no-fill buffer, Section 4.2).

All designs share the hit path (page number and ASID must match), the
statistics counters of :class:`TLBStats`, and the maintenance operations
(full/per-ASID flush, targeted invalidation with Appendix B's
presence-dependent timing).
"""

from .base import (
    AccessResult,
    BaseTLB,
    IdentityTranslator,
    Translator,
    WalkResult,
)
from .config import (
    ReplacementKind,
    TLBConfig,
    fully_associative,
    single_entry,
)
from .entry import TLBEntry
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)
from .dp import DynamicPartitionTLB
from .hierarchy import PageWalkCache, PWCStats, TLBHierarchy, TwoLevelTLB
from .spec import HierarchySpec, LevelSpec, PWCSpec
from .rf import RandomFillEngine, RandomFillTLB
from .sa import SetAssociativeTLB
from .sp import StaticPartitionTLB
from .stats import TLBStats

__all__ = [
    "AccessResult",
    "BaseTLB",
    "DynamicPartitionTLB",
    "FIFOPolicy",
    "HierarchySpec",
    "IdentityTranslator",
    "LRUPolicy",
    "LevelSpec",
    "PWCSpec",
    "PWCStats",
    "PageWalkCache",
    "RandomFillEngine",
    "RandomFillTLB",
    "RandomPolicy",
    "ReplacementKind",
    "ReplacementPolicy",
    "SetAssociativeTLB",
    "StaticPartitionTLB",
    "TLBConfig",
    "TLBEntry",
    "TLBHierarchy",
    "TLBStats",
    "TwoLevelTLB",
    "Translator",
    "TreePLRUPolicy",
    "WalkResult",
    "fully_associative",
    "make_policy",
    "single_entry",
]
