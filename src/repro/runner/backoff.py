"""Retry pacing shared by every executor backend.

One function, :func:`backoff_delay`, decides how long a failed cell
attempt waits before it may run again: exponential growth in the attempt
number, a hard cap, and *deterministic* jitter.  The jitter is drawn from
CRC32 of ``(seed, ident, attempt)`` -- the same process-stable hashing as
:func:`repro.runner.registry.stable_seed` -- so two hosts computing the
retry schedule for the same cell agree exactly, a chaos run replays
bit-for-bit, and yet distinct cells failing together fan out instead of
thundering back as one herd.

Used by the multiprocessing :class:`~repro.runner.scheduler.Scheduler`
and the lease-based :class:`~repro.runner.distributed.WorkStealingExecutor`;
anything new that retries cells should go through it too.
"""

from __future__ import annotations

import zlib

#: Fraction of the exponential delay the jitter may add (half-open).
JITTER_FRACTION = 0.5


def backoff_delay(
    attempt: int,
    base: float = 0.05,
    cap: float = 5.0,
    ident: str = "",
    seed: int = 0,
) -> float:
    """Seconds to wait before retrying ``ident`` after ``attempt`` failures.

    ``attempt`` is 1-based (the delay after the first failure uses
    ``attempt=1``).  The raw delay is ``base * 2**(attempt-1)``, capped at
    ``cap``; deterministic jitter then adds up to ``JITTER_FRACTION`` of
    that, drawn from ``crc32(f"{seed}/{ident}/{attempt}")`` so the
    schedule is a pure function of the cell's identity.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based and must be >= 1")
    if base < 0 or cap < 0:
        raise ValueError("base and cap must be non-negative")
    raw = min(base * (2 ** (attempt - 1)), cap)
    digest = zlib.crc32(f"{seed}/{ident}/{attempt}".encode())
    jitter = ((digest % 10_000) / 10_000.0) * JITTER_FRACTION
    return raw * (1.0 + jitter)


__all__ = ["JITTER_FRACTION", "backoff_delay"]
