"""A three-level (Sv39-style) radix page table.

Each address space owns one :class:`PageTable`.  The table is a genuine
radix tree -- walks traverse one node per level, which is what gives the
page-table walker its three-memory-access cost model -- though the nodes are
Python dictionaries rather than physical memory.

Permissions follow the RISC-V PTE bits that matter to this reproduction
(read/write/execute/user); the Double Page Fault attack relies on the fact
that a translation can be *cached by the TLB even when a permission check
subsequently fails*, so lookups report permission failures separately from
missing translations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from .address import LEVELS, vpn_levels


class Permission(enum.Flag):
    """PTE permission bits (subset relevant to the evaluation)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXECUTE = enum.auto()
    USER = enum.auto()

    @classmethod
    def rw(cls) -> "Permission":
        return cls.READ | cls.WRITE | cls.USER

    @classmethod
    def rx(cls) -> "Permission":
        return cls.READ | cls.EXECUTE | cls.USER


@dataclass
class PageTableEntry:
    """A leaf PTE: the physical page plus its permission bits.

    ``level`` > 0 marks a superpage leaf stored at an interior radix level
    (RISC-V Sv39: level 1 = 2 MiB megapage, level 2 = 1 GiB gigapage); it
    translates a whole aligned region with one entry -- the basis of the
    "large pages for crypto libraries" software mitigation of Section 2.3.
    """

    ppn: int
    permissions: Permission = Permission.NONE
    #: x86-style global bit; kept for the software-mitigation discussion of
    #: Section 2.3 (global pages survive per-ASID flushes).
    global_page: bool = False
    #: Superpage level (0 = ordinary 4 KiB leaf).
    level: int = 0

    def allows(self, required: Permission) -> bool:
        return (self.permissions & required) == required

    def translate(self, vpn: int) -> int:
        """The physical page for ``vpn`` within this (super)page."""
        offset_mask = (1 << (9 * self.level)) - 1
        return self.ppn + (vpn & offset_mask)


class PageFault(Exception):
    """Raised when a walk finds no valid translation for a page."""

    def __init__(self, vpn: int, asid: int) -> None:
        super().__init__(f"page fault: vpn={vpn:#x} asid={asid}")
        self.vpn = vpn
        self.asid = asid


class _Node:
    """One radix-tree node: index -> child node or leaf PTE."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: Dict[int, object] = {}


class PageTable:
    """One address space's three-level radix page table."""

    def __init__(self, asid: int = 0) -> None:
        self.asid = asid
        self._root = _Node()
        self._mapped = 0
        self._version = 0
        #: Monotonic: has this table *ever* held a superpage leaf?  The
        #: run kernel's reuse oracle (which assumes every walk returns a
        #: 4 KiB leaf at full-walk cost) keys off this instead of a live
        #: count, so leaf-replacement corner cases can never resurrect
        #: the assumption once broken.
        self.superpages_ever = False

    @property
    def version(self) -> int:
        """Monotonic mapping-change counter.

        Bumped by every :meth:`map_page` / :meth:`unmap_page` that alters a
        translation; the walker's memo stores the version it walked under
        and treats any bump as wholesale invalidation, so a remap can never
        serve a stale memoized :class:`WalkResult`.
        """
        return self._version

    def __len__(self) -> int:
        return self._mapped

    def map_page(
        self,
        vpn: int,
        ppn: int,
        permissions: Permission = Permission.rw(),
        global_page: bool = False,
        level: int = 0,
    ) -> PageTableEntry:
        """Install (or replace) the leaf PTE for ``vpn``.

        ``level`` > 0 installs a superpage leaf at the corresponding
        interior radix level; ``vpn`` and ``ppn`` must be aligned to the
        superpage size.
        """
        if not 0 <= level < LEVELS:
            raise ValueError(f"level must be in [0, {LEVELS}), got {level}")
        alignment = (1 << (9 * level)) - 1
        if vpn & alignment or ppn & alignment:
            raise ValueError(
                f"superpage base must be {1 << (9 * level)}-page aligned"
            )
        node = self._root
        indices = vpn_levels(vpn)
        depth = LEVELS - 1 - level  # radix depth of the leaf's parent node
        for index in indices[:depth]:
            child = node.children.get(index)
            if not isinstance(child, _Node):
                child = _Node()
                node.children[index] = child
            node = child
        leaf_index = indices[depth]
        if leaf_index not in node.children:
            self._mapped += 1
        self._version += 1
        if level:
            self.superpages_ever = True
        entry = PageTableEntry(
            ppn=ppn,
            permissions=permissions,
            global_page=global_page,
            level=level,
        )
        node.children[leaf_index] = entry
        return entry

    def unmap_page(self, vpn: int) -> bool:
        """Remove the leaf PTE covering ``vpn``; True if one existed."""
        node = self._root
        indices = vpn_levels(vpn)
        for index in indices:
            child = node.children.get(index)
            if isinstance(child, PageTableEntry):
                del node.children[index]
                self._mapped -= 1
                self._version += 1
                return True
            if not isinstance(child, _Node):
                return False
            node = child
        return False  # pragma: no cover - leaves end traversal

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        """The leaf PTE covering ``vpn`` (4 KiB or superpage)."""
        return self.walk_levels(vpn)[1]

    def walk_levels(self, vpn: int) -> Tuple[int, Optional[PageTableEntry]]:
        """The leaf PTE covering ``vpn`` plus the number of radix levels
        touched -- the walker's cycle cost is proportional to this, so
        superpage translations walk faster."""
        node = self._root
        indices = vpn_levels(vpn)
        touched = 0
        for index in indices:
            touched += 1
            child = node.children.get(index)
            if isinstance(child, PageTableEntry):
                return touched, child
            if not isinstance(child, _Node):
                return touched, None
            node = child
        return touched, None  # pragma: no cover - leaves end traversal

    def mapped_pages(self) -> Iterator[int]:
        """All mapped VPNs (for inspection; order unspecified)."""

        def visit(node: _Node, prefix: Tuple[int, ...]) -> Iterator[int]:
            for index, child in node.children.items():
                path = prefix + (index,)
                if isinstance(child, _Node):
                    yield from visit(child, path)
                else:
                    from .address import vpn_from_levels

                    padded = path + (0,) * (LEVELS - len(path))
                    yield vpn_from_levels(*padded)

        yield from visit(self._root, ())
