"""Runner-layer chaos: deterministic worker misbehaviour decisions.

A :class:`ChaosConfig` tells the scheduler's worker processes when to
misbehave and how.  Decisions are a pure function of
``(seed, cell identity, attempt)`` via CRC32 -- the same process-stable
hashing as :func:`repro.runner.registry.stable_seed` -- so a chaos run
replays identically across processes, machines and resumes, and the
property tests can assert that a chaotic run converges to the *same
artifacts* as a clean one.

This module is imported by :mod:`repro.runner.scheduler` and therefore
stays free of simulator imports (stdlib only) to keep the package graph
acyclic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

#: Worker-side fault modes the scheduler implements.
WORKER_FAULT_MODES: Tuple[str, ...] = ("hang", "crash", "corrupt-result")


@dataclass(frozen=True)
class ChaosConfig:
    """When and how scheduler workers misbehave (deterministically).

    ``modes`` lists the worker fault modes in play; each targeted
    ``(ident, attempt)`` draws one of them by hash.  ``rate`` is the
    fraction of cells targeted.  By default only first attempts misbehave
    (``max_attempt=1``), so every fault is recoverable by a retry;
    ``poison_idents`` lists cells that misbehave on *every* attempt and
    must therefore exhaust retries and be quarantined.
    """

    seed: int = 2019
    modes: Tuple[str, ...] = WORKER_FAULT_MODES
    rate: float = 0.5
    max_attempt: int = 1
    #: How long a hung worker sleeps; must exceed the watchdog timeout.
    hang_seconds: float = 60.0
    poison_idents: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for mode in self.modes:
            if mode not in WORKER_FAULT_MODES:
                raise ValueError(
                    f"unknown worker fault mode {mode!r};"
                    f" known: {WORKER_FAULT_MODES}"
                )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def fault_for(self, ident: str, attempt: int) -> Optional[str]:
        """The fault mode for this cell attempt, or ``None`` for honesty."""
        if ident in self.poison_idents:
            return "poison"
        if not self.modes or attempt > self.max_attempt:
            return None
        digest = zlib.crc32(f"{self.seed}/{ident}/{attempt}".encode())
        if (digest % 10_000) / 10_000.0 >= self.rate:
            return None
        return self.modes[(digest >> 16) % len(self.modes)]

    # -- serialization (for logs and the chaos CLI) ------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "modes": list(self.modes),
            "rate": self.rate,
            "max_attempt": self.max_attempt,
            "hang_seconds": self.hang_seconds,
            "poison_idents": list(self.poison_idents),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosConfig":
        return cls(
            seed=int(payload.get("seed", 2019)),
            modes=tuple(payload.get("modes", WORKER_FAULT_MODES)),
            rate=float(payload.get("rate", 0.5)),
            max_attempt=int(payload.get("max_attempt", 1)),
            hang_seconds=float(payload.get("hang_seconds", 60.0)),
            poison_idents=tuple(payload.get("poison_idents", ())),
        )


def default_chaos(seed: int = 2019, **overrides: Any) -> ChaosConfig:
    """A chaos config misbehaving on half of all first attempts."""
    payload: Dict[str, Any] = {"seed": seed}
    payload.update(overrides)
    return ChaosConfig.from_dict(payload)


__all__ = ["WORKER_FAULT_MODES", "ChaosConfig", "default_chaos"]
