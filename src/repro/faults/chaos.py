"""Runner-layer chaos: deterministic worker misbehaviour decisions.

A :class:`ChaosConfig` tells the scheduler's worker processes when to
misbehave and how.  Decisions are a pure function of
``(seed, cell identity, attempt)`` via CRC32 -- the same process-stable
hashing as :func:`repro.runner.registry.stable_seed` -- so a chaos run
replays identically across processes, machines and resumes, and the
property tests can assert that a chaotic run converges to the *same
artifacts* as a clean one.

This module is imported by :mod:`repro.runner.scheduler` and therefore
stays free of simulator imports (stdlib only) to keep the package graph
acyclic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

#: Worker-side fault modes the scheduler implements.
WORKER_FAULT_MODES: Tuple[str, ...] = ("hang", "crash", "corrupt-result")


@dataclass(frozen=True)
class ChaosConfig:
    """When and how scheduler workers misbehave (deterministically).

    ``modes`` lists the worker fault modes in play; each targeted
    ``(ident, attempt)`` draws one of them by hash.  ``rate`` is the
    fraction of cells targeted.  By default only first attempts misbehave
    (``max_attempt=1``), so every fault is recoverable by a retry;
    ``poison_idents`` lists cells that misbehave on *every* attempt and
    must therefore exhaust retries and be quarantined.
    """

    seed: int = 2019
    modes: Tuple[str, ...] = WORKER_FAULT_MODES
    rate: float = 0.5
    max_attempt: int = 1
    #: How long a hung worker sleeps; must exceed the watchdog timeout.
    hang_seconds: float = 60.0
    poison_idents: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for mode in self.modes:
            if mode not in WORKER_FAULT_MODES:
                raise ValueError(
                    f"unknown worker fault mode {mode!r};"
                    f" known: {WORKER_FAULT_MODES}"
                )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def fault_for(self, ident: str, attempt: int) -> Optional[str]:
        """The fault mode for this cell attempt, or ``None`` for honesty."""
        if ident in self.poison_idents:
            return "poison"
        if not self.modes or attempt > self.max_attempt:
            return None
        digest = zlib.crc32(f"{self.seed}/{ident}/{attempt}".encode())
        if (digest % 10_000) / 10_000.0 >= self.rate:
            return None
        return self.modes[(digest >> 16) % len(self.modes)]

    # -- serialization (for logs and the chaos CLI) ------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "modes": list(self.modes),
            "rate": self.rate,
            "max_attempt": self.max_attempt,
            "hang_seconds": self.hang_seconds,
            "poison_idents": list(self.poison_idents),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosConfig":
        return cls(
            seed=int(payload.get("seed", 2019)),
            modes=tuple(payload.get("modes", WORKER_FAULT_MODES)),
            rate=float(payload.get("rate", 0.5)),
            max_attempt=int(payload.get("max_attempt", 1)),
            hang_seconds=float(payload.get("hang_seconds", 60.0)),
            poison_idents=tuple(payload.get("poison_idents", ())),
        )


def default_chaos(seed: int = 2019, **overrides: Any) -> ChaosConfig:
    """A chaos config misbehaving on half of all first attempts."""
    payload: Dict[str, Any] = {"seed": seed}
    payload.update(overrides)
    return ChaosConfig.from_dict(payload)


#: Executor-layer fault modes the work-stealing worker loop implements.
#: Each attacks one clause of the lease protocol (see docs/robustness.md).
EXECUTOR_FAULT_MODES: Tuple[str, ...] = (
    # Die by SIGKILL mid-cell: after claiming a lease, before any result.
    "worker-sigkill",
    # Keep running the cell but stop renewing the lease heartbeat, then
    # abandon the cell without a result -- the reclaimer's main case.
    "heartbeat-freeze",
    # Ignore an existing valid lease and run the cell anyway (two workers
    # on one cell); determinism must make the duplicate harmless.
    "duplicate-lease",
    # Claim with an already-expired heartbeat timestamp, so the lease is
    # reclaimed while its owner still runs.
    "stale-lease",
    # Tear the worker's own journal tail mid-record (a kill during a
    # write); the torn-tail-tolerant readers must absorb it.
    "torn-journal",
    # Flip a byte in the result payload after sealing; the envelope
    # digest must reject it.
    "result-tamper",
)


@dataclass(frozen=True)
class ExecutorChaosConfig:
    """When and how work-stealing workers misbehave (deterministically).

    Same decision function as :class:`ChaosConfig`: each targeted
    ``(ident, attempt)`` draws one of ``modes`` by CRC32, so a chaotic
    distributed run replays identically on every host that shares the
    seed.  ``poison_idents`` lists cells that raise on *every* attempt on
    every worker -- the cross-host quarantine case.
    """

    seed: int = 2019
    modes: Tuple[str, ...] = EXECUTOR_FAULT_MODES
    rate: float = 0.5
    max_attempt: int = 1
    #: How long a frozen worker holds its cell before abandoning it;
    #: must exceed the board's lease TTL so the lease goes stale.
    freeze_seconds: float = 2.0
    poison_idents: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for mode in self.modes:
            if mode not in EXECUTOR_FAULT_MODES:
                raise ValueError(
                    f"unknown executor fault mode {mode!r};"
                    f" known: {EXECUTOR_FAULT_MODES}"
                )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def fault_for(self, ident: str, attempt: int) -> Optional[str]:
        """The fault mode for this cell attempt, or ``None`` for honesty."""
        if ident in self.poison_idents:
            return "poison"
        if not self.modes or attempt > self.max_attempt:
            return None
        digest = zlib.crc32(f"{self.seed}/{ident}/{attempt}".encode())
        if (digest % 10_000) / 10_000.0 >= self.rate:
            return None
        return self.modes[(digest >> 16) % len(self.modes)]

    # -- serialization (for logs, worker argv, and the chaos CLI) ----------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "modes": list(self.modes),
            "rate": self.rate,
            "max_attempt": self.max_attempt,
            "freeze_seconds": self.freeze_seconds,
            "poison_idents": list(self.poison_idents),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutorChaosConfig":
        return cls(
            seed=int(payload.get("seed", 2019)),
            modes=tuple(payload.get("modes", EXECUTOR_FAULT_MODES)),
            rate=float(payload.get("rate", 0.5)),
            max_attempt=int(payload.get("max_attempt", 1)),
            freeze_seconds=float(payload.get("freeze_seconds", 2.0)),
            poison_idents=tuple(payload.get("poison_idents", ())),
        )


__all__ = [
    "EXECUTOR_FAULT_MODES",
    "ExecutorChaosConfig",
    "WORKER_FAULT_MODES",
    "ChaosConfig",
    "default_chaos",
]
