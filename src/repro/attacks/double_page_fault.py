"""A Double-Page-Fault-style internal-collision attack.

Hund, Willems and Holz's attack (IEEE S&P 2013) exploits Table 2's
``TLB Internal Collision`` rows: a translation is cached by the first
(faulting) access, so a *second* access to the same page is fast iff the
first one really did install a translation -- revealing whether two
addresses collide in the TLB, and hence (scanned over candidates) where a
secret mapping lives.

The reproduction plays the ``A_d ~> V_u ~> V_a (fast)`` row: after the
victim's secret access, timing a victim access to candidate page ``a``
reveals whether ``u == a``.  Scanning all candidate pages of the secret
region recovers the victim's secret page on the standard and SP TLBs;
against the RF TLB the secret access installs a random region page, so the
scan's answer is decorrelated from ``u``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.mmu import PageTableWalker, make_walker
from repro.security.kinds import TLBKind, make_tlb
from repro.sim.events import EventBus
from repro.sim.system import MemorySystem
from repro.tlb import RandomFillTLB, TLBConfig
from repro.tlb.base import BaseTLB

VICTIM_ASID = 1
ATTACKER_ASID = 2


@dataclass(frozen=True)
class ScanResult:
    """Outcome of one candidate scan."""

    secret_vpn: int
    #: Candidates whose post-access reload hit (the attacker's inference).
    hits: List[int]
    kind: TLBKind

    @property
    def recovered(self) -> Optional[int]:
        """The attacker's guess: the unique hitting candidate, if any."""
        if len(self.hits) == 1:
            return self.hits[0]
        return None

    @property
    def correct(self) -> bool:
        return self.recovered == self.secret_vpn


def probe_candidate(
    tlb: BaseTLB,
    walker: Optional[PageTableWalker] = None,
    secret_vpn: int = 0,
    candidate_vpn: int = 0,
    noise_vpn: int = 0x700,
    memory: Optional[MemorySystem] = None,
) -> bool:
    """One three-step round: returns True if the candidate reload was fast.

    Step 1 (``A_d``): the attacker touches an unrelated page, leaving the
    block without the candidate's translation.  Step 2 (``V_u``): the
    victim's secret access.  Step 3 (``V_a``): the victim reloads the
    candidate; a hit means the secret access installed it, i.e. u == a.

    Callers holding a bare TLB + walker may pass them directly; the round
    still runs through a (throwaway) :class:`repro.sim.MemorySystem`.
    """
    if memory is None:
        memory = MemorySystem(tlb, walker)
    memory.translate(noise_vpn, ATTACKER_ASID)  # A_d
    memory.translate(secret_vpn, VICTIM_ASID)  # V_u
    return memory.translate(candidate_vpn, VICTIM_ASID).hit  # V_a


def scan_secret_page(
    kind: TLBKind,
    secret_offset: int = 1,
    region_base: int = 0x100,
    region_pages: int = 3,
    config: TLBConfig = TLBConfig(entries=32, ways=8),
    seed: int = 0,
    bus: Optional[EventBus] = None,
) -> ScanResult:
    """Scan every region page, flushing between rounds (fresh Step 1)."""
    if not 0 <= secret_offset < region_pages:
        raise ValueError("secret page must lie inside the region")
    secret_vpn = region_base + secret_offset
    tlb = make_tlb(
        kind,
        config,
        victim_asid=VICTIM_ASID,
        victim_ways=(config.ways // 2 if kind is TLBKind.SP else None),
        rng=random.Random(seed),
    )
    if isinstance(tlb, RandomFillTLB):
        tlb.set_secure_region(region_base, region_pages, victim_asid=VICTIM_ASID)
    memory = MemorySystem(tlb, make_walker(), bus=bus)

    hits = []
    for candidate in range(region_base, region_base + region_pages):
        memory.flush_all()  # independent rounds
        if probe_candidate(
            tlb, secret_vpn=secret_vpn, candidate_vpn=candidate, memory=memory
        ):
            hits.append(candidate)
    return ScanResult(secret_vpn=secret_vpn, hits=hits, kind=kind)
