"""Tests for the design-space sweeps."""

import pytest

from repro.ablations import (
    format_partition_sweep,
    format_region_sweep,
    sweep_replacement_policy,
    sweep_rf_region,
    sweep_sp_partition,
)
from repro.tlb import ReplacementKind, TLBConfig


class TestPartitionSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_sp_partition(
            config=TLBConfig(entries=32, ways=4), instructions=40_000, rsa_runs=5
        )

    def test_covers_all_proper_splits(self, points):
        assert [p.victim_ways for p in points] == [1, 2, 3]
        assert all(p.victim_ways + p.attacker_ways == 4 for p in points)

    def test_attacker_mpki_grows_as_its_share_shrinks(self, points):
        attacker_mpki = [p.attacker_mpki for p in points]
        assert attacker_mpki == sorted(attacker_mpki)
        assert attacker_mpki[-1] > attacker_mpki[0]

    def test_tiny_victim_fits_in_one_way(self, points):
        # RSA's 3-page working set maps to 3 different sets, so even a
        # single victim way per set suffices.
        assert points[0].victim_mpki < 1.0

    def test_formatting(self, points):
        text = format_partition_sweep(points)
        assert "victim ways" in text and text.count("\n") >= 4


class TestRegionSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_rf_region(region_sizes=(1, 3, 31), trials=60)

    def test_single_page_region_provides_no_randomness(self, points):
        # With a one-page region the "random" fill is deterministic: the
        # channel stays wide open.  The region must span several sets.
        assert points[0].prime_probe_capacity > 0.8

    def test_multi_page_regions_close_the_channel(self, points):
        for point in points[1:]:
            assert point.prime_probe_capacity < 0.15, point

    def test_capacity_shrinks_with_region_size(self, points):
        assert (
            points[2].prime_probe_capacity <= points[1].prime_probe_capacity + 0.02
        )

    def test_victim_overhead_is_modest(self, points):
        for point in points:
            assert point.victim_mpki < 5.0

    def test_formatting(self, points):
        assert "region pages" in format_region_sweep(points)


class TestReplacementPolicySweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_replacement_policy()

    def test_deterministic_policies_allow_full_recovery(self, points):
        by_policy = {p.policy: p for p in points}
        assert by_policy[ReplacementKind.LRU].recovered_exactly
        assert by_policy[ReplacementKind.FIFO].recovered_exactly

    def test_random_replacement_degrades_but_does_not_stop(self, points):
        # Random replacement is noise, not a defence: accuracy drops below
        # exact recovery but stays far above guessing -- motivating real
        # secure designs rather than policy tweaks.
        random_point = {p.policy: p for p in points}[ReplacementKind.RANDOM]
        assert not random_point.recovered_exactly
        assert 0.55 < random_point.accuracy < 1.0


class TestWalkLatencySweep:
    @pytest.fixture(scope="class")
    def points(self):
        from repro.ablations import sweep_walk_latency

        return sweep_walk_latency(costs=(2, 10, 40), instructions=40_000)

    def test_mpki_is_invariant_to_walk_cost(self, points):
        mpkis = {round(point.mpki, 6) for point in points}
        assert len(mpkis) == 1

    def test_ipc_degrades_monotonically(self, points):
        ipcs = [point.ipc for point in points]
        assert ipcs == sorted(ipcs, reverse=True)
        assert ipcs[0] > 2 * ipcs[-1]
