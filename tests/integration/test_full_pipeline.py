"""Integration tests spanning the model, simulators, and harnesses."""

import pytest

from repro.model import derive_vulnerabilities, table2_vulnerabilities
from repro.security import (
    EvaluationConfig,
    SecurityEvaluator,
    TLBKind,
    defended_counts,
)


class TestModelToSimulationAgreement:
    """The theory (model + closed forms) and the simulation must agree on
    every verdict -- the paper's 'simulation results match theoretical
    values' claim (Section 5.3.2)."""

    @pytest.fixture(scope="class")
    def table(self):
        evaluator = SecurityEvaluator(EvaluationConfig(trials=60))
        return evaluator.evaluate_table4()

    def test_headline(self, table):
        assert defended_counts(table) == {
            TLBKind.SA: 10,
            TLBKind.SP: 14,
            TLBKind.RF: 24,
        }

    def test_verdicts_match_theory_everywhere(self, table):
        for kind, results in table.items():
            for result in results:
                assert result.defended == result.theory_defends

    def test_deterministic_designs_match_theory_exactly(self, table):
        for kind in (TLBKind.SA, TLBKind.SP):
            for result in table[kind]:
                assert result.estimate.p1 == result.theoretical_p1
                assert result.estimate.p2 == result.theoretical_p2

    def test_rf_probabilities_are_balanced(self, table):
        # The RF defence mechanism: p1 ~ p2 on every row.
        for result in table[TLBKind.RF]:
            assert result.estimate.p1 == pytest.approx(
                result.estimate.p2, abs=0.25
            )

    def test_rf_tracks_closed_forms_on_deterministic_rows(self, table):
        # Rows of shape known ~> V_u ~> known over the 3-page region track
        # the paper's closed forms (1/3, 2/3, 1).  The V_u ~> known ~> V_u
        # shape's closed form counts a different event than our benchmark
        # realization (both measure C ~ 0, the actual claim); those and the
        # 31-page rows are compared qualitatively in EXPERIMENTS.md.
        for result in table[TLBKind.RF]:
            from repro.security.benchgen import region_size_for

            if (
                region_size_for(result.vulnerability) == 3
                and not result.vulnerability.pattern.step1.is_secret
            ):
                assert result.estimate.p1 == pytest.approx(
                    result.theoretical_p1, abs=0.2
                )


class TestDerivedRowsAreTestable:
    def test_every_derived_row_has_a_working_benchmark(self):
        # The derivation and the benchmark generator agree: each of the 24
        # derived rows yields a program whose SA-TLB verdict matches the
        # theory on at least the mapped trial.
        from repro.isa import CPU, ExecutionStatus, assemble
        from repro.mmu import PageTableWalker
        from repro.security.benchgen import generate
        from repro.security.kinds import make_tlb
        from repro.tlb import TLBConfig

        for vulnerability in derive_vulnerabilities():
            program = assemble(generate(vulnerability, mapped=True))
            tlb = make_tlb(TLBKind.SA, TLBConfig(entries=32, ways=8))
            cpu = CPU(tlb=tlb, translator=PageTableWalker(auto_map=True))
            cpu.load(program)
            result = cpu.run()
            assert result.status in (
                ExecutionStatus.PASSED,
                ExecutionStatus.FAILED,
            )

    def test_derivation_matches_transcription(self):
        assert set(derive_vulnerabilities()) == set(table2_vulnerabilities())


class TestAttacksAgreeWithTable4:
    """End-to-end attacks must succeed exactly where Table 4 predicts."""

    def test_prime_probe_row_predicts_tlbleed(self):
        from repro.attacks import tlbleed_attack

        evaluator = SecurityEvaluator(EvaluationConfig(trials=40))
        from repro.model.patterns import Strategy

        for kind, should_succeed in (
            (TLBKind.SA, True),
            (TLBKind.SP, False),
            (TLBKind.RF, False),
        ):
            rows = [
                result
                for result in evaluator.evaluate_kind(kind)
                if result.vulnerability.strategy is Strategy.PRIME_PROBE
            ]
            row_vulnerable = any(not row.defended for row in rows)
            assert row_vulnerable == should_succeed
            attack = tlbleed_attack(kind)
            assert attack.recovered_exactly == should_succeed

    def test_internal_collision_row_predicts_double_page_fault(self):
        from repro.attacks import scan_secret_page
        from repro.model.patterns import Strategy

        evaluator = SecurityEvaluator(EvaluationConfig(trials=40))
        for kind, should_succeed in (
            (TLBKind.SA, True),
            (TLBKind.SP, True),  # internal interference survives SP
        ):
            rows = [
                result
                for result in evaluator.evaluate_kind(kind)
                if result.vulnerability.strategy is Strategy.INTERNAL_COLLISION
            ]
            assert any(not row.defended for row in rows) == should_succeed
            assert scan_secret_page(kind).correct == should_succeed


class TestCpuAndTraceTimingAgree:
    def test_isa_cpu_and_trace_model_charge_identical_costs(self):
        # A load loop on the CPU and the equivalent (gap, vpn) trace on the
        # timing model must produce the same cycles and misses.
        from repro.isa import CPU, assemble
        from repro.mmu import PageTableWalker
        from repro.perf.timing import ScheduledProcess, simulate
        from repro.tlb import SetAssociativeTLB, TLBConfig

        pages = [0x10, 0x11, 0x12, 0x10, 0x11, 0x12]
        source_lines = []
        for vpn in pages:
            source_lines.append(f"la x1, page_{vpn:x}")
            source_lines.append("ldnorm x2, 0(x1)")
        source_lines.append("halt")
        data = [".data"]
        for vpn in sorted(set(pages)):
            data.append(f".org {vpn << 12:#x}")
            data.append(f"page_{vpn:x}: .dword 0")
        program = assemble("\n".join(source_lines + data))

        cpu = CPU(
            SetAssociativeTLB(TLBConfig(entries=8, ways=2)),
            PageTableWalker(auto_map=True),
        )
        cpu.load(program)
        cpu.run()

        class Trace:
            name = "trace"

            def events(self, rng):
                return iter([(1, vpn) for vpn in pages])  # la = 1-cycle gap

        results = simulate(
            SetAssociativeTLB(TLBConfig(entries=8, ways=2)),
            [ScheduledProcess(Trace(), asid=1)],
            walker=PageTableWalker(auto_map=True),
        )
        total = results["total"]
        # CPU ran one extra halt instruction (1 cycle).
        assert cpu.cycles == total.cycles + 1
        assert cpu.tlb.stats.misses == total.misses
