"""Observers over the event bus, and the JSONL writer/reader they share.

* :class:`JsonlWriter` -- a tiny append-only JSON-Lines writer, shared with
  the runner's telemetry log (:class:`repro.runner.progress.RunLog`).
* :func:`read_jsonl` -- the matching reader; tolerates the torn trailing
  line a crashed or killed writer leaves behind.
* :class:`TraceObserver` -- serializes every bus event as one JSONL record
  (``python -m repro trace`` builds on it).
* :class:`StatsObserver` -- cheap aggregate counters (per event type and
  per ASID) replacing the ad-hoc tallies the drive loops used to keep.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

from .events import (
    AccessEvent,
    ContextSwitchEvent,
    EVENT_NAMES,
    EventBus,
    EvictEvent,
    FillEvent,
    FlushEvent,
    RefillEvent,
    WalkEvent,
)


class JsonlWriter:
    """Append-only JSON-Lines output over a path or an open text handle.

    Records are written with ``sort_keys=False`` (insertion order) and
    ``default=str``, one object per line, flushed per record so partial
    logs of crashed runs stay readable.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: Optional[IO[str]] = target
            self._owns_handle = False
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = path.open("w")
            self._owns_handle = True

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError("writer is closed")
        self._handle.write(json.dumps(record, sort_keys=False, default=str))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and self._owns_handle:
            self._handle.close()
        self._handle = None


class TornRecordError(ValueError):
    """A JSONL line that is not valid JSON, away from the file's tail."""

    def __init__(self, path: str, line_number: int, line: str) -> None:
        super().__init__(
            f"{path}:{line_number}: unparseable JSONL record {line[:80]!r}"
        )
        self.path = path
        self.line_number = line_number


def read_jsonl(source: Union[str, Path, IO[str]]) -> List[Dict[str, Any]]:
    """Read a JSON-Lines file, tolerating a torn trailing record.

    A process killed mid-:meth:`JsonlWriter.write` (worker crash, SIGKILL,
    power loss) leaves a truncated final line.  Such a tail is expected
    debris, not corruption: it is skipped with a :class:`UserWarning` so
    run logs and event traces of interrupted runs stay replayable.  An
    unparseable record anywhere *before* the tail still raises
    :class:`TornRecordError` -- that is real corruption, and silently
    dropping interior records would misrepresent the run.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
        name = getattr(source, "name", "<stream>")
    else:
        lines = Path(source).read_text().splitlines()
        name = str(source)
    records: List[Dict[str, Any]] = []
    pending_error: Optional[TornRecordError] = None
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if pending_error is not None:
            raise pending_error
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            # Defer: only an error on the *last* non-empty line is a torn
            # tail; anything after it upgrades this to corruption.
            pending_error = TornRecordError(name, line_number, line)
    if pending_error is not None:
        warnings.warn(
            f"skipping torn trailing JSONL record at {pending_error.path}:"
            f"{pending_error.line_number} (interrupted writer?)",
            UserWarning,
            stacklevel=2,
        )
    return records


class TraceObserver:
    """Dump every bus event as one JSONL record.

    Each record carries the event name, a monotonically increasing ``seq``
    number, and the event's own fields, e.g.::

        {"event": "access", "seq": 3, "vpn": 257, "asid": 1, "hit": false,
         "ppn": 257, "cycles": 31, "filled": true}
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        self._writer = JsonlWriter(target)
        self.seq = 0

    def subscribe(self, bus: EventBus) -> "TraceObserver":
        for event_type in EVENT_NAMES:
            bus.subscribe(event_type, self._record)
        return self

    def _record(self, event: object) -> None:
        record: Dict[str, Any] = {
            "event": EVENT_NAMES[type(event)],
            "seq": self.seq,
        }
        record.update(asdict(event))
        self._writer.write(record)
        self.seq += 1

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "TraceObserver":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class AsidCounters:
    """Per-address-space access tallies."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    cycles: int = 0


@dataclass
class StatsObserver:
    """Aggregate counters over the event stream.

    Subscribing costs one handler per event type; when detached the
    :class:`repro.sim.MemorySystem` hot path never constructs an event, so
    the observer is pay-for-use.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    cycles: int = 0
    walks: int = 0
    walk_cycles: int = 0
    fills: int = 0
    #: Misses served from a lower hierarchy level (no page-table walk);
    #: always zero for single-level TLBs.
    refills: int = 0
    evictions: int = 0
    flushes: int = 0
    context_switches: int = 0
    by_asid: Dict[int, AsidCounters] = field(default_factory=dict)

    def subscribe(self, bus: EventBus) -> "StatsObserver":
        bus.on_access(self._on_access)
        bus.on_walk(self._on_walk)
        bus.on_fill(self._on_fill)
        bus.on_refill(self._on_refill)
        bus.on_evict(self._on_evict)
        bus.on_flush(self._on_flush)
        bus.on_context_switch(self._on_context_switch)
        return self

    def _on_access(self, event: AccessEvent) -> None:
        self.accesses += 1
        self.cycles += event.cycles
        per_asid = self.by_asid.get(event.asid)
        if per_asid is None:
            per_asid = self.by_asid[event.asid] = AsidCounters()
        per_asid.accesses += 1
        per_asid.cycles += event.cycles
        if event.hit:
            self.hits += 1
            per_asid.hits += 1
        else:
            self.misses += 1
            per_asid.misses += 1

    def _on_walk(self, event: WalkEvent) -> None:
        self.walks += 1
        self.walk_cycles += event.cycles

    def _on_fill(self, _event: FillEvent) -> None:
        self.fills += 1

    def _on_refill(self, _event: RefillEvent) -> None:
        self.refills += 1

    def _on_evict(self, _event: EvictEvent) -> None:
        self.evictions += 1

    def _on_flush(self, _event: FlushEvent) -> None:
        self.flushes += 1

    def _on_context_switch(self, _event: ContextSwitchEvent) -> None:
        self.context_switches += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def summary(self) -> Dict[str, Any]:
        """A plain-dict rollup (used by the trace CLI's footer)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "cycles": self.cycles,
            "walks": self.walks,
            "fills": self.fills,
            "refills": self.refills,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "context_switches": self.context_switches,
            "asids": sorted(self.by_asid),
        }
