"""Unit and integration tests for the lease-based work-stealing executor.

The board tests pin the protocol's atomic clauses one at a time
(exclusive claims, owner-checked renewal, single-winner reclamation);
the executor tests drive the whole loop -- spawned local workers,
graceful degradation to inline execution, and cross-worker poison
quarantine with its full attempt history.
"""

import time

import pytest

from repro.faults.chaos import ExecutorChaosConfig
from repro.runner.backoff import backoff_delay
from repro.runner.distributed import (
    Board,
    Lease,
    WorkerLoop,
    WorkStealingExecutor,
)
from repro.runner.registry import REGISTRY, Experiment, register

BACKOFF = {"base": 0.01, "cap": 0.05, "seed": 7}


class StealToyExperiment(Experiment):
    """Triples its value; raises when told to."""

    def units(self, options):
        return []

    @staticmethod
    def run(params):
        if params.get("boom"):
            raise ValueError("boom requested")
        return params["value"] * 3

    def assemble(self, values, options):
        return values


@pytest.fixture
def toy():
    register("steal-toy")(StealToyExperiment)
    yield REGISTRY["steal-toy"]
    REGISTRY.pop("steal-toy", None)


@pytest.fixture
def board(tmp_path):
    board = Board(tmp_path / "cache")
    board.ensure_layout()
    return board


class TestBoardLeases:
    def test_claim_is_exclusive(self, board):
        assert board.try_claim("cell", "alice", attempt=1) is not None
        assert board.try_claim("cell", "bob", attempt=1) is None
        lease = board.read_lease("cell")
        assert lease.worker == "alice"
        assert lease.attempt == 1

    def test_forced_claim_is_the_protocol_violation(self, board):
        board.try_claim("cell", "alice", attempt=1)
        forced = board.try_claim("cell", "mallory", attempt=1, force=True)
        assert forced is not None
        assert board.read_lease("cell").worker == "mallory"

    def test_renew_requires_ownership(self, board):
        board.try_claim("cell", "alice", attempt=1)
        before = board.read_lease("cell").heartbeat
        time.sleep(0.01)
        assert board.renew("cell", "alice")
        assert board.read_lease("cell").heartbeat > before
        assert not board.renew("cell", "bob")
        board.release("cell", "alice")
        assert not board.renew("cell", "alice")

    def test_release_requires_ownership(self, board):
        board.try_claim("cell", "alice", attempt=1)
        board.release("cell", "bob")
        assert board.read_lease("cell") is not None
        board.release("cell", "alice")
        assert board.read_lease("cell") is None

    def test_fresh_lease_is_not_reclaimable(self, board):
        board.try_claim("cell", "alice", attempt=1)
        assert board.reclaim_if_stale("cell", "bob", 5.0, BACKOFF) is None
        assert board.read_lease("cell").worker == "alice"
        assert board.attempt_records("cell") == []

    def test_stale_lease_reclaimed_once_with_backoff_record(self, board):
        board.try_claim(
            "cell", "alice", attempt=2, heartbeat=time.time() - 100.0
        )
        reclaimed = board.reclaim_if_stale("cell", "bob", 1.0, BACKOFF)
        assert isinstance(reclaimed, Lease)
        assert reclaimed.worker == "alice"
        # The rename decided the winner: the lease is gone, a second
        # reclaimer finds nothing and must not double-count the attempt.
        assert board.read_lease("cell") is None
        assert board.reclaim_if_stale("cell", "carol", 1.0, BACKOFF) is None
        (record,) = board.attempt_records("cell")
        assert record["status"] == "reclaimed"
        assert record["worker"] == "alice"
        assert record["by"] == "bob"
        expected = backoff_delay(2, base=0.01, cap=0.05, ident="cell", seed=7)
        assert record["backoff"] == round(expected, 4)
        assert record["not_before"] > time.time() - 1.0


def _executor(tmp_path, **overrides):
    options = dict(
        cache_dir=tmp_path / "cache",
        local_workers=0,
        max_retries=2,
        backoff=0.01,
        backoff_cap=0.1,
        lease_ttl=1.0,
        heartbeat_interval=0.1,
        poll_interval=0.02,
        fallback_after=0.05,
    )
    options.update(overrides)
    return WorkStealingExecutor(**options)


class TestWorkStealingExecutor:
    def test_spawned_workers_steal_every_cell(self, tmp_path, toy):
        executor = _executor(
            tmp_path, local_workers=2, fallback_after=30.0
        )
        units = [(i, toy.unit(str(i), value=i)) for i in range(6)]
        try:
            outcomes = executor.run(units)
        finally:
            executor.close()
        assert sorted(outcomes) == list(range(6))
        for i, outcome in outcomes.items():
            assert not outcome.failed
            assert outcome.value == i * 3
            assert str(outcome.worker).startswith("local-")
        assert sum(executor.cells_by_worker.values()) == 6
        assert executor.fallback_cells == 0
        # Successful cells are retired: the board is consumable state,
        # the durable layer is the regular result cache.
        assert executor.board.task_cells() == []

    def test_degrades_to_inline_when_no_worker_checks_in(
        self, tmp_path, toy
    ):
        executor = _executor(tmp_path)
        units = [(i, toy.unit(str(i), value=i)) for i in range(3)]
        try:
            outcomes = executor.run(units)
        finally:
            executor.close()
        assert all(not outcome.failed for outcome in outcomes.values())
        assert executor.fallback_cells == 3
        assert executor.worker_crashes == 0

    def test_submit_satisfies_the_executor_seam(self, tmp_path, toy):
        executor = _executor(tmp_path)
        try:
            outcome = executor.submit(toy.unit("solo", value=7))
        finally:
            executor.close()
        assert not outcome.failed
        assert outcome.value == 21
        assert outcome.envelope is not None and outcome.envelope.intact

    def test_poison_cell_quarantined_with_full_history(
        self, tmp_path, toy
    ):
        unit = toy.unit("bad", value=1)
        chaos = ExecutorChaosConfig(
            seed=3, modes=(), rate=0.0, poison_idents=(unit.ident,)
        )
        executor = _executor(tmp_path, max_retries=1, chaos=chaos)
        # Exhaust the attempt budget by hand through two distinct chaotic
        # workers, then let the orchestrator find the wreckage.
        executor.board.ensure_layout()
        loop = WorkerLoop(
            executor.board, worker_id="w1", heartbeat_interval=0.05,
            chaos=chaos,
        )
        from repro.runner.cache import unit_cache_key

        cell = unit_cache_key(unit, executor.code_version)
        executor.board.publish(
            unit, cell,
            {
                "code_version": executor.code_version,
                "max_attempts": 2,
                "lease_ttl": 1.0,
                "backoff_base": 0.0,
                "backoff_cap": 0.0,
                "backoff_seed": unit.seed,
                "ident": unit.ident,
            },
        )
        second = WorkerLoop(
            executor.board, worker_id="w2", heartbeat_interval=0.05,
            chaos=chaos,
        )
        assert loop.run_once()
        assert second.run_once()

        outcomes = executor.run([(0, unit)])
        executor.close()
        outcome = outcomes[0]
        assert outcome.failed
        assert "poison" in (outcome.error or "")
        assert executor.quarantined == 1
        # The quarantine evidence: one record per attempt, each naming
        # the worker it ran on -- here two distinct workers.
        assert len(outcome.history) == 2
        assert {record["worker"] for record in outcome.history} == {
            "w1", "w2"
        }
        assert all(
            record["status"] == "error" for record in outcome.history
        )
        assert executor.board.is_quarantined(cell)

    def test_error_cells_retry_then_exhaust_with_history(
        self, tmp_path, toy
    ):
        executor = _executor(tmp_path, max_retries=1)
        unit = toy.unit("boom", value=1, boom=True)
        outcomes = executor.run([(0, unit)])
        executor.close()
        outcome = outcomes[0]
        assert outcome.failed
        assert "boom requested" in (outcome.error or "")
        assert len(outcome.history) == 2
        assert [record["attempt"] for record in outcome.history] == [1, 2]
        assert all("backoff" in record for record in outcome.history)
